(** Data partitioning and alignment (Section 4 and footnote 2).

    On a machine with physically distributed memory the arrays must be
    placed so that cache misses are served by the local memory module.
    Following the paper's implementation, each array is partitioned with
    the same aspect ratio as the loop tiles and aligned: the data tile
    that a loop tile's footprint covers is homed on the processor that
    executes the loop tile.

    The home map inverts the {e anchor reference} of the array (preferring
    the class that writes it): data element [d] is assigned to the owner
    of the iteration [i] with [i * G = d - a], when that system has a
    rational solution; elements outside every footprint (or arrays with
    non-invertible anchors) fall back to a deterministic hash. *)

open Matrixkit

type placement = {
  nprocs : int;
  home : string -> Ivec.t -> int;  (** array name, element -> processor *)
  description : string;
}

val aligned : Codegen.schedule -> Cost.t -> placement
(** Loop-tile-aligned placement (the paper's "Data Partitioning and
    Alignment" phase). *)

val round_robin : nprocs:int -> placement
(** Element-wise hash distribution - the baseline a dumb allocator gives. *)

val block_row : nprocs:int -> rows:int -> placement
(** First-dimension block distribution: element [d] lives on
    [d_0 * P / rows] clamped to range - the classic "distribute by rows"
    layout the introduction argues against. *)

val cumulative_spread_note : Cost.t -> (string * Ivec.t) list
(** For reporting: footnote 2's [a+] cumulative spread per class (keyed by
    array name), the quantity that replaces the max-min spread when
    optimizing data rather than loop partitions. *)

val data_objective : Cost.t -> Intmath.Mpoly.t
(** Footnote 2's data-partitioning objective: the cumulative footprint
    rebuilt with the cumulative spread [a+] in place of the max-min
    spread (without dynamic copying, every reference whose offset
    deviates from the median costs its own remote strip). *)

val optimal_data_ratio : Cost.t -> nprocs:int -> float array
(** Continuous optimum of {!data_objective} under the usual volume and
    box constraints: the aspect ratio the arrays should be blocked with.
    Section 4 aligns data tiles with loop tiles; this quantifies when the
    two ratios agree (symmetric offsets) and when they diverge. *)
