type kind = Read | Write | Accumulate

type t = { array_name : string; kind : kind; index : Affine.t }

let read array_name index = { array_name; kind = Read; index }
let write array_name index = { array_name; kind = Write; index }
let accumulate array_name index = { array_name; kind = Accumulate; index }

let is_write_like t =
  match t.kind with Write | Accumulate -> true | Read -> false

let kind_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Accumulate -> "accumulate"

let equal a b =
  String.equal a.array_name b.array_name
  && a.kind = b.kind
  && Affine.equal a.index b.index

let pp ~vars ppf t =
  let prefix = match t.kind with Accumulate -> "l$" | Read | Write -> "" in
  Format.fprintf ppf "%s%s[%a]" prefix t.array_name (Affine.pp ~vars) t.index
