open Intmath
open Matrixkit
open Loopir

type result = {
  target_array : string;
  spreads : int array;
  ratio : float array;
  grid : int array;
  sizes : int array;
}

let identity_g (r : Reference.t) =
  let g = Affine.g r.Reference.index in
  Imat.is_square g && Imat.equal g (Imat.identity (Imat.rows g))

(* AH target the array that carries reuse: the one referenced more than
   once.  A single-reference array contributes the same footprint to any
   equal-volume tile, exactly as in the paper's Example 8. *)
let target nest =
  let multi =
    List.filter
      (fun name -> List.length (Nest.references_to nest name) > 1)
      (Nest.arrays nest)
  in
  match multi with
  | [ name ] -> Ok name
  | [] -> Error "no array is referenced more than once; any tile is optimal"
  | _ :: _ :: _ -> Error "more than one shared array (outside the AH domain)"

let applies nest =
  match target nest with
  | Error e -> Error e
  | Ok name ->
      if List.for_all identity_g (Nest.references_to nest name) then Ok name
      else
        Error
          (Printf.sprintf
             "references to %s are not of the form A(i1+a1,...,id+ad)" name)

let spreads_of nest name =
  let offsets =
    List.map
      (fun (r : Reference.t) -> Affine.offset r.Reference.index)
      (Nest.references_to nest name)
  in
  match offsets with
  | [] -> [||]
  | first :: rest ->
      let lo = Array.copy first and hi = Array.copy first in
      List.iter
        (fun o ->
          Array.iteri
            (fun k v ->
              if v < lo.(k) then lo.(k) <- v;
              if v > hi.(k) then hi.(k) <- v)
            o)
        rest;
      Ivec.sub hi lo

(* Their communication volume for tile sides x: sum_k d_k prod_{j<>k} x_j;
   with prod x fixed the optimum has x_k proportional to d_k (zero-spread
   dimensions take the whole extent - splitting them is free, keeping them
   whole cannot hurt). *)
let cost spreads sizes =
  let l = Array.length spreads in
  let total = ref 0 in
  for k = 0 to l - 1 do
    if spreads.(k) > 0 then begin
      let p = ref spreads.(k) in
      for j = 0 to l - 1 do
        if j <> k then p := !p * sizes.(j)
      done;
      total := !total + !p
    end
  done;
  !total

let partition nest ~nprocs =
  match applies nest with
  | Error e -> Error e
  | Ok name ->
      let spreads = spreads_of nest name in
      let extents = Nest.extents nest in
      let l = Array.length extents in
      let candidates =
        List.filter
          (fun fs -> List.for_all2 (fun p n -> p <= n) fs (Array.to_list extents))
          (Int_math.factorizations l nprocs)
      in
      if candidates = [] then Error "no feasible processor grid"
      else begin
        let best = ref None in
        List.iter
          (fun grid ->
            let sizes =
              Array.of_list
                (List.mapi (fun k p -> Int_math.ceil_div extents.(k) p) grid)
            in
            let c = cost spreads sizes in
            match !best with
            | Some (_, _, bc) when bc <= c -> ()
            | _ -> best := Some (grid, sizes, c))
          candidates;
        match !best with
        | None -> Error "no feasible processor grid"
        | Some (grid, sizes, _) ->
            let total = Array.fold_left ( + ) 0 spreads in
            let ratio =
              Array.map
                (fun d ->
                  if total = 0 then 1.0
                  else float_of_int d /. float_of_int total)
                spreads
            in
            Ok
              {
                target_array = name;
                spreads;
                ratio;
                grid = Array.of_list grid;
                sizes;
              }
      end

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>AH target array: %s@,spreads: %s@,grid: %s@,tile sizes: %s@]"
    r.target_array
    (String.concat ", " (List.map string_of_int (Array.to_list r.spreads)))
    (String.concat "x" (List.map string_of_int (Array.to_list r.grid)))
    (String.concat "x" (List.map string_of_int (Array.to_list r.sizes)))
