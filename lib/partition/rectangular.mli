(** Rectangular loop partitioning (Section 3.7 + Section 3.6).

    Minimizes the sync-weighted cumulative footprint subject to the
    load-balance constraint [prod x_k = iterations / P] (the paper's
    [|det L| = IJK/P]) with the additional box constraints
    [1 <= x_k <= N_k].

    Two solvers cooperate:

    - a {e continuous} solver for the real relaxation.  The objective is a
      posynomial, hence convex in log coordinates; pairwise multiplicative
      coordinate descent with golden-section line search converges to the
      global optimum and reproduces the paper's Lagrange-multiplier
      answers (Examples 8-10);
    - a {e discrete} solver that enumerates processor grids (factorizations
      of [P] across the dimensions), evaluates the true integer cost of
      each, and returns the best feasible partition - this is what the
      Alewife compiler implementation needs to emit code. *)

open Intmath

type result = {
  grid : int array;  (** processors per dimension; product = nprocs *)
  sizes : int array;  (** tile iterations per dimension *)
  tile : Tile.t;
  predicted_misses_per_tile : int;
  predicted_traffic_per_tile : int;
  continuous_sizes : float array;  (** optimum of the real relaxation *)
  continuous_cost : float;
  cost : Cost.t;
}

val continuous_minimize :
  (float array -> float) -> volume:float -> extents:int array -> float array
(** Minimize an arbitrary posynomial-like objective over real [x] with
    [prod x = volume] and [1 <= x_k <= extents_k] by multiplicative
    coordinate descent (global for posynomials, which are convex in log
    coordinates). *)

val continuous_optimum :
  Cost.t -> volume:float -> extents:int array -> float array
(** {!continuous_minimize} applied to the nest's sync-weighted
    objective. *)

val optimize : Cost.t -> nprocs:int -> result
(** Full partitioning: continuous guidance plus exhaustive grid search.
    Raises [Invalid_argument] if [nprocs < 1]. *)

val aspect_ratio : Cost.t -> Rat.t array option
(** When the objective has the Abraham-Hudak shape
    [c0 * prod x + sum_k c_k * prod_{j<>k} x_j] (all classes with square
    nonsingular [G]; no lower-order terms), the unconstrained-aspect
    optimum satisfies [x_k proportional to c_k]; returns those
    coefficients (Example 8's 2:3:4).  [None] when lower-order terms make
    the closed form inapplicable. *)

val pp_result : Format.formatter -> result -> unit
