(** The Ramanujam & Sadayappan communication-free partitioning test
    (reference [7] of the paper), implemented independently.

    Two iterations [i1], [i2] {e share} data through references
    [(G, a1)], [(G, a2)] when [(i1 - i2) G = a2 - a1]; the integer
    solutions of that system (a particular solution plus the left null
    lattice of [G]) are the {e sharing vectors}.  A communication-free
    partition by parallel hyperplanes exists iff the sharing vectors of
    all reference pairs span a proper subspace of the iteration space;
    the hyperplane normals are an integer basis of the orthogonal
    complement.

    For the paper's Example 2, the single sharing direction is [(4, 0)],
    giving normal [(0, 1)]: partition by columns of [j] - exactly the
    partition [a] that the footprint framework also selects. *)

open Matrixkit
open Loopir

type t = {
  sharing : Ivec.t list;  (** generators of the sharing directions *)
  comm_free : bool;
  normals : Imat.t option;
      (** rows: hyperplane normals of a communication-free partition
          (present iff [comm_free]; identity rows when there is no sharing
          at all) *)
  note : string;
}

val sharing_vectors : Nest.t -> Ivec.t list
(** One generator set: per same-array uniformly generated pair, a
    particular solution of [v G = delta-a] (when one exists) plus a basis
    of [G]'s left null space. *)

val analyze : Nest.t -> t

val slab_tile : t -> Nest.t -> nprocs:int -> Partition.Tile.t option
(** When a communication-free partition exists along a single normal,
    build the corresponding slab tiling of the iteration space for [P]
    processors (used to cross-check with the simulator). *)

val pp : Format.formatter -> t -> unit
