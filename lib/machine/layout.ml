open Matrixkit
open Loopir

type entry = {
  base : int;
  lo : int array;
  hi : int array;
  strides : int array;  (* row-major; last dimension has stride 1 *)
  volume : int;
}

type t = { entries : (string * entry) list; total : int }

let round_up v align = (v + align - 1) / align * align

let of_nest ?(line_align = 1) nest =
  if line_align < 1 then invalid_arg "Layout.of_nest: line_align < 1";
  let boxes = Nest.array_bounding_boxes nest in
  let next = ref 0 in
  let entries =
    List.map
      (fun (name, (lo, hi)) ->
        let d = Array.length lo in
        let dims = Array.init d (fun j -> hi.(j) - lo.(j) + 1) in
        let strides = Array.make d 1 in
        for j = d - 2 downto 0 do
          strides.(j) <- strides.(j + 1) * dims.(j + 1)
        done;
        let volume = Array.fold_left ( * ) 1 dims in
        let base = round_up !next line_align in
        next := base + volume;
        (name, { base; lo; hi; strides; volume }))
      boxes
  in
  { entries; total = !next }

let entry t name =
  match List.assoc_opt name t.entries with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Layout: unknown array %s" name)

let address t name (point : Ivec.t) =
  let e = entry t name in
  let d = Array.length e.lo in
  if Array.length point <> d then
    invalid_arg "Layout.address: dimension mismatch";
  let acc = ref e.base in
  for j = 0 to d - 1 do
    if point.(j) < e.lo.(j) || point.(j) > e.hi.(j) then
      invalid_arg
        (Printf.sprintf "Layout.address: %s%s outside bounding box" name
           (Ivec.to_string point));
    acc := !acc + ((point.(j) - e.lo.(j)) * e.strides.(j))
  done;
  !acc

let line t ~line_size name point =
  if line_size < 1 then invalid_arg "Layout.line: line_size < 1";
  address t name point / line_size

let element_of t addr =
  let found =
    List.find_opt
      (fun (_, e) -> addr >= e.base && addr < e.base + e.volume)
      t.entries
  in
  match found with
  | None -> invalid_arg "Layout.element_of: address in padding or out of range"
  | Some (name, e) ->
      let off = ref (addr - e.base) in
      let coords =
        Array.mapi
          (fun j stride ->
            let c = !off / stride in
            off := !off mod stride;
            c + e.lo.(j))
          e.strides
      in
      (name, Array.to_list coords)

let frame t name =
  let e = entry t name in
  (e.base, Array.copy e.lo, Array.copy e.strides)

let total_elements t = t.total

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, e) ->
      Format.fprintf ppf "%s: base %d, box %s..%s (%d elements)@," name e.base
        (Ivec.to_string e.lo) (Ivec.to_string e.hi) e.volume)
    t.entries;
  Format.fprintf ppf "total: %d@]" t.total
