(** A single processor's coherent cache.

    Lines hold one array element (Section 2.2's unit-length lines) and
    carry an MSI state; the directory drives downgrades and invalidations.
    The default configuration is the paper's analytical model - an
    infinite cache with no conflicts - and a finite set-associative LRU
    cache is available to study the "adjust the tile to fit" remark of
    Section 2.2. *)

type geometry =
  | Infinite
  | Finite of { sets : int; ways : int }
      (** direct-mapped when [ways = 1]; address maps to set
          [addr mod sets] *)

type state = Shared | Modified

type t

val create : geometry -> t

val lookup : t -> int -> state option
(** [None] when the line is not present (Invalid). *)

val insert : t -> int -> state -> int option
(** Insert or update a line; returns [Some victim] when a valid line had
    to be evicted (its address), [None] otherwise.  Updates LRU order. *)

val set_state : t -> int -> state -> unit
(** Change the state of a resident line (e.g. downgrade M->S). *)

val invalidate : t -> int -> unit
(** Drop the line if present. *)

val resident : t -> int -> bool
val occupancy : t -> int
