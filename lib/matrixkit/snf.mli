(** Smith normal form.

    [smith a] returns [(s, u, v)] with [s = u * a * v], [u] and [v]
    unimodular, and [s] diagonal with non-negative entries satisfying
    [s.(i) | s.(i+1)].  The invariant factors determine when the integer
    map [i -> i*G] is onto (all factors 1, cf. Lemma 2) and give the index
    of the row lattice of [G] in [Z^d] when [G] is square
    ([|det G| = product of factors]). *)

val smith : Imat.t -> Imat.t * Imat.t * Imat.t

val invariant_factors : Imat.t -> int list
(** The non-zero diagonal entries of the Smith form, in order. *)

val lattice_index : Imat.t -> int
(** For a square nonsingular [g], the index [Z^n : rowlattice(g)], i.e.
    [|det g|].  Computed from the invariant factors. *)
