(** The program gallery: every worked example of the paper plus the
    workloads its introduction motivates, built with the {!Loopir.Dsl}.

    Sizes are parameters so tests can shrink them and benchmarks can grow
    them; defaults match the paper where it gives concrete bounds. *)

open Loopir

val example2 : ?n:int -> unit -> Nest.t
(** Example 2: [A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3]] over a 100x100
    space ([i] from 101, [j] from 1).  [n] scales both extents. *)

val example3 : ?n:int -> unit -> Nest.t
(** Example 3: [A[i,j] = B[i,j] + B[i+1,j+3]]. *)

val example6 : ?n:int -> unit -> Nest.t
(** Example 6: [A[i,j] = B[i+j,j] + B[i+j+1,j+2]]. *)

val example8 : ?n:int -> unit -> Nest.t
(** Example 8: 3-nest, [B(i-1,j,k+1) + B(i,j+1,k) + B(i+1,j-2,k-3)]. *)

val example8_seq : ?n:int -> ?steps:int -> unit -> Nest.t
(** Figure 9: Example 8 wrapped in a sequential time loop. *)

val example9 : ?n:int -> unit -> Nest.t
(** Example 9: two uniformly intersecting classes (B and C). *)

val example10 : ?n:int -> unit -> Nest.t
(** Example 10: nonsingular-but-not-unimodular and singular [G]s. *)

val example8_inplace : ?n:int -> ?steps:int -> unit -> Nest.t
(** Example 8's reference pattern made in-place (all references to one
    array) under a time loop: each outer iteration re-generates exactly
    the steady-state coherence traffic [2 L_j L_k + 3 L_i L_k + 4 L_i L_j]
    that Figure 9's discussion analyses. *)

val relax_inplace : ?n:int -> ?steps:int -> unit -> Nest.t
(** In-place 4-neighbour relaxation under a time loop (2-D analogue of
    {!example8_inplace}). *)

val matmul : ?n:int -> unit -> Nest.t
(** Figure 11 (Appendix A): [l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j]] with
    atomic accumulates. *)

val stencil5 : ?n:int -> ?steps:int -> unit -> Nest.t
(** Five-point Jacobi relaxation under a time loop: the canonical
    cache-coherence workload. *)

val stencil27 : ?n:int -> ?steps:int -> unit -> Nest.t
(** Dense 3x3x3 stencil in three dimensions (27-point). *)

val conv3x3 : ?n:int -> unit -> Nest.t
(** Dense 3x3 convolution: a 9-reference uniformly intersecting class
    with spread (2,2). *)

val diag_accumulate : ?n:int -> unit -> Nest.t
(** [l$H[i+j] = l$H[i+j] + X[i,j]]: a rank-1 projection target under
    atomic accumulation - every anti-diagonal's sum races across
    processors, and the footprint engine must count [{i+j}] exactly
    (Section 3.8's general-G case). *)

val transpose_like : ?n:int -> unit -> Nest.t
(** [A[i,j] = B[j,i] + B[j+1,i]]: a non-uniformly-intersecting pair with
    its transpose - exercises Definition 4's general intersection test. *)

val all : (string * Nest.t) list
(** Default-size instances of the whole gallery, keyed by name. *)

val find : string -> Nest.t option
