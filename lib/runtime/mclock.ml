(* CLOCK_MONOTONIC without new C stubs: bechamel's monotonic_clock
   package (already a dependency of the bench harness) exposes exactly
   the [clock_gettime] call we need, as an unboxed [@@noalloc]
   external. *)

let now_ns () = Monotonic_clock.now ()

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* The guard keeps the last value handed out in an atomic float box.
   [read] publishes max(source, floor): a source that steps backwards
   (a replayed wall clock, an adversarial test source) is clamped to the
   floor, so time as seen through the clock never runs backwards.  The
   CAS loop only retries when another domain raised the floor
   concurrently - with the default monotonic source it is all fast
   path. *)
type t = { source : unit -> float; floor : float Atomic.t }

let create ?(source = now) () = { source; floor = Atomic.make neg_infinity }

let rec read c =
  let v = c.source () in
  let floor = Atomic.get c.floor in
  if v <= floor then floor
  else if Atomic.compare_and_set c.floor floor v then v
  else read c

module Deadline = struct
  type d = {
    clock : t;
    mutable at : float;  (** absolute clock reading the deadline expires at *)
    fired : bool Atomic.t;
  }

  let check after =
    if not (Float.is_finite after) || after < 0.0 then
      invalid_arg "Mclock.Deadline: after must be finite and >= 0"

  let arm clock ~after =
    check after;
    { clock; at = read clock +. after; fired = Atomic.make false }

  let expired d = read d.clock > d.at

  (* The latch, not the clock, guarantees exactly-once: even if the
     underlying source steps back past the deadline and forward again,
     the CAS admits a single winner. *)
  let fire d = expired d && Atomic.compare_and_set d.fired false true

  let reset d ~after =
    check after;
    d.at <- read d.clock +. after;
    Atomic.set d.fired false
end
