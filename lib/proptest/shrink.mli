(** Greedy counterexample minimization.

    Candidate moves: drop the sequential loop, drop a reference, drop a
    whole loop dimension (removing the matching [G] rows and tile entry),
    shrink extents toward trip count 1, move lower bounds to 0, shrink
    tile sizes and the processor count, and zero or halve individual [G]
    entries and offset components.  Every accepted move strictly
    decreases {!Gen.weight}, so the loop terminates; a budget additionally
    caps the number of oracle evaluations. *)

type result = {
  shrunk : Gen.case;
  violation : Oracle.violation;  (** the oracle the shrunk case still fails *)
  evals : int;  (** oracle evaluations spent *)
  steps : int;  (** accepted shrink moves *)
}

val minimize :
  fails:(Gen.case -> Oracle.violation option) ->
  budget:int ->
  Gen.case ->
  Oracle.violation ->
  result
(** [minimize ~fails ~budget case v]: [case] must fail ([fails case =
    Some v]); returns a case that still fails and cannot be shrunk
    further by any single move (or the budget ran out). *)
