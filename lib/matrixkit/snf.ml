(* Classical Smith normal form by alternating row and column gcd
   reduction.  Matrices in this code base are tiny (loop nesting <= 4), so
   the simple algorithm with full re-scans is plenty fast. *)

let smith a0 =
  let r = Imat.rows a0 and c = Imat.cols a0 in
  let a = Array.init r (fun i -> Imat.row a0 i) in
  let u = Array.init r (fun i -> Array.init r (fun j -> if i = j then 1 else 0)) in
  let v = Array.init c (fun i -> Array.init c (fun j -> if i = j then 1 else 0)) in
  (* v is maintained transposed-free: we apply column ops to [a] and the
     same column ops to [v] (v accumulates them as a right factor). *)
  let swap_rows i j =
    let t = a.(i) in a.(i) <- a.(j); a.(j) <- t;
    let t = u.(i) in u.(i) <- u.(j); u.(j) <- t
  in
  let swap_cols i j =
    Array.iter (fun row -> let t = row.(i) in row.(i) <- row.(j); row.(j) <- t) a;
    Array.iter (fun row -> let t = row.(i) in row.(i) <- row.(j); row.(j) <- t) v
  in
  let sub_row i j q =
    a.(i) <- Array.mapi (fun k x -> x - (q * a.(j).(k))) a.(i);
    u.(i) <- Array.mapi (fun k x -> x - (q * u.(j).(k))) u.(i)
  in
  let sub_col i j q =
    Array.iter (fun row -> row.(i) <- row.(i) - (q * row.(j))) a;
    Array.iter (fun row -> row.(i) <- row.(i) - (q * row.(j))) v
  in
  let negate_row i =
    a.(i) <- Array.map (fun x -> -x) a.(i);
    u.(i) <- Array.map (fun x -> -x) u.(i)
  in
  let n = min r c in
  for t = 0 to n - 1 do
    (* Find a non-zero pivot in the trailing submatrix. *)
    let piv = ref None in
    for i = t to r - 1 do
      for j = t to c - 1 do
        if a.(i).(j) <> 0 then
          match !piv with
          | Some (pi, pj) when abs a.(pi).(pj) <= abs a.(i).(j) -> ()
          | _ -> piv := Some (i, j)
      done
    done;
    match !piv with
    | None -> () (* trailing submatrix is zero; done *)
    | Some (pi, pj) ->
        if pi <> t then swap_rows pi t;
        if pj <> t then swap_cols pj t;
        let dirty = ref true in
        while !dirty do
          dirty := false;
          (* Clear column t below/above the pivot. *)
          for i = 0 to r - 1 do
            if i <> t && a.(i).(t) <> 0 then begin
              let q = Intmath.Int_math.floor_div a.(i).(t) a.(t).(t) in
              sub_row i t q;
              if a.(i).(t) <> 0 then begin
                (* Remainder is smaller than the pivot: promote it. *)
                swap_rows i t;
                dirty := true
              end
            end
          done;
          (* Clear row t. *)
          for j = 0 to c - 1 do
            if j <> t && a.(t).(j) <> 0 then begin
              let q = Intmath.Int_math.floor_div a.(t).(j) a.(t).(t) in
              sub_col j t q;
              if a.(t).(j) <> 0 then begin
                swap_cols j t;
                dirty := true
              end
            end
          done
        done;
        if a.(t).(t) < 0 then negate_row t
  done;
  (* Enforce the divisibility chain d_i | d_{i+1}. *)
  let again = ref true in
  while !again do
    again := false;
    for t = 0 to n - 2 do
      let x = a.(t).(t) and y = a.(t + 1).(t + 1) in
      if x <> 0 && y mod x <> 0 then begin
        (* Standard trick: add column t+1 to column t, then re-reduce the
           2x2 block.  Doing a full pass keeps the code simple. *)
        sub_col t (t + 1) (-1);
        let dirty = ref true in
        while !dirty do
          dirty := false;
          for i = 0 to r - 1 do
            if i <> t && a.(i).(t) <> 0 then begin
              let q = Intmath.Int_math.floor_div a.(i).(t) a.(t).(t) in
              sub_row i t q;
              if a.(i).(t) <> 0 then begin
                swap_rows i t;
                dirty := true
              end
            end
          done;
          for j = 0 to c - 1 do
            if j <> t && a.(t).(j) <> 0 then begin
              let q = Intmath.Int_math.floor_div a.(t).(j) a.(t).(t) in
              sub_col j t q;
              if a.(t).(j) <> 0 then begin
                swap_cols j t;
                dirty := true
              end
            end
          done
        done;
        if a.(t).(t) < 0 then negate_row t;
        again := true
      end
    done
  done;
  for t = 0 to n - 1 do
    if a.(t).(t) < 0 then negate_row t
  done;
  (Imat.of_array a, Imat.of_array u, Imat.of_array v)

let invariant_factors g =
  let s, _, _ = smith g in
  let n = min (Imat.rows s) (Imat.cols s) in
  List.filter (fun d -> d <> 0) (List.init n (fun i -> Imat.get s i i))

let lattice_index g =
  if not (Imat.is_square g) then invalid_arg "Snf.lattice_index: not square";
  let d = Imat.det g in
  if d = 0 then invalid_arg "Snf.lattice_index: singular";
  abs d
