(** Full-map directory (one entry per memory line, as in Alewife's
    LimitLESS ancestor schemes, simplified to a full bit vector).

    Tracks, per address, the set of caches holding the line and which of
    them (if any) holds it Modified. *)

type t

val create : unit -> t

val sharers : t -> int -> int list
(** Caches holding the line (in Shared or Modified state). *)

val owner : t -> int -> int option
(** The cache holding the line Modified, if any. *)

val add_sharer : t -> int -> int -> unit
val set_owner : t -> int -> int -> unit
(** Make the processor the exclusive Modified holder. *)

val downgrade_owner : t -> int -> unit
(** Owner drops to Shared (stays a sharer). *)

val remove : t -> int -> int -> unit
(** Drop one cache from the sharer set. *)

val clear : t -> int -> unit
(** Drop all sharers (e.g. after invalidation broadcast). *)
