(** Parser for a tiny Doall surface syntax, standing in for the Alewife
    compiler's front end (Mul-T / Semi-C).

    Grammar (one construct per line; [#] starts a comment):
    {v
    nest      := [seq-line] doall-line+ stmt-line
    seq-line  := "doseq" ident "=" int "to" int
    doall-line:= "doall" ident "=" int "to" int
    stmt-line := ref "=" ref ("+" ref)*
    ref       := ["l$"] ident "[" expr ("," expr)* "]"
    expr      := term (("+"|"-") term)*
    term      := ["-"] [int "*"] ident | ["-"] int
    v}

    The left-hand side of the statement is a write (an atomic accumulate
    when prefixed by [l$], as in the paper's Appendix A); right-hand side
    references are reads. *)

exception Parse_error of string
(** Raised with a human-readable message including the line number. *)

val nest_of_string : ?name:string -> string -> Nest.t
val expr_of_string : vars:string array -> string -> Dsl.expr
(** Parse a single subscript expression given loop-variable names. *)
