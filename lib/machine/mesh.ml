type kind = Mesh | Uniform

type t = { kind : kind; nprocs : int; cols : int }

let mesh ~nprocs =
  if nprocs < 1 then invalid_arg "Mesh.mesh: nprocs < 1";
  let cols = Intmath.Int_math.isqrt nprocs in
  let cols = if cols * cols < nprocs then cols + 1 else cols in
  { kind = Mesh; nprocs; cols }

let uniform ~nprocs =
  if nprocs < 1 then invalid_arg "Mesh.uniform: nprocs < 1";
  { kind = Uniform; nprocs; cols = max 1 nprocs }

let nprocs t = t.nprocs
let coords t p = (p mod t.cols, p / t.cols)

let distance t a b =
  if a = b then 0
  else
    match t.kind with
    | Uniform -> 1
    | Mesh ->
        let xa, ya = coords t a and xb, yb = coords t b in
        abs (xa - xb) + abs (ya - yb)

let is_uniform t = t.kind = Uniform

let pp ppf t =
  match t.kind with
  | Uniform -> Format.fprintf ppf "uniform(%d procs)" t.nprocs
  | Mesh ->
      Format.fprintf ppf "mesh(%d procs, %d cols)" t.nprocs t.cols
