open Intmath
open Matrixkit
open Loopir

type t = {
  sharing : Ivec.t list;
  comm_free : bool;
  normals : Imat.t option;
  note : string;
}

let pairs xs =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go xs

let sharing_vectors nest =
  let vectors = ref [] in
  let push v = if not (Ivec.is_zero v) then vectors := v :: !vectors in
  List.iter
    (fun name ->
      let refs = Nest.references_to nest name in
      (* Self-sharing: iterations mapped to the same element by one
         reference - the left null lattice of G. *)
      (match refs with
      | (r : Reference.t) :: _ -> (
          match Hnf.left_nullspace (Affine.g r.Reference.index) with
          | None -> ()
          | Some basis -> List.iter push (Imat.row_list basis))
      | [] -> ());
      (* Pairwise sharing within uniformly generated sets. *)
      List.iter
        (fun ((r : Reference.t), (s : Reference.t)) ->
          if Affine.uniformly_generated r.Reference.index s.Reference.index
          then
            let delta =
              Ivec.sub
                (Affine.offset s.Reference.index)
                (Affine.offset r.Reference.index)
            in
            match Hnf.solve_left_int (Affine.g r.Reference.index) delta with
            | Some v -> push v
            | None -> ())
        (pairs refs))
    (Nest.arrays nest);
  List.rev !vectors

let analyze nest =
  let sharing = sharing_vectors nest in
  let l = Nest.nesting nest in
  match sharing with
  | [] ->
      {
        sharing;
        comm_free = true;
        normals = Some (Imat.identity l);
        note = "no data sharing at all: every partition is communication-free";
      }
  | _ ->
      let m = Imat.of_rows (List.map Ivec.to_list sharing) in
      if Imat.rank m >= l then
        {
          sharing;
          comm_free = false;
          normals = None;
          note =
            "sharing vectors span the iteration space: no communication-free \
             hyperplane partition exists";
        }
      else
        (* Normals: integer vectors orthogonal to every sharing vector,
           i.e. the left null space of the transposed sharing matrix. *)
        let normals = Hnf.left_nullspace (Imat.transpose m) in
        {
          sharing;
          comm_free = true;
          normals;
          note = "communication-free hyperplane partition found";
        }

let axis_of (h : Ivec.t) =
  let nz =
    List.filter (fun k -> h.(k) <> 0) (List.init (Array.length h) Fun.id)
  in
  match nz with [ k ] -> Some k | _ -> None

let slab_tile t nest ~nprocs =
  match t.normals with
  | None -> None
  | Some normals -> (
      let extents = Nest.extents nest in
      let l = Array.length extents in
      let rows = Imat.row_list normals in
      (* Prefer an axis-aligned normal: it yields a rectangular slab. *)
      let axis = List.find_map axis_of rows in
      match axis with
      | Some k ->
          let sizes =
            Array.mapi
              (fun j n -> if j = k then max 1 (Int_math.ceil_div n nprocs) else n)
              extents
          in
          Some (Partition.Tile.rect sizes)
      | None -> (
          match (l, t.sharing) with
          | 2, s :: _ -> (
              (* General 2-D case: one row along the sharing direction
                 spanning the space, one thin row across it. *)
              match rows with
              | h :: _ ->
                  let m =
                    List.fold_left
                      (fun acc k ->
                        if s.(k) = 0 then acc
                        else min acc (extents.(k) / abs s.(k)))
                      max_int
                      (List.init 2 Fun.id)
                  in
                  let r1 = Ivec.scale (max 1 m) s in
                  let cross = abs ((r1.(0) * h.(1)) - (r1.(1) * h.(0))) in
                  if cross = 0 then None
                  else
                    let volume =
                      Nest.iterations nest / max 1 nprocs
                    in
                    let thickness =
                      max 1 (Int_math.ceil_div volume cross)
                    in
                    let r2 = Ivec.scale thickness h in
                    let lmat = Imat.of_rows [ Ivec.to_list r1; Ivec.to_list r2 ] in
                    if Imat.det lmat = 0 then None
                    else Some (Partition.Tile.pped lmat)
              | [] -> None)
          | _ -> None))

let pp ppf t =
  Format.fprintf ppf "@[<v>sharing vectors: %s@,communication-free: %b@,%s"
    (String.concat ", " (List.map Ivec.to_string t.sharing))
    t.comm_free t.note;
  (match t.normals with
  | Some n -> Format.fprintf ppf "@,normals:@,%a" Imat.pp n
  | None -> ());
  Format.fprintf ppf "@]"
