open Matrixkit

type policy =
  | Fail_fast
  | Retry of { attempts : int; backoff_ms : int }
  | Degrade

let policy_to_string = function
  | Fail_fast -> "fail-fast"
  | Retry { attempts; backoff_ms } ->
      Printf.sprintf "retry:%d:%d" attempts backoff_ms
  | Degrade -> "degrade"

let default_retry = Retry { attempts = 3; backoff_ms = 25 }

let policy_of_string s =
  let pos_int v = match int_of_string_opt v with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None
  in
  match String.split_on_char ':' s with
  | [ "fail-fast" ] | [ "failfast" ] -> Ok Fail_fast
  | [ "degrade" ] -> Ok Degrade
  | [ "retry" ] -> Ok default_retry
  | [ "retry"; a ] -> (
      match pos_int a with
      | Some attempts -> Ok (Retry { attempts; backoff_ms = 25 })
      | None -> Error "retry:ATTEMPTS needs ATTEMPTS >= 1")
  | [ "retry"; a; b ] -> (
      match (pos_int a, int_of_string_opt b) with
      | Some attempts, Some backoff_ms when backoff_ms >= 0 ->
          Ok (Retry { attempts; backoff_ms })
      | _ -> Error "retry:ATTEMPTS:BACKOFF_MS needs ATTEMPTS >= 1, BACKOFF_MS >= 0")
  | _ ->
      Error
        (Printf.sprintf
           "unknown fault policy %S (fail-fast | retry[:N[:MS]] | degrade)" s)

type config = { policy : policy; deadline_ms : int; stall_poll_ms : int }

let default_config =
  { policy = default_retry; deadline_ms = 1000; stall_poll_ms = 5 }

type partitioned = {
  nprocs : int;
  tiles : Ivec.t array array;
  owners : int array;
  boxes : (int * int) array option array;
}

(* A tile's points arrive in lexicographic order; when they are exactly
   a full rectangular box (volume = count, all points distinct and
   inside the bounding box), {!Kernel.run_box} over that box visits the
   same iterations - the precondition for the kernel fast path. *)
let bounding_box (pts : Ivec.t array) =
  if Array.length pts = 0 then None
  else begin
    let d = Array.length pts.(0) in
    let lo = Array.copy pts.(0) and hi = Array.copy pts.(0) in
    Array.iter
      (fun p ->
        for k = 0 to d - 1 do
          if p.(k) < lo.(k) then lo.(k) <- p.(k);
          if p.(k) > hi.(k) then hi.(k) <- p.(k)
        done)
      pts;
    let volume = ref 1 in
    for k = 0 to d - 1 do
      volume := !volume * (hi.(k) - lo.(k) + 1)
    done;
    if !volume = Array.length pts then
      Some (Array.init d (fun k -> (lo.(k), hi.(k))))
    else None
  end

let tiles_of_schedule sched =
  let open Partition in
  let nprocs = sched.Codegen.nprocs in
  let per_proc = Codegen.iterations_by_proc sched in
  let tbl = Hashtbl.create 64 in
  let rev_keys = ref [] in
  Array.iteri
    (fun p pts ->
      List.iter
        (fun pt ->
          let key = (p, Array.to_list (Codegen.tile_id sched pt)) in
          match Hashtbl.find_opt tbl key with
          | Some cell -> cell := pt :: !cell
          | None ->
              Hashtbl.add tbl key (ref [ pt ]);
              rev_keys := key :: !rev_keys)
        pts)
    per_proc;
  let keys = Array.of_list (List.rev !rev_keys) in
  let tiles =
    Array.map (fun k -> Array.of_list (List.rev !(Hashtbl.find tbl k))) keys
  in
  {
    nprocs;
    tiles;
    owners = Array.map fst keys;
    boxes = Array.map bounding_box tiles;
  }

(* ------------------------------------------------------------------ *)
(* Per-attempt machinery                                               *)
(* ------------------------------------------------------------------ *)

exception Injected_crash
exception Injected_corruption

(* Internal control flow, never escapes [execute]. *)
exception Retired  (* this domain is dead; unwind its step loop *)
exception Halt  (* the attempt was aborted; unwind quietly *)

(* The end-of-step gate: a mutex-protected dynamic barrier.  [parties]
   shrinks when a domain retires; the release condition additionally
   demands the orphan list empty and no arrived domain busy re-executing
   an orphan, so a step never ends with work outstanding.  Waiters poll
   [epoch] with {!Pool.backoff} (no condition variable: they must keep
   servicing orphans and running the watchdog while they wait). *)
type gate = {
  m : Mutex.t;
  epoch : int Atomic.t;  (** completed steps; step [s] released when >= s *)
  aborted : bool Atomic.t;
  mutable parties : int;  (** live domains *)
  mutable arrived : int;  (** live domains waiting at the gate *)
  mutable busy : int;  (** arrived domains currently running an orphan *)
  entered : int array;  (** last step each domain arrived for *)
  dead : bool array;
  mutable orphans : int list;  (** tile ids awaiting re-execution *)
  mutable failure : string option;
  mutable events_rev : Report.event list;
  mutable retired : int list;
  mutable reexec_step : int;
  mutable reexec_total : int;
  mutable cover_ok : bool;
}

type ctx = {
  cfg : config;
  plan : Fault.plan;
  storage : Exec.storage;
  exec_tile : int -> unit;  (** run every point of the tile once *)
  plain_writes : Ivec.t -> int list;
  steps : int;
  recover : bool;  (** tile-level crash recovery enabled *)
  tiles : Ivec.t array array;
  queue_tiles : int array array;  (** domain -> tile ids in its deque *)
  deques : Pool.Deques.d;
  hb : int Atomic.t array;  (** per-domain heartbeat: tiles completed *)
  done_count : int Atomic.t array;  (** per-tile completions this step *)
  clock : Mclock.t;  (** guarded monotonic clock the watchdog reads *)
  trace : Trace.t;
  g : gate;
}

type dstate = { me : int; mutable claims : int }

(* Every timestamp here - deadlines, heartbeat ages, attempt and job
   wall clocks - is monotonic.  The watchdog additionally goes through
   a guarded {!Mclock.t} and one-shot {!Mclock.Deadline}s, so even a
   misbehaving time source could not make a stall deadline fire twice
   or re-arm after firing. *)
let now () = Mclock.now ()

let locked g f =
  Mutex.lock g.m;
  match f () with
  | v ->
      Mutex.unlock g.m;
      v
  | exception e ->
      Mutex.unlock g.m;
      raise e

let record g e = g.events_rev <- e :: g.events_rev

(* Called under the gate lock. *)
let do_release ctx ~step =
  let g = ctx.g in
  for t = 0 to Array.length ctx.tiles - 1 do
    if Atomic.get ctx.done_count.(t) <> 1 then g.cover_ok <- false;
    Atomic.set ctx.done_count.(t) 0
  done;
  if g.reexec_step > 0 then begin
    record g (Report.Tiles_reexecuted { count = g.reexec_step; step });
    g.reexec_total <- g.reexec_total + g.reexec_step;
    g.reexec_step <- 0
  end;
  Pool.Deques.reset ctx.deques;
  g.arrived <- 0;
  Atomic.set g.epoch step

let try_release ctx ~step =
  let g = ctx.g in
  if
    g.parties > 0 && g.arrived >= g.parties && g.busy = 0 && g.orphans = []
    && (not (Atomic.get g.aborted))
    && Atomic.get g.epoch < step
  then do_release ctx ~step

let abort_locked g ~reason =
  if not (Atomic.get g.aborted) then begin
    g.failure <- Some reason;
    Atomic.set g.aborted true
  end

let interruptible_stall ctx ms =
  let slice = float_of_int (max 1 ctx.cfg.stall_poll_ms) /. 1000.0 in
  let until = now () +. (float_of_int ms /. 1000.0) in
  let rec loop () =
    if Atomic.get ctx.g.aborted then raise Halt;
    let remain = until -. now () in
    if remain > 0.0 then begin
      Unix.sleepf (Float.min slice remain);
      loop ()
    end
  in
  loop ()

let corrupt_target ctx t =
  let pts = ctx.tiles.(t) in
  let rec go i =
    if i >= Array.length pts then None
    else
      match ctx.plain_writes pts.(i) with
      | a :: _ -> Some a
      | [] -> go (i + 1)
  in
  go 0

let run_tile ?(kind = Trace.Tile) ctx ds ~step t =
  let g = ctx.g in
  let claim = ds.claims in
  ds.claims <- ds.claims + 1;
  let d0 = Trace.depth ctx.trace ds.me in
  Trace.begin_span ctx.trace ds.me kind ~arg:t;
  try
    (match Fault.fire ctx.plan ~domain:ds.me ~step ~claim with
    | None -> ()
    | Some (site, action) ->
        Trace.incr ctx.trace ds.me Trace.Faults_injected;
        locked g (fun () ->
            record g (Report.Injected { action; site; domain = ds.me; step }));
        (match action with
        | Fault.Crash -> raise Injected_crash
        | Fault.Corrupt ->
            (match corrupt_target ctx t with
            | Some a -> Exec.poke ctx.storage a Float.nan
            | None -> ());
            raise Injected_corruption
        | Fault.Stall ms -> interruptible_stall ctx ms));
    if Atomic.get g.aborted then raise Halt;
    Trace.begin_span ctx.trace ds.me Trace.Exec ~arg:t;
    ctx.exec_tile t;
    Trace.end_span ctx.trace ds.me;
    Atomic.incr ctx.done_count.(t);
    Atomic.incr ctx.hb.(ds.me);
    Trace.incr ctx.trace ds.me Trace.Tiles_run;
    Trace.end_span ctx.trace ds.me
  with e ->
    (* An injected crash, a stall's abort, or a real worker exception
       leaves spans open; close them so the trace stays well-nested. *)
    Trace.unwind ctx.trace ds.me ~depth:d0;
    raise e

(* A worker exception while holding tile [t].  With tile-level recovery
   the domain retires and orphans the tile - it has provably stopped
   executing, so a survivor can re-run the tile without write races.
   Without recovery (non-idempotent tiles, or Fail_fast) the whole
   attempt aborts. *)
let crashed ctx ds ~step ~tile ~was_busy exn_str =
  let g = ctx.g in
  Trace.incr ctx.trace ds.me Trace.Faults_detected;
  if ctx.recover then begin
    locked g (fun () ->
        if was_busy then g.busy <- g.busy - 1;
        g.orphans <- tile :: g.orphans;
        g.dead.(ds.me) <- true;
        g.parties <- g.parties - 1;
        if was_busy then g.arrived <- g.arrived - 1;
        g.retired <- ds.me :: g.retired;
        record g (Report.Crashed { domain = ds.me; step; exn = exn_str });
        try_release ctx ~step);
    raise Retired
  end
  else begin
    locked g (fun () ->
        if was_busy then g.busy <- g.busy - 1;
        record g (Report.Crashed { domain = ds.me; step; exn = exn_str });
        abort_locked g
          ~reason:
            (Printf.sprintf "domain %d crashed at step %d: %s" ds.me step
               exn_str));
    raise Halt
  end

let drain ctx ds ~step =
  let continue_ = ref true in
  while !continue_ do
    if Atomic.get ctx.g.aborted then raise Halt;
    match Pool.Deques.pop ctx.deques ~me:ds.me ~chunk:1 with
    | None -> continue_ := false
    | Some (owner, lo, _hi) ->
        let t = ctx.queue_tiles.(owner).(lo) in
        if owner <> ds.me then begin
          Trace.incr ctx.trace ds.me Trace.Steals;
          Trace.instant ctx.trace ds.me Trace.Steal ~arg:t
        end;
        (try run_tile ctx ds ~step t with
        | Halt -> raise Halt
        | exn ->
            crashed ctx ds ~step ~tile:t ~was_busy:false
              (Printexc.to_string exn))
  done

(* While waiting at the gate, service one orphaned tile if any.  The
   helper is already counted in [arrived]; [busy] keeps the gate shut
   until it finishes. *)
let help_orphan ctx ds ~step =
  let g = ctx.g in
  Mutex.lock g.m;
  match g.orphans with
  | t :: rest when (not g.dead.(ds.me)) && not (Atomic.get g.aborted) ->
      g.orphans <- rest;
      g.busy <- g.busy + 1;
      Mutex.unlock g.m;
      (try
         run_tile ~kind:Trace.Reexec ctx ds ~step t;
         locked g (fun () ->
             g.busy <- g.busy - 1;
             g.reexec_step <- g.reexec_step + 1;
             try_release ctx ~step);
         true
       with
      | Halt ->
          locked g (fun () -> g.busy <- g.busy - 1);
          raise Halt
      | exn ->
          crashed ctx ds ~step ~tile:t ~was_busy:true (Printexc.to_string exn))
  | _ ->
      Mutex.unlock g.m;
      false

(* The stall deadline is a one-shot {!Mclock.Deadline}: [fire] consumes
   it with a CAS, so even if several waiters probe concurrently - or the
   underlying time source misbehaves across its expiry - exactly one
   probe observes the expiry.  A probe that finds every domain making
   progress re-arms it; a probe that finds a silent straggler leaves it
   consumed (the attempt aborts anyway). *)
let watchdog ctx ds ~step ~dl ~snap ~after =
  if Mclock.Deadline.fire dl then begin
    Trace.instant ctx.trace ds.me Trace.Watchdog ~arg:step;
    let g = ctx.g in
    let silent = ref (-1) in
    for q = 0 to Array.length ctx.hb - 1 do
      if (not g.dead.(q)) && g.entered.(q) < step then
        if Atomic.get ctx.hb.(q) = snap.(q) && !silent < 0 then silent := q
    done;
    if !silent >= 0 then
      locked g (fun () ->
          let q = !silent in
          if
            (not (Atomic.get g.aborted))
            && (not g.dead.(q))
            && g.entered.(q) < step
          then begin
            record g (Report.Timed_out { domain = q; step });
            Trace.incr ctx.trace ds.me Trace.Faults_detected;
            abort_locked g
              ~reason:
                (Printf.sprintf
                   "watchdog: domain %d heartbeat silent beyond %d ms at step \
                    %d"
                   q ctx.cfg.deadline_ms step)
          end)
    else begin
      Array.iteri (fun i h -> snap.(i) <- Atomic.get h) ctx.hb;
      Mclock.Deadline.reset dl ~after
    end
  end

let gate_enter ctx ds ~step =
  let g = ctx.g in
  locked g (fun () ->
      g.entered.(ds.me) <- step;
      g.arrived <- g.arrived + 1;
      try_release ctx ~step);
  let after = float_of_int ctx.cfg.deadline_ms /. 1000.0 in
  let dl = Mclock.Deadline.arm ctx.clock ~after in
  let snap = Array.map Atomic.get ctx.hb in
  let spins = ref 0 in
  let yielded = ref 0 in
  let d0 = Trace.depth ctx.trace ds.me in
  Trace.begin_span ctx.trace ds.me Trace.Barrier ~arg:step;
  (try
     while Atomic.get g.epoch < step && not (Atomic.get g.aborted) do
       if help_orphan ctx ds ~step then begin
         Mclock.Deadline.reset dl ~after;
         Array.iteri (fun i h -> snap.(i) <- Atomic.get h) ctx.hb;
         spins := 0
       end
       else begin
         Pool.backoff ~yielded !spins;
         incr spins;
         watchdog ctx ds ~step ~dl ~snap ~after
       end
     done;
     Trace.end_span ctx.trace ds.me
   with e ->
     Trace.unwind ctx.trace ds.me ~depth:d0;
     Trace.add ctx.trace ds.me Trace.Backoff_yields !yielded;
     raise e);
  Trace.add ctx.trace ds.me Trace.Backoff_yields !yielded;
  if Atomic.get g.aborted then raise Halt

let job ctx me =
  let ds = { me; claims = 0 } in
  try
    for step = 1 to ctx.steps do
      ds.claims <- 0;
      let d0 = Trace.depth ctx.trace me in
      Trace.begin_span ctx.trace me Trace.Step ~arg:step;
      (try
         drain ctx ds ~step;
         gate_enter ctx ds ~step;
         Trace.end_span ctx.trace me
       with e ->
         Trace.unwind ctx.trace me ~depth:d0;
         raise e)
    done
  with Retired | Halt -> ()

(* ------------------------------------------------------------------ *)
(* Attempt driver                                                      *)
(* ------------------------------------------------------------------ *)

let make_ctx cfg plan compiled steps (p : partitioned) ~recover ~kernels ~trace =
  let n = p.nprocs in
  let ntiles = Array.length p.tiles in
  if Array.length p.owners <> ntiles then
    invalid_arg "Resilient: owners/tiles length mismatch";
  if Array.length p.boxes <> ntiles then
    invalid_arg "Resilient: boxes/tiles length mismatch";
  Array.iter
    (fun o -> if o < 0 || o >= n then invalid_arg "Resilient: owner out of range")
    p.owners;
  let queue_tiles =
    let by = Array.make n [] in
    for t = ntiles - 1 downto 0 do
      by.(p.owners.(t)) <- t :: by.(p.owners.(t))
    done;
    Array.map Array.of_list by
  in
  let storage = Exec.alloc compiled in
  let exec_tile =
    let run_point = Exec.exec_point compiled storage in
    let by_points t =
      let pts = p.tiles.(t) in
      for i = 0 to Array.length pts - 1 do
        run_point (Array.unsafe_get pts i)
      done
    in
    match kernels with
    | None -> by_points
    | Some kplan ->
        fun t ->
          (* Box tiles take the specialized strided loops; ragged tiles
             (clipped parallelepipeds) keep the point interpreter. *)
          (match p.boxes.(t) with
          | Some b -> Kernel.run_box kplan storage b
          | None -> by_points t)
  in
  {
    cfg;
    plan;
    storage;
    exec_tile;
    plain_writes = Exec.plain_write_addresses compiled;
    steps;
    recover;
    tiles = p.tiles;
    queue_tiles;
    deques = Pool.Deques.create ~lengths:(Array.map Array.length queue_tiles);
    hb = Array.init n (fun _ -> Atomic.make 0);
    done_count = Array.init ntiles (fun _ -> Atomic.make 0);
    clock = Mclock.create ();
    trace;
    g =
      {
        m = Mutex.create ();
        epoch = Atomic.make 0;
        aborted = Atomic.make false;
        parties = n;
        arrived = 0;
        busy = 0;
        entered = Array.make n 0;
        dead = Array.make n false;
        orphans = [];
        failure = None;
        events_rev = [];
        retired = [];
        reexec_step = 0;
        reexec_total = 0;
        cover_ok = true;
      };
  }

let run_attempt cfg plan compiled steps ~partition ~size ~recover ~kernels
    ~trace ~attempt_no ~backoff_ms ~pre_events =
  let t0 = now () in
  let failed ?(events = pre_events) ?(tiles_total = 0) ?(reexec = 0)
      ?(retired = []) reason =
    ( {
        Report.attempt = attempt_no;
        nprocs = size;
        outcome = Report.Failed reason;
        events;
        tiles_total;
        tiles_reexecuted = reexec;
        retired_domains = retired;
        backoff_ms;
        wall_seconds = now () -. t0;
      },
      None )
  in
  match partition ~nprocs:size with
  | exception exn ->
      failed (Printf.sprintf "partition failed: %s" (Printexc.to_string exn))
  | p when p.nprocs <> size ->
      failed
        (Printf.sprintf "partition returned %d-way work for %d domains"
           p.nprocs size)
  | p -> (
      match make_ctx cfg plan compiled steps p ~recover ~kernels ~trace with
      | exception exn ->
          failed (Printf.sprintf "bad partition: %s" (Printexc.to_string exn))
      | ctx ->
          let g = ctx.g in
          (try
             Pool.with_pool size (fun pool ->
                 Pool.run pool (fun me _ -> job ctx me))
           with exn ->
             locked g (fun () ->
                 abort_locked g
                   ~reason:
                     (Printf.sprintf "pool failure: %s"
                        (Printexc.to_string exn))));
          let completed =
            (not (Atomic.get g.aborted))
            && g.failure = None
            && Atomic.get g.epoch >= steps
          in
          let events = pre_events @ List.rev g.events_rev in
          let attempt outcome =
            {
              Report.attempt = attempt_no;
              nprocs = size;
              outcome;
              events;
              tiles_total = Array.length ctx.tiles;
              tiles_reexecuted = g.reexec_total;
              retired_domains = List.rev g.retired;
              backoff_ms;
              wall_seconds = now () -. t0;
            }
          in
          if completed then
            ( attempt Report.Completed,
              Some
                ( Exec.to_float_array ctx.storage,
                  Exec.checksum ctx.storage,
                  g.cover_ok ) )
          else
            let reason =
              Option.value
                ~default:"every domain crashed before the nest completed"
                g.failure
            in
            (attempt (Report.Failed reason), None))

(* ------------------------------------------------------------------ *)
(* Policy loop                                                         *)
(* ------------------------------------------------------------------ *)

let execute ?(config = default_config) ?(plan = Fault.none)
    ?(kernels = false) ?(trace = Trace.disabled) ~compiled ~steps ~partition
    ~nprocs () =
  if nprocs < 1 then invalid_arg "Resilient.execute: nprocs < 1";
  if steps < 1 then invalid_arg "Resilient.execute: steps < 1";
  let kernels = if kernels then Some (Kernel.plan compiled) else None in
  let t_job = now () in
  let tile_retry = Exec.reexecution_safe compiled in
  let recover = config.policy <> Fail_fast && tile_retry in
  let attempts_rev = ref [] in
  let counter = ref 0 in
  let next_no () =
    let n = !counter in
    incr counter;
    n
  in
  let finish ~completed ~final_nprocs ~buffer ~checksum ~cover =
    ( {
        Report.name = (Exec.nest compiled).Loopir.Nest.name;
        policy = policy_to_string config.policy;
        plan = Fault.to_string plan;
        deadline_ms = config.deadline_ms;
        steps;
        tile_retry;
        attempts = List.rev !attempts_rev;
        completed;
        final_nprocs;
        total_wall_seconds = now () -. t_job;
        checksum;
        covered_exactly_once = cover;
        metrics =
          (if Trace.enabled trace then Some (Trace.summary trace) else None);
      },
      buffer )
  in
  let tries_per_size, backoff0 =
    match config.policy with
    | Fail_fast -> (1, 0)
    | Retry { attempts; backoff_ms } -> (max 1 attempts, max 0 backoff_ms)
    | Degrade -> (2, 25)
  in
  let sequential_fallback () =
    let t0 = now () in
    let buffer = Exec.sequential compiled ~steps in
    attempts_rev :=
      {
        Report.attempt = next_no ();
        nprocs = 0;
        outcome = Report.Completed;
        events = [ Report.Sequential_fallback ];
        tiles_total = 0;
        tiles_reexecuted = 0;
        retired_domains = [];
        backoff_ms = 0;
        wall_seconds = now () -. t0;
      }
      :: !attempts_rev;
    finish ~completed:true ~final_nprocs:0 ~buffer
      ~checksum:(Array.fold_left ( +. ) 0.0 buffer)
      ~cover:true
  in
  let rec at_size size ~pre_events =
    let rec try_once left ~backoff_ms ~pre_events =
      if backoff_ms > 0 then Unix.sleepf (float_of_int backoff_ms /. 1000.0);
      let att, success =
        run_attempt config plan compiled steps ~partition ~size ~recover
          ~kernels ~trace ~attempt_no:(next_no ()) ~backoff_ms ~pre_events
      in
      attempts_rev := att :: !attempts_rev;
      match success with
      | Some (buffer, checksum, cover) ->
          finish ~completed:true ~final_nprocs:size ~buffer ~checksum ~cover
      | None ->
          if left > 1 then
            try_once (left - 1)
              ~backoff_ms:(if backoff_ms = 0 then max 1 backoff0 else backoff_ms * 2)
              ~pre_events:[]
          else (
            match config.policy with
            | Fail_fast | Retry _ ->
                finish ~completed:false ~final_nprocs:size ~buffer:[||]
                  ~checksum:0.0 ~cover:false
            | Degrade ->
                if size > 1 then
                  let smaller = size / 2 in
                  at_size smaller
                    ~pre_events:
                      [ Report.Degraded { from_procs = size; to_procs = smaller } ]
                else sequential_fallback ())
    in
    try_once tries_per_size ~backoff_ms:0 ~pre_events
  in
  at_size nprocs ~pre_events:[]
