(** Matrices over multivariate polynomials.

    Used to carry out the paper's general-tile algebra symbolically: with
    [L] a matrix of indeterminates [L_ij], the products [LG] and the
    determinants of Theorem 2 become polynomials in the tile entries -
    the very expressions Examples 6 and 9 print.  Dimensions here are
    tiny (the loop nesting), so cofactor expansion is fine. *)

open Intmath

type t

val make : int -> int -> (int -> int -> Mpoly.t) -> t
val of_imat : Imat.t -> t

val generic : ?var:(int -> int -> int) -> int -> t
(** [generic l] is the [l x l] matrix of distinct indeterminates; entry
    [(i,j)] uses polynomial variable [var i j] (default [i*l + j]). *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Mpoly.t
val mul : t -> t -> t
val replace_row : t -> int -> Mpoly.t array -> t
val det : t -> Mpoly.t
(** Cofactor expansion; exponential in size, intended for [n <= 4]. *)

val eval : t -> Rat.t array -> Qmat.t
(** Evaluate every entry at an assignment of the polynomial variables. *)

val pp : ?names:(int -> string) -> Format.formatter -> t -> unit

val entry_names : int -> int -> string
(** ["L11"], ["L12"], ... - the paper's naming for the generic tile
    matrix (1-based). *)
