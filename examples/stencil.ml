(* Iterative relaxation under a sequential time loop (Figure 9).

   Run:  dune exec examples/stencil.exe

   With the parallel body re-executed by an outer Doseq, the volume term
   |det L| of the footprint drops out (load balance pins it) and the tile
   aspect ratio controls the steady-state coherence traffic: the strips
   of boundary elements that neighbouring processors re-fetch after every
   update.  This example sweeps tile aspect ratios at a fixed volume and
   shows measured coherence misses tracking the analytic traffic term. *)

open Partition
open Machine

let () =
  let steps = 4 in
  let nest = Loopart.Programs.relax_inplace ~n:65 ~steps () in
  let nprocs = 16 in
  Format.printf "%a@." Loopir.Nest.pp nest;
  let cost = Cost.of_nest nest in
  Format.printf "traffic polynomial: %s@.@."
    (Intmath.Mpoly.to_string cost.Cost.total_traffic);

  (* All tiles have 16x16 = 256 iterations; only the shape changes. *)
  let shapes = [ (64, 4); (32, 8); (16, 16); (8, 32); (4, 64) ] in
  Format.printf "%-12s %18s %22s %16s@." "tile" "traffic (Thm 4)"
    "coherence misses/step" "invalidations";
  List.iter
    (fun (x, y) ->
      let tile = Tile.rect [| x; y |] in
      let traffic = Cost.traffic_per_tile cost tile * nprocs in
      let sched = Codegen.make nest tile ~nprocs in
      let r = Sim.run sched Sim.default in
      Format.printf "%-12s %18d %22.0f %16d@."
        (Printf.sprintf "%dx%d" x y)
        traffic
        (float_of_int r.Sim.stats.Stats.coherence_misses
        /. float_of_int (steps - 1))
        r.Sim.stats.Stats.invalidations)
    shapes;

  Format.printf
    "@.The square tile minimizes both the analytic traffic term and the \
     measured steady-state coherence misses.@.";

  (* Finite caches: Section 2.2's remark - the optimal aspect ratio does
     not change, the tile is just executed in cache-sized pieces.  Here a
     small cache adds replacement misses without changing the ordering. *)
  let small =
    { Sim.default with Sim.geometry = Cache.Finite { sets = 64; ways = 2 } }
  in
  Format.printf "@.finite cache (64 sets x 2 ways):@.";
  List.iter
    (fun (x, y) ->
      let tile = Tile.rect [| x; y |] in
      let sched = Codegen.make nest tile ~nprocs in
      let r = Sim.run sched small in
      Format.printf "  %dx%d: misses %d (replacement %d)@." x y
        r.Sim.stats.Stats.misses r.Sim.stats.Stats.replacement_misses)
    shapes
