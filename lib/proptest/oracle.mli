(** The differential oracles: four independent answers to "what does a
    partitioned nest touch / cost", cross-checked per generated case.

    - {b footprint-single / footprint-cumulative}: the closed forms of
      [Footprint.Size] (Theorem 5 / Lemma 3 / Theorem 4) against exhaustive
      enumeration by [Footprint.Exact];
    - {b owner-cover}: [Partition.Codegen.owner] schedules partition the
      iteration space exactly once;
    - {b runtime-sim-agree}: [Runtime.Exec]/[Runtime.Measure] bitsets on
      real domains, [Machine.Sim] directory counters and brute-force
      enumeration all report identical per-processor footprints;
    - {b optimizer-dominates}: [Partition.Rectangular.optimize] is never
      worse (under [Partition.Cost.eval_objective]) than an independent
      exhaustive search over feasible processor grids;
    - {b sim-relabel-invariant}: [Machine.Sim] traffic quantities that are
      functions of the partition (not of processor names) are unchanged
      when processors are relabeled;
    - {b kernel-interp-agree}: [Runtime.Kernel]'s lowered strided loops
      (both the shape-specialized plan and the generic fallback, flat
      and bigarray storage alternating by case) produce byte-identical
      final buffers to the point interpreter run over the same tile
      boxes - including dependent-column nests and accumulate
      references, where traversal reordering would be unsound unless
      the plan's safety analysis forbids it.

    A fault can be injected to prove the harness detects and shrinks real
    bugs: [Spread_off_by_one] perturbs the class spread/translation vector
    (the classic Definition 8 bug), [Drop_iteration] deletes one iteration
    from a processor's schedule. *)

open Runtime

type fault = No_fault | Spread_off_by_one | Drop_iteration

val fault_of_string : string -> fault option
val fault_to_string : fault -> string
val all_faults : fault list

type violation = { oracle : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

(** Domain pools are expensive to spawn and idle workers block on a
    condition variable, so one pool per distinct processor count is
    created lazily and shared across all cases of a run. *)
module Pools : sig
  type t

  val create : unit -> t
  val get : t -> int -> Pool.t
  val shutdown : t -> unit
end

val check : fault:fault -> pools:Pools.t -> Gen.case -> violation option
(** Run every oracle on one case; [None] means all oracles agree.  An
    unexpected exception from any layer is itself reported as a
    violation (oracle ["exception"]). *)
