(** Run-time scheduling baselines.

    The introduction argues that run-time loop schedulers cannot optimize
    for cache locality because communication patterns are invisible or
    expensive to obtain at run time, citing Guided Self-Scheduling
    (Polychronopoulos & Kuck, the paper's reference [1]).  This module
    provides deterministic models of the classic run-time policies so the
    simulator can quantify that argument against compile-time tiles:

    - {e cyclic}: iteration [t] (in lexicographic order) runs on
      processor [t mod P] - perfect load balance, worst locality;
    - {e block-cyclic}: chunks of [chunk] consecutive iterations dealt
      round-robin;
    - {e guided self-scheduling}: each grab takes [ceil(remaining / P)]
      consecutive iterations, processors served round-robin - the
      decreasing-chunk policy of GSS under a fair arrival model. *)

open Matrixkit
open Loopir

type assignment = Ivec.t list array
(** Per-processor iteration lists, each in execution order. *)

val of_schedule : Codegen.schedule -> assignment
(** The compile-time tiled assignment (for uniform comparison). *)

val cyclic : Nest.t -> nprocs:int -> assignment
val block_cyclic : Nest.t -> nprocs:int -> chunk:int -> assignment
val guided_self_scheduling : Nest.t -> nprocs:int -> assignment

val total : assignment -> int
(** Number of iterations assigned (for coverage checks). *)

val max_load : assignment -> int
