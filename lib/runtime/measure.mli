(** Measurement instruments for real executions: per-domain wall-clock,
    iteration counts, and distinct-elements-touched counters - the
    measured analogue of the cumulative footprints Theorems 2/4 predict
    and {!Machine.Sim} counts exactly.

    Footprints are counted by a {!touched} set per domain.  Small
    element spaces use an exact bitset over the {!Machine.Layout}
    address range; spaces too large to bitset fall back to a Bloom
    filter whose cardinality estimate [-m/k ln(1 - ones/m)] is within a
    few permille at the occupancies we produce.

    Each per-domain set pads its payload with a cache-line-sized guard
    region on both sides, so instruments allocated back to back never
    share a line between two writing domains (no false sharing in the
    instrumented pass). *)

type mode =
  | Auto  (** exact up to {!exact_limit} elements, Bloom beyond *)
  | Exact
  | Bloom of int  (** number of filter bits (rounded up to a byte) *)

val exact_limit : int
(** Universe size (elements) up to which [Auto] stays exact. *)

type touched

val touched : mode -> universe:int -> touched
val touch : touched -> int -> unit
val touched_count : touched -> int
val is_exact : touched -> bool

val union_count : touched array -> int
(** Cardinality of the union: bit-or of the underlying sets (all created
    with the same mode and universe).  [0] for an empty array. *)

type domain_stat = {
  domain : int;
  iterations : int;  (** parallel iterations executed, summed over steps *)
  seconds : float;  (** wall-clock inside the job, best timed repeat *)
  footprint : int;  (** distinct elements touched (instrumented pass) *)
}

type raw = {
  wall_seconds : float;  (** best-of-repeats whole-job wall time *)
  seconds : float array;  (** per-domain, from the best repeat *)
  iterations : int array;
  footprints : int array;
  exact_footprints : bool;
  distinct_total : int;  (** union footprint over all domains *)
  checksum : float;  (** sum over the operand buffer, defeats dead code *)
}
(** What {!Exec} hands back; {!report} decorates it. *)

type report = {
  name : string;
  policy : string;
  nprocs : int;
  steps : int;
  repeats : int;
  total_elements : int;  (** size of the operand space (Layout) *)
  predicted_per_domain : int option;
      (** Theorem 2/4 cumulative-footprint prediction, when the policy
          is a compile-time tile the model can predict *)
  per_domain : domain_stat array;
  wall_seconds : float;
  distinct_total : int;
  exact_footprints : bool;
  checksum : float;
}

val report :
  name:string ->
  policy:string ->
  steps:int ->
  repeats:int ->
  total_elements:int ->
  ?predicted_per_domain:int ->
  raw ->
  report

val max_footprint : report -> int
val mean_seconds : report -> float

val pp_report : Format.formatter -> report -> unit
(** Table: one row per domain (time, iterations, footprint), then the
    totals and the model prediction side by side. *)
