open Matrixkit

type t = { g : Imat.t; offset : Ivec.t }

let make g offset =
  if Ivec.dim offset <> Imat.cols g then
    invalid_arg "Affine.make: offset length must equal columns of G";
  { g; offset }

let of_rows g_rows offset = make (Imat.of_rows g_rows) (Ivec.of_list offset)
let g t = t.g
let offset t = t.offset
let nesting t = Imat.rows t.g
let dims t = Imat.cols t.g
let apply t i = Ivec.add (Imat.mul_row i t.g) t.offset
let uniformly_generated a b = Imat.equal a.g b.g
let translate t da = { t with offset = Ivec.add t.offset da }

let drop_constant_dims t =
  if Imat.has_zero_col t.g then
    let keep =
      List.filter
        (fun j -> not (Ivec.is_zero (Imat.col t.g j)))
        (List.init (Imat.cols t.g) Fun.id)
    in
    match keep with
    | [] ->
        (* Reference independent of all loop indices: keep one dimension. *)
        ({ g = Imat.select_cols t.g [ 0 ]; offset = [| t.offset.(0) |] }, [ 0 ])
    | _ ->
        ( {
            g = Imat.select_cols t.g keep;
            offset = Array.of_list (List.map (fun j -> t.offset.(j)) keep);
          },
          keep )
  else (t, List.init (Imat.cols t.g) Fun.id)

let equal a b = Imat.equal a.g b.g && Ivec.equal a.offset b.offset

let subscript_strings ~vars t =
  let l = nesting t and d = dims t in
  if Array.length vars <> l then
    invalid_arg "Affine.subscript_strings: wrong number of variable names";
  List.init d (fun j ->
      let buf = Buffer.create 16 in
      let first = ref true in
      for i = 0 to l - 1 do
        let c = Imat.get t.g i j in
        if c <> 0 then begin
          if !first then begin
            if c < 0 then Buffer.add_char buf '-'
          end
          else Buffer.add_string buf (if c < 0 then "-" else "+");
          if abs c <> 1 then Buffer.add_string buf (string_of_int (abs c));
          Buffer.add_string buf vars.(i);
          first := false
        end
      done;
      let a = t.offset.(j) in
      if !first then Buffer.add_string buf (string_of_int a)
      else if a > 0 then Buffer.add_string buf ("+" ^ string_of_int a)
      else if a < 0 then Buffer.add_string buf (string_of_int a);
      Buffer.contents buf)

let pp ~vars ppf t =
  Format.pp_print_string ppf (String.concat ", " (subscript_strings ~vars t))
