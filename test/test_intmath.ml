(* Unit and property tests for the exact-arithmetic substrate. *)

open Intmath

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Int_math                                                            *)
(* ------------------------------------------------------------------ *)

let test_gcd () =
  check "gcd 12 18" 6 (Int_math.gcd 12 18);
  check "gcd 0 0" 0 (Int_math.gcd 0 0);
  check "gcd 0 7" 7 (Int_math.gcd 0 7);
  check "gcd negative" 6 (Int_math.gcd (-12) 18);
  check "gcd both negative" 4 (Int_math.gcd (-8) (-12));
  check "gcd coprime" 1 (Int_math.gcd 17 13)

let test_egcd () =
  List.iter
    (fun (a, b) ->
      let g, x, y = Int_math.egcd a b in
      check (Printf.sprintf "egcd %d %d gcd" a b) (Int_math.gcd a b) g;
      check (Printf.sprintf "egcd %d %d bezout" a b) g ((a * x) + (b * y)))
    [ (12, 18); (0, 5); (5, 0); (-12, 18); (17, 13); (-7, -21); (1, 1) ]

let test_lcm () =
  check "lcm 4 6" 12 (Int_math.lcm 4 6);
  check "lcm 0 5" 0 (Int_math.lcm 0 5);
  check "lcm negative" 12 (Int_math.lcm (-4) 6)

let test_mul_exact () =
  check "small" 42 (Int_math.mul_exact 6 7);
  check "zero" 0 (Int_math.mul_exact 0 max_int);
  checkb "overflow raises" true
    (try
       ignore (Int_math.mul_exact max_int 2);
       false
     with Int_math.Overflow -> true)

let test_add_exact () =
  check "small" 3 (Int_math.add_exact 1 2);
  checkb "overflow raises" true
    (try
       ignore (Int_math.add_exact max_int 1);
       false
     with Int_math.Overflow -> true);
  checkb "negative overflow raises" true
    (try
       ignore (Int_math.add_exact min_int (-1));
       false
     with Int_math.Overflow -> true)

let test_ipow () =
  check "2^10" 1024 (Int_math.ipow 2 10);
  check "x^0" 1 (Int_math.ipow 99 0);
  check "x^1" 99 (Int_math.ipow 99 1);
  check "(-2)^3" (-8) (Int_math.ipow (-2) 3)

let test_floor_ceil_div () =
  check "floor 7/2" 3 (Int_math.floor_div 7 2);
  check "floor -7/2" (-4) (Int_math.floor_div (-7) 2);
  check "floor 7/-2" (-4) (Int_math.floor_div 7 (-2));
  check "ceil 7/2" 4 (Int_math.ceil_div 7 2);
  check "ceil -7/2" (-3) (Int_math.ceil_div (-7) 2);
  check "floor_mod -7 2" 1 (Int_math.floor_mod (-7) 2);
  check "floor_mod 7 -2" (-1) (Int_math.floor_mod 7 (-2))

let test_isqrt_iroot () =
  check "isqrt 0" 0 (Int_math.isqrt 0);
  check "isqrt 15" 3 (Int_math.isqrt 15);
  check "isqrt 16" 4 (Int_math.isqrt 16);
  check "iroot 3 26" 2 (Int_math.iroot 3 26);
  check "iroot 3 27" 3 (Int_math.iroot 3 27);
  check "iroot 1 42" 42 (Int_math.iroot 1 42)

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ]
    (Int_math.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (Int_math.divisors 1);
  Alcotest.(check (list int)) "divisors prime" [ 1; 13 ] (Int_math.divisors 13)

let test_factorizations () =
  let fs = Int_math.factorizations 2 12 in
  check "count of ordered pairs" 6 (List.length fs);
  checkb "all products are 12" true
    (List.for_all (fun f -> Int_math.prod f = 12) fs);
  let fs3 = Int_math.factorizations 3 8 in
  checkb "3-way products are 8" true
    (List.for_all (fun f -> Int_math.prod f = 8) fs3);
  check "1-way" 1 (List.length (Int_math.factorizations 1 60))

(* ------------------------------------------------------------------ *)
(* Rat                                                                 *)
(* ------------------------------------------------------------------ *)

let rat = Alcotest.testable Rat.pp Rat.equal

let test_rat_normalization () =
  Alcotest.check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  Alcotest.check rat "neg den" (Rat.make (-1) 2) (Rat.make 1 (-2));
  check "den positive" 2 (Rat.den (Rat.make 1 (-2)));
  Alcotest.check rat "zero" Rat.zero (Rat.make 0 17)

let test_rat_arith () =
  let open Rat.Infix in
  Alcotest.check rat "1/2 + 1/3" (Rat.make 5 6) (Rat.make 1 2 + Rat.make 1 3);
  Alcotest.check rat "1/2 * 2/3" (Rat.make 1 3) (Rat.make 1 2 * Rat.make 2 3);
  Alcotest.check rat "div" (Rat.make 3 4) (Rat.make 1 2 / Rat.make 2 3);
  checkb "compare" true (Rat.make 1 3 < Rat.make 1 2);
  checkb "div by zero raises" true
    (try
       ignore (Rat.inv Rat.zero);
       false
     with Division_by_zero -> true)

let test_rat_rounding () =
  check "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  check "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  check "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  check "to_int_exn" 5 (Rat.to_int_exn (Rat.of_int 5));
  checkb "to_int_exn non-integer raises" true
    (try
       ignore (Rat.to_int_exn (Rat.make 1 2));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mpoly                                                               *)
(* ------------------------------------------------------------------ *)

let test_mpoly_basic () =
  let x = Mpoly.var 0 and y = Mpoly.var 1 in
  let p = Mpoly.add (Mpoly.mul x y) (Mpoly.scale_int 3 x) in
  Alcotest.check rat "eval" (Rat.of_int 16)
    (Mpoly.eval_int p [| 2; 5 |]);
  check "degree" 2 (Mpoly.degree p);
  check "nvars" 2 (Mpoly.num_vars p);
  checks "print" "x0*x1 + 3*x0" (Mpoly.to_string p)

let test_mpoly_partial () =
  (* d/dx (x^2 y + 3x) = 2xy + 3 *)
  let x = Mpoly.var 0 and y = Mpoly.var 1 in
  let p = Mpoly.add (Mpoly.mul (Mpoly.mul x x) y) (Mpoly.scale_int 3 x) in
  let dp = Mpoly.partial 0 p in
  Alcotest.check rat "at (2,5)" (Rat.of_int 23) (Mpoly.eval_int dp [| 2; 5 |]);
  Alcotest.(check bool)
    "d/dz is zero" true
    (Mpoly.is_zero (Mpoly.partial 2 p))

let test_mpoly_subst () =
  (* substitute x := y+1 in x*y: (y+1)*y = y^2 + y *)
  let x = Mpoly.var 0 and y = Mpoly.var 1 in
  let p = Mpoly.mul x y in
  let q = Mpoly.subst 0 (Mpoly.add y Mpoly.one) p in
  Alcotest.check rat "at y=4" (Rat.of_int 20) (Mpoly.eval_int q [| 0; 4 |])

let test_mpoly_zero_and_cancel () =
  let x = Mpoly.var 0 in
  Alcotest.(check bool) "x - x = 0" true (Mpoly.is_zero (Mpoly.sub x x));
  check "zero degree" (-1) (Mpoly.degree Mpoly.zero);
  checks "zero prints" "0" (Mpoly.to_string Mpoly.zero)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let nonneg = QCheck2.Gen.int_range 0 1000
let small = QCheck2.Gen.int_range (-1000) 1000
let nonzero = QCheck2.Gen.(map (fun n -> if n >= 0 then n + 1 else n) small)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both" ~count:500
    QCheck2.Gen.(pair small small)
    (fun (a, b) ->
      let g = Int_math.gcd a b in
      if a = 0 && b = 0 then g = 0 else a mod g = 0 && b mod g = 0)

let prop_egcd_bezout =
  QCheck2.Test.make ~name:"egcd bezout identity" ~count:500
    QCheck2.Gen.(pair small small)
    (fun (a, b) ->
      let g, x, y = Int_math.egcd a b in
      (a * x) + (b * y) = g && g = Int_math.gcd a b)

let prop_floor_div =
  QCheck2.Test.make ~name:"floor_div/floor_mod invariant" ~count:500
    QCheck2.Gen.(pair small nonzero)
    (fun (a, b) ->
      let q = Int_math.floor_div a b and r = Int_math.floor_mod a b in
      (b * q) + r = a && (if b > 0 then r >= 0 && r < b else r <= 0 && r > b))

let prop_isqrt =
  QCheck2.Test.make ~name:"isqrt bounds" ~count:500 nonneg (fun n ->
      let r = Int_math.isqrt n in
      r * r <= n && (r + 1) * (r + 1) > n)

let prop_rat_field =
  QCheck2.Test.make ~name:"rat add/mul distributes" ~count:300
    QCheck2.Gen.(triple (pair small nonzero) (pair small nonzero)
                   (pair small nonzero))
    (fun ((a, b), (c, d), (e, f)) ->
      let x = Rat.make a b and y = Rat.make c d and z = Rat.make e f in
      Rat.equal
        (Rat.mul x (Rat.add y z))
        (Rat.add (Rat.mul x y) (Rat.mul x z)))

let prop_rat_compare_antisym =
  QCheck2.Test.make ~name:"rat compare antisymmetric" ~count:300
    QCheck2.Gen.(pair (pair small nonzero) (pair small nonzero))
    (fun ((a, b), (c, d)) ->
      let x = Rat.make a b and y = Rat.make c d in
      Rat.compare x y = -Rat.compare y x)

let gen_poly =
  (* Random polynomial in up to 3 variables, degree <= 2 per var. *)
  QCheck2.Gen.(
    let gen_term =
      map2
        (fun coeff exps ->
          let mono =
            List.mapi (fun i e -> Mpoly.pow (Mpoly.var i) e) exps
          in
          Mpoly.scale_int coeff (Mpoly.product mono))
        (int_range (-5) 5)
        (list_size (return 3) (int_range 0 2))
    in
    map Mpoly.sum (list_size (int_range 0 5) gen_term))

let prop_mpoly_eval_hom =
  QCheck2.Test.make ~name:"mpoly eval is a ring hom" ~count:200
    QCheck2.Gen.(pair gen_poly gen_poly)
    (fun (p, q) ->
      let env = [| 2; -3; 5 |] in
      Rat.equal
        (Mpoly.eval_int (Mpoly.mul p q) env)
        (Rat.mul (Mpoly.eval_int p env) (Mpoly.eval_int q env))
      && Rat.equal
           (Mpoly.eval_int (Mpoly.add p q) env)
           (Rat.add (Mpoly.eval_int p env) (Mpoly.eval_int q env)))

let prop_mpoly_partial_linear =
  QCheck2.Test.make ~name:"partial is linear" ~count:200
    QCheck2.Gen.(pair gen_poly gen_poly)
    (fun (p, q) ->
      Mpoly.equal
        (Mpoly.partial 1 (Mpoly.add p q))
        (Mpoly.add (Mpoly.partial 1 p) (Mpoly.partial 1 q)))

let prop_mpoly_leibniz =
  QCheck2.Test.make ~name:"partial satisfies Leibniz rule" ~count:200
    QCheck2.Gen.(pair gen_poly gen_poly)
    (fun (p, q) ->
      Mpoly.equal
        (Mpoly.partial 0 (Mpoly.mul p q))
        (Mpoly.add
           (Mpoly.mul (Mpoly.partial 0 p) q)
           (Mpoly.mul p (Mpoly.partial 0 q))))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_gcd_divides;
      prop_egcd_bezout;
      prop_floor_div;
      prop_isqrt;
      prop_rat_field;
      prop_rat_compare_antisym;
      prop_mpoly_eval_hom;
      prop_mpoly_partial_linear;
      prop_mpoly_leibniz;
    ]

let () =
  Alcotest.run "intmath"
    [
      ( "int_math",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "egcd" `Quick test_egcd;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "mul_exact" `Quick test_mul_exact;
          Alcotest.test_case "add_exact" `Quick test_add_exact;
          Alcotest.test_case "ipow" `Quick test_ipow;
          Alcotest.test_case "floor/ceil div" `Quick test_floor_ceil_div;
          Alcotest.test_case "isqrt/iroot" `Quick test_isqrt_iroot;
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "factorizations" `Quick test_factorizations;
        ] );
      ( "rat",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "rounding" `Quick test_rat_rounding;
        ] );
      ( "mpoly",
        [
          Alcotest.test_case "basic" `Quick test_mpoly_basic;
          Alcotest.test_case "partial" `Quick test_mpoly_partial;
          Alcotest.test_case "subst" `Quick test_mpoly_subst;
          Alcotest.test_case "cancellation" `Quick test_mpoly_zero_and_cancel;
        ] );
      ("properties", props);
    ]
