(** The structured outcome of a resilient execution: what faults fired,
    what the watchdog saw, what each attempt did about it, and whether
    the job ultimately completed.

    One {!t} covers the whole job; it nests one {!attempt} per pool job
    the executor launched (retries and degraded re-partitions each get
    their own attempt).  [loopartc run --fault-plan] prints it and can
    dump it as JSON for CI artifacts. *)

type event =
  | Injected of { action : Fault.action; site : int; domain : int; step : int }
      (** a fault-plan injection fired: [site] is the index of the
          consumed plan entry ({!Fault.injections} order), the identity
          under which the oracle checks that no entry fires twice *)
  | Crashed of { domain : int; step : int; exn : string }
      (** a worker raised; its claimed tile was orphaned *)
  | Timed_out of { domain : int; step : int }
      (** the watchdog declared this domain a silent straggler *)
  | Tiles_reexecuted of { count : int; step : int }
      (** orphaned tiles re-run on surviving domains within the step *)
  | Degraded of { from_procs : int; to_procs : int }
      (** the pool was shrunk and the nest re-partitioned *)
  | Sequential_fallback  (** last resort: one-domain reference execution *)

type outcome = Completed | Failed of string

type attempt = {
  attempt : int;  (** 0-based, in launch order *)
  nprocs : int;  (** pool size of this attempt (0 = sequential) *)
  outcome : outcome;
  events : event list;  (** chronological *)
  tiles_total : int;  (** tiles per outer step under this partition *)
  tiles_reexecuted : int;  (** summed over steps *)
  retired_domains : int list;  (** domains dead by the end of the attempt *)
  backoff_ms : int;  (** delay waited before launching this attempt *)
  wall_seconds : float;
}

type t = {
  name : string;  (** nest name *)
  policy : string;  (** rendered fault policy *)
  plan : string;  (** rendered fault plan ("" when none) *)
  deadline_ms : int;  (** watchdog silence deadline *)
  steps : int;
  tile_retry : bool;
      (** tile-level recovery was enabled: the nest's per-step read and
          write footprints are disjoint and it has no accumulates, so
          tiles are idempotent and crash recovery can re-enqueue them *)
  attempts : attempt list;  (** chronological *)
  completed : bool;
  final_nprocs : int;  (** domains of the completing attempt; 0 = sequential *)
  total_wall_seconds : float;
  checksum : float;  (** over the final operand buffer, when completed *)
  covered_exactly_once : bool;
      (** the completing attempt's completion bitmap showed every tile
          executed effectively once in every step *)
  metrics : Trace.summary option;
      (** compact trace metrics when the run was traced (tiles run,
          steals, faults seen, per-span-kind busy time) *)
}

val events : t -> event list
(** All events, attempt order preserved. *)

val injected_count : t -> int
val crashed_count : t -> int
val timed_out_count : t -> int
val reexecuted_tiles : t -> int

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Machine-readable rendition for CI artifacts.  Always strictly
    valid JSON: non-finite wall times and checksums serialize as
    [null], and every control character in strings is escaped. *)
