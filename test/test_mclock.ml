(* Tests for the monotonic clock: raw readings never decrease, the
   guarded clock clamps a backward-stepping source, and a stall deadline
   crossing a simulated clock step fires exactly once - the regression
   the Unix.gettimeofday -> Mclock migration is guarded by. *)

module Mclock = Runtime.Mclock

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A scripted time source: returns the next value in the list, holding
   the last one forever.  Lets a test replay an adversarial wall clock
   (NTP step, leap smear) deterministically. *)
let scripted values =
  let remaining = ref values in
  let last = ref (match values with v :: _ -> v | [] -> 0.0) in
  fun () ->
    (match !remaining with
    | v :: rest ->
        last := v;
        remaining := rest
    | [] -> ());
    !last

let test_now_monotonic () =
  let prev = ref (Mclock.now ()) in
  for _ = 1 to 10_000 do
    let t = Mclock.now () in
    if t < !prev then Alcotest.failf "Mclock.now went backwards";
    prev := t
  done;
  let a = Mclock.now_ns () in
  let b = Mclock.now_ns () in
  checkb "now_ns non-decreasing" true (Int64.compare b a >= 0)

let test_guard_clamps_backward_step () =
  let c =
    Mclock.create ~source:(scripted [ 10.0; 11.0; 5.0; 6.0; 12.0 ]) ()
  in
  checkb "first read" true (Mclock.read c = 10.0);
  checkb "advance" true (Mclock.read c = 11.0);
  (* The source steps back 6 s; the guard holds the floor. *)
  checkb "clamped at floor" true (Mclock.read c = 11.0);
  checkb "still clamped" true (Mclock.read c = 11.0);
  checkb "resumes once source passes the floor" true (Mclock.read c = 12.0)

(* The headline regression: a deadline armed before a backwards clock
   step must fire exactly once, never re-arm.  Under the old
   gettimeofday arithmetic ([start + budget] vs a re-read wall clock)
   the backwards step made [now - start > budget] flip back to false
   after the deadline had already been observed expired. *)
let test_deadline_fires_once_across_clock_step () =
  let c =
    Mclock.create
      ~source:
        (scripted
           [
             100.0;  (* arm reads this: deadline = 100.5 *)
             100.6;  (* expired *)
             99.0;  (* the clock steps back 1.6 s mid-stall... *)
             99.1;  (* ...and crawls forward again *)
             100.7;
             200.0;
           ])
      ()
  in
  let d = Mclock.Deadline.arm c ~after:0.5 in
  checkb "first poll fires" true (Mclock.Deadline.fire d);
  (* Every subsequent poll - during and after the backwards step - must
     see the latch consumed. *)
  let refires = ref 0 in
  for _ = 1 to 50 do
    if Mclock.Deadline.fire d then incr refires
  done;
  checki "fires exactly once" 0 !refires;
  checkb "stays expired" true (Mclock.Deadline.expired d)

let test_deadline_not_early () =
  let c = Mclock.create ~source:(scripted [ 0.0; 0.1; 0.2; 5.0 ]) () in
  let d = Mclock.Deadline.arm c ~after:1.0 in
  checkb "not expired at 0.1" false (Mclock.Deadline.fire d);
  checkb "not expired at 0.2" false (Mclock.Deadline.fire d);
  checkb "fires at 5.0" true (Mclock.Deadline.fire d);
  checkb "consumed" false (Mclock.Deadline.fire d)

let test_deadline_reset_rearms () =
  (* arm reads 0.0; fire reads 10.0; reset reads 10.0 (re-arm at 15.0);
     expired reads 12.0; the two fires read 20.0. *)
  let c =
    Mclock.create ~source:(scripted [ 0.0; 10.0; 10.0; 12.0; 20.0; 20.0 ]) ()
  in
  let d = Mclock.Deadline.arm c ~after:1.0 in
  checkb "fires" true (Mclock.Deadline.fire d);
  Mclock.Deadline.reset d ~after:5.0;
  checkb "re-armed, not yet expired" false (Mclock.Deadline.expired d);
  checkb "fires again after reset" true (Mclock.Deadline.fire d);
  checkb "consumed again" false (Mclock.Deadline.fire d)

let test_deadline_concurrent_single_winner () =
  (* 4 domains hammer one expired deadline; exactly one fire wins. *)
  let c = Mclock.create () in
  let d = Mclock.Deadline.arm c ~after:0.0 in
  let wins = Atomic.make 0 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              if Mclock.Deadline.fire d then Atomic.incr wins
            done))
  in
  Array.iter Domain.join domains;
  checki "one winner" 1 (Atomic.get wins)

let test_arm_rejects_garbage () =
  let c = Mclock.create () in
  let bad after =
    match Mclock.Deadline.arm c ~after with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "negative" true (bad (-1.0));
  checkb "nan" true (bad Float.nan);
  checkb "inf" true (bad Float.infinity)

let () =
  Alcotest.run "mclock"
    [
      ( "clock",
        [
          Alcotest.test_case "now is monotonic" `Quick test_now_monotonic;
          Alcotest.test_case "guard clamps a backward step" `Quick
            test_guard_clamps_backward_step;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "fires exactly once across a clock step" `Quick
            test_deadline_fires_once_across_clock_step;
          Alcotest.test_case "does not fire early" `Quick
            test_deadline_not_early;
          Alcotest.test_case "reset re-arms" `Quick test_deadline_reset_rearms;
          Alcotest.test_case "concurrent polls: one winner" `Quick
            test_deadline_concurrent_single_winner;
          Alcotest.test_case "arm rejects non-finite budgets" `Quick
            test_arm_rejects_garbage;
        ] );
    ]
