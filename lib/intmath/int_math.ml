exception Overflow

let gcd a b =
  let rec go a b = if b = 0 then a else go b (a mod b) in
  abs (go (abs a) (abs b))

let egcd a b =
  (* Invariant: a*x0 + b*y0 = r0 and a*x1 + b*y1 = r1. *)
  let rec go r0 x0 y0 r1 x1 y1 =
    if r1 = 0 then (r0, x0, y0)
    else
      let q = r0 / r1 in
      go r1 x1 y1 (r0 - (q * r1)) (x0 - (q * x1)) (y0 - (q * y1))
  in
  let g, x, y = go a 1 0 b 0 1 in
  if g < 0 then (-g, -x, -y) else (g, x, y)

let gcd_list = List.fold_left gcd 0

let mul_exact a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / a <> b then raise Overflow else p

let add_exact a b =
  let s = a + b in
  (* Overflow iff operands share a sign that the sum lost. *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let lcm a b = if a = 0 || b = 0 then 0 else abs (mul_exact (a / gcd a b) b)

let ipow b e =
  if e < 0 then invalid_arg "Int_math.ipow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul_exact acc b) (mul_exact b b) (e asr 1)
    else go acc (mul_exact b b) (e asr 1)
  in
  (* Avoid squaring b when it is no longer needed (prevents spurious
     overflow on the last step). *)
  if e = 0 then 1 else if e = 1 then b else go 1 b e

let floor_div a b =
  if b = 0 then invalid_arg "Int_math.floor_div: zero divisor";
  let q = a / b and r = a mod b in
  if r <> 0 && r lxor b < 0 then q - 1 else q

let ceil_div a b =
  if b = 0 then invalid_arg "Int_math.ceil_div: zero divisor";
  let q = a / b and r = a mod b in
  if r <> 0 && r lxor b >= 0 then q + 1 else q

let floor_mod a b = a - (b * floor_div a b)

let isqrt n =
  if n < 0 then invalid_arg "Int_math.isqrt: negative argument";
  if n = 0 then 0
  else
    let r = ref (int_of_float (sqrt (float_of_int n))) in
    while !r * !r > n do
      decr r
    done;
    while (!r + 1) * (!r + 1) <= n && (!r + 1) * (!r + 1) > 0 do
      incr r
    done;
    !r

let iroot k n =
  if k < 1 then invalid_arg "Int_math.iroot: k < 1";
  if n < 0 then invalid_arg "Int_math.iroot: negative argument";
  if k = 1 || n <= 1 then if k = 1 then n else n
  else
    let r = ref (int_of_float (float_of_int n ** (1.0 /. float_of_int k))) in
    let pow_le b = try ipow b k <= n with Overflow -> false in
    while !r > 0 && not (pow_le !r) do
      decr r
    done;
    while pow_le (!r + 1) do
      incr r
    done;
    !r

let divisors n =
  if n <= 0 then invalid_arg "Int_math.divisors: non-positive argument";
  let small = ref [] and large = ref [] in
  let d = ref 1 in
  while !d * !d <= n do
    if n mod !d = 0 then begin
      small := !d :: !small;
      if !d <> n / !d then large := (n / !d) :: !large
    end;
    incr d
  done;
  List.rev_append !small !large

let factorizations k n =
  if k < 1 then invalid_arg "Int_math.factorizations: k < 1";
  if n <= 0 then invalid_arg "Int_math.factorizations: non-positive n";
  let rec go k n =
    if k = 1 then [ [ n ] ]
    else
      List.concat_map
        (fun d -> List.map (fun rest -> d :: rest) (go (k - 1) (n / d)))
        (divisors n)
  in
  go k n

let sum = List.fold_left add_exact 0
let prod = List.fold_left mul_exact 1
