type params = {
  hit : float;
  local_fill : float;
  remote_fill_base : float;
  per_hop : float;
  upgrade : float;
  sync_extra : float;
}

let alewife_like =
  {
    hit = 1.0;
    local_fill = 11.0;
    remote_fill_base = 38.0;
    per_hop = 2.0;
    upgrade = 6.0;
    sync_extra = 10.0;
  }

let cycles (st : Stats.t) ~nprocs p =
  if nprocs < 1 then invalid_arg "Timing.cycles: nprocs < 1";
  let f = float_of_int in
  let total =
    (f st.Stats.hits *. p.hit)
    +. (f st.Stats.local_fills *. p.local_fill)
    +. (f st.Stats.remote_fills *. p.remote_fill_base)
    +. (f st.Stats.network_hops *. p.per_hop)
    +. (f st.Stats.upgrades *. p.upgrade)
    +. (f st.Stats.sync_ops *. p.sync_extra)
  in
  total /. float_of_int nprocs

let speedup ~baseline ~improved ~nprocs p =
  cycles baseline ~nprocs p /. cycles improved ~nprocs p

let pp_params ppf p =
  Format.fprintf ppf
    "hit %.0f, local %.0f, remote %.0f+%.0f/hop, upgrade %.0f, sync +%.0f"
    p.hit p.local_fill p.remote_fill_base p.per_hop p.upgrade p.sync_extra
