open Intmath

type t = { r : int; c : int; a : Mpoly.t array array }

let make r c f =
  if r <= 0 || c <= 0 then invalid_arg "Pmat.make: non-positive dimension";
  { r; c; a = Array.init r (fun i -> Array.init c (fun j -> f i j)) }

let of_imat m =
  make (Imat.rows m) (Imat.cols m) (fun i j ->
      Mpoly.const_int (Imat.get m i j))

let generic ?var l =
  let var = match var with Some f -> f | None -> fun i j -> (i * l) + j in
  make l l (fun i j -> Mpoly.var (var i j))

let rows m = m.r
let cols m = m.c
let get m i j = m.a.(i).(j)

let mul m n =
  if m.c <> n.r then invalid_arg "Pmat.mul: dimension mismatch";
  make m.r n.c (fun i j ->
      let acc = ref Mpoly.zero in
      for k = 0 to m.c - 1 do
        acc := Mpoly.add !acc (Mpoly.mul m.a.(i).(k) n.a.(k).(j))
      done;
      !acc)

let replace_row m i v =
  if Array.length v <> m.c then invalid_arg "Pmat.replace_row: bad row";
  make m.r m.c (fun i' j -> if i' = i then v.(j) else m.a.(i').(j))

let rec det_of (a : Mpoly.t array array) n =
  if n = 1 then a.(0).(0)
  else begin
    let acc = ref Mpoly.zero in
    for j = 0 to n - 1 do
      let minor =
        Array.init (n - 1) (fun i ->
            Array.init (n - 1) (fun j' ->
                a.(i + 1).(if j' < j then j' else j' + 1)))
      in
      let term = Mpoly.mul a.(0).(j) (det_of minor (n - 1)) in
      acc :=
        if j land 1 = 0 then Mpoly.add !acc term else Mpoly.sub !acc term
    done;
    !acc
  end

let det m =
  if m.r <> m.c then invalid_arg "Pmat.det: not square";
  det_of m.a m.r

let eval m env =
  Qmat.make m.r m.c (fun i j -> Mpoly.eval m.a.(i).(j) env)

let pp ?names ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i row ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "[%s]"
        (String.concat " | "
           (List.map (Mpoly.to_string ?names) (Array.to_list row))))
    m.a;
  Format.fprintf ppf "@]"

let entry_names l k =
  let i = (k / l) + 1 and j = (k mod l) + 1 in
  Printf.sprintf "L%d%d" i j
