open Matrixkit
open Loopir

type case = {
  seed : int;
  id : int;
  nest : Nest.t;
  tile : int array;
  nprocs : int;
}

let loop_vars = [| "i"; "j"; "k" |]
let array_names = [| "A"; "B" |]

(* Extent caps per nest depth keep the iteration space small enough that
   every oracle can brute-force it (<= ~125 points, x <= 3 Doseq steps). *)
let extent_cap = function 1 -> 12 | 2 -> 8 | _ -> 5

let gen_entry rng = Prng.choose rng [| 0; 0; 0; 1; 1; -1; 2; -2 |]

(* The G-matrix shape gallery.  Dense-random already yields singular and
   non-unimodular matrices, but the structured shapes guarantee that rank
   deficiency, zero rows and dependent columns appear at every depth. *)
let gen_g rng ~depth ~dims =
  match Prng.int rng 8 with
  | 0 | 1 | 2 ->
      (* dense random, entries in -2..2 *)
      Imat.make depth dims (fun _ _ -> gen_entry rng)
  | 3 ->
      (* near-identity (truncated), occasionally perturbed off-diagonal *)
      Imat.make depth dims (fun i j ->
          if i = j then 1
          else if Prng.chance rng ~pct:20 then gen_entry rng
          else 0)
  | 4 ->
      (* rank <= 1: outer product of a row pattern and column multipliers *)
      let base = Array.init depth (fun _ -> gen_entry rng) in
      let mult = Array.init dims (fun _ -> Prng.range rng (-2) 2) in
      Imat.make depth dims (fun i j -> base.(i) * mult.(j))
  | 5 ->
      (* a zero row: a loop index the reference ignores (reduction dim) *)
      let dead = Prng.int rng depth in
      Imat.make depth dims (fun i _j -> if i = dead then 0 else gen_entry rng)
  | 6 when dims >= 2 ->
      (* dependent columns: one column duplicates another *)
      let src = Prng.int rng dims in
      let dst = (src + 1 + Prng.int rng (dims - 1)) mod dims in
      let m = Array.init depth (fun _ -> Array.init dims (fun _ -> gen_entry rng)) in
      Array.iter (fun row -> row.(dst) <- row.(src)) m;
      Imat.of_array m
  | _ ->
      (* non-unimodular skew: entries up to +-3 *)
      Imat.make depth dims (fun _ _ -> Prng.choose rng [| 0; 1; 1; -1; 2; 3; -3 |])

let gen_kind rng =
  let r = Prng.int rng 100 in
  if r < 55 then Reference.Read else if r < 85 then Reference.Write
  else Reference.Accumulate

let make_ref kind name aff =
  match kind with
  | Reference.Read -> Reference.read name aff
  | Reference.Write -> Reference.write name aff
  | Reference.Accumulate -> Reference.accumulate name aff

let generate ~seed ~id =
  let rng = Prng.case ~seed ~id in
  let depth = Prng.range rng 1 3 in
  let cap = extent_cap depth in
  let loops =
    List.init depth (fun k ->
        let lower = Prng.range rng (-2) 2 in
        let extent = Prng.range rng 1 cap in
        Nest.loop loop_vars.(k) lower (lower + extent - 1))
  in
  let seq =
    if Prng.chance rng ~pct:25 then Some (Nest.loop "t" 1 (Prng.range rng 2 3))
    else None
  in
  let narrays = Prng.range rng 1 2 in
  let dims_of = Array.init narrays (fun _ -> Prng.range rng 1 3) in
  let nrefs = Prng.range rng 1 4 in
  let seen_g : (int, Imat.t list) Hashtbl.t = Hashtbl.create 4 in
  let refs =
    List.init nrefs (fun _ ->
        let a = Prng.int rng narrays in
        let dims = dims_of.(a) in
        let prior = Option.value ~default:[] (Hashtbl.find_opt seen_g a) in
        let g =
          (* Reusing a previous G for the same array (with a fresh offset)
             is what produces multi-member uniformly intersecting classes,
             the input the cumulative-footprint oracles need. *)
          if prior <> [] && Prng.chance rng ~pct:50 then
            Prng.choose rng (Array.of_list prior)
          else begin
            let g = gen_g rng ~depth ~dims in
            Hashtbl.replace seen_g a (g :: prior);
            g
          end
        in
        let offset = Array.init dims (fun _ -> Prng.range rng (-3) 3) in
        make_ref (gen_kind rng) array_names.(a) (Affine.make g offset))
  in
  let nest =
    Nest.make ~name:(Printf.sprintf "fuzz-%d-%d" seed id) ?seq loops refs
  in
  let extents = Nest.extents nest in
  let tile = Array.map (fun n -> Prng.range rng 1 n) extents in
  let nprocs = Prng.range rng 1 4 in
  { seed; id; nest; tile; nprocs }

let build ~seed ~id ?seq loops refs ~tile ~nprocs =
  let nest =
    Nest.make ~name:(Printf.sprintf "fuzz-%d-%d" seed id) ?seq loops refs
  in
  if Array.length tile <> List.length loops then
    invalid_arg "Gen.build: tile rank mismatch";
  Array.iteri
    (fun k t ->
      if t < 1 || t > (Nest.extents nest).(k) then
        invalid_arg "Gen.build: tile size out of range")
    tile;
  if nprocs < 1 then invalid_arg "Gen.build: nprocs < 1";
  { seed; id; nest; tile; nprocs }

let weight c =
  let nest = c.nest in
  let abs_sum_mat m =
    let s = ref 0 in
    for i = 0 to Imat.rows m - 1 do
      for j = 0 to Imat.cols m - 1 do
        s := !s + abs (Imat.get m i j)
      done
    done;
    !s
  in
  let refs_w =
    List.fold_left
      (fun acc (r : Reference.t) ->
        acc + 8
        + abs_sum_mat (Affine.g r.index)
        + Array.fold_left (fun a x -> a + abs x) 0 (Affine.offset r.index))
      0 nest.Nest.body
  in
  let bounds_w =
    List.fold_left (fun acc (l : Nest.loop) -> acc + abs l.lower) 0 nest.Nest.loops
  in
  let seq_w =
    match nest.Nest.seq with None -> 0 | Some l -> 2 + (l.upper - l.lower)
  in
  (4 * Nest.iterations nest)
  + (30 * Nest.nesting nest)
  + refs_w + bounds_w + seq_w
  + Array.fold_left ( + ) 0 c.tile
  + (2 * c.nprocs)

let pp ppf c =
  Format.fprintf ppf "@[<v>%a@,tile: %s  nprocs: %d  (seed %d, case %d)@]"
    Nest.pp c.nest
    (String.concat "x" (List.map string_of_int (Array.to_list c.tile)))
    c.nprocs c.seed c.id

let to_string c = Format.asprintf "%a" pp c
