open Loopir
open Matrixkit
open Machine

type cref = { c : int; m : int array }
(* Address of iteration [i] through the reference: [c + m . i]. *)

type storage =
  | Flat of float array
  | Big of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type compiled = {
  nest : Nest.t;
  layout : Layout.t;
  reads : cref array;
  writes : (cref * bool (* accumulate *)) array;
  bigarray : bool;
}

let compile_ref layout nesting (r : Reference.t) =
  let base, lo, strides = Layout.frame layout r.Reference.array_name in
  let g = Affine.g r.Reference.index in
  let offset = Affine.offset r.Reference.index in
  let d = Array.length strides in
  let c = ref base in
  for j = 0 to d - 1 do
    c := !c + ((offset.(j) - lo.(j)) * strides.(j))
  done;
  let m =
    Array.init nesting (fun k ->
        let acc = ref 0 in
        for j = 0 to d - 1 do
          acc := !acc + (Imat.get g k j * strides.(j))
        done;
        !acc)
  in
  { c = !c; m }

let compile ?(bigarray = false) nest =
  let layout = Layout.of_nest nest in
  let nesting = Nest.nesting nest in
  let reads, writes =
    List.partition_map
      (fun (r : Reference.t) ->
        let cr = compile_ref layout nesting r in
        if Reference.is_write_like r then
          Right (cr, r.Reference.kind = Reference.Accumulate)
        else Left cr)
      nest.Nest.body
  in
  {
    nest;
    layout;
    reads = Array.of_list reads;
    writes = Array.of_list writes;
    bigarray;
  }

let nest c = c.nest
let layout c = c.layout
let total_elements c = Layout.total_elements c.layout
let is_bigarray c = c.bigarray
let reads c = c.reads
let writes c = c.writes

let address c (r : Reference.t) =
  let cr = compile_ref c.layout (Nest.nesting c.nest) r in
  fun (i : Ivec.t) ->
    let a = ref cr.c in
    Array.iteri (fun k mk -> a := !a + (mk * i.(k))) cr.m;
    !a

(* Deterministic nonzero initial operand values so checksums and value
   comparisons are meaningful from the first step. *)
let init_value i = float_of_int ((i land 63) + 1) *. 0.125

let alloc c =
  let n = total_elements c in
  if c.bigarray then begin
    let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set a i (init_value i)
    done;
    Big a
  end
  else Flat (Array.init n init_value)

(* Plain summation loops with an unboxed accumulator: the fold/init
   closures the previous versions used boxed every element on the
   Bigarray path, which dominated the post-run bookkeeping at bench
   sizes. *)
let checksum = function
  | Flat a ->
      let acc = ref 0.0 in
      for i = 0 to Array.length a - 1 do
        acc := !acc +. Array.unsafe_get a i
      done;
      !acc
  | Big a ->
      let acc = ref 0.0 in
      for i = 0 to Bigarray.Array1.dim a - 1 do
        acc := !acc +. Bigarray.Array1.unsafe_get a i
      done;
      !acc

let to_float_array = function
  | Flat a -> Array.copy a
  | Big a ->
      let n = Bigarray.Array1.dim a in
      if n = 0 then [||]
      else begin
        let out = Array.make n 0.0 in
        for i = 0 to n - 1 do
          Array.unsafe_set out i (Bigarray.Array1.unsafe_get a i)
        done;
        out
      end

let[@inline] addr (r : cref) (p : int array) =
  let a = ref r.c in
  let m = r.m in
  for k = 0 to Array.length m - 1 do
    a := !a + (Array.unsafe_get m k * Array.unsafe_get p k)
  done;
  !a

(* The loop body at one iteration point: load every read, combine, then
   store through every write-like reference. *)
let[@inline] exec_flat c (data : float array) (p : int array) =
  let acc = ref 0.0 in
  let reads = c.reads in
  for i = 0 to Array.length reads - 1 do
    acc := !acc +. Array.unsafe_get data (addr (Array.unsafe_get reads i) p)
  done;
  let v = !acc +. 1.0 in
  let writes = c.writes in
  for i = 0 to Array.length writes - 1 do
    let r, accumulate = Array.unsafe_get writes i in
    let a = addr r p in
    if accumulate then
      Array.unsafe_set data a (Array.unsafe_get data a +. v)
    else Array.unsafe_set data a v
  done

let[@inline] exec_big c data (p : int array) =
  let acc = ref 0.0 in
  let reads = c.reads in
  for i = 0 to Array.length reads - 1 do
    acc :=
      !acc
      +. Bigarray.Array1.unsafe_get data (addr (Array.unsafe_get reads i) p)
  done;
  let v = !acc +. 1.0 in
  let writes = c.writes in
  for i = 0 to Array.length writes - 1 do
    let r, accumulate = Array.unsafe_get writes i in
    let a = addr r p in
    if accumulate then
      Bigarray.Array1.unsafe_set data a (Bigarray.Array1.unsafe_get data a +. v)
    else Bigarray.Array1.unsafe_set data a v
  done

let exec_point c storage =
  match storage with
  | Flat data -> fun p -> exec_flat c data p
  | Big data -> fun p -> exec_big c data p

let view = function Flat a -> `Flat a | Big a -> `Big a

let poke storage a v =
  match storage with
  | Flat data -> data.(a) <- v
  | Big data -> Bigarray.Array1.set data a v

let plain_write_addresses c (p : int array) =
  Array.to_list c.writes
  |> List.filter_map (fun (r, accumulate) ->
         if accumulate then None else Some (addr r p))

(* Tiles are idempotent - re-executable after a partial or duplicated
   run - iff no iteration of the Doall body reads an address the body
   writes (self- or cross-iteration) and no write accumulates.  Then
   every write's value is a function of never-written operands only, so
   re-running any subset of iterations in any order reproduces the same
   final buffer. *)
let reexecution_safe c =
  Array.for_all (fun (_, accumulate) -> not accumulate) c.writes
  && (Array.length c.writes = 0
     ||
     let bounds = Nest.bounds c.nest in
     let n = Array.length bounds in
     let point = Array.make n 0 in
     let written = Hashtbl.create 4096 in
     let rec scan_writes k =
       if k = n then
         Array.iter
           (fun (r, _) -> Hashtbl.replace written (addr r point) ())
           c.writes
       else
         let lo, hi = bounds.(k) in
         for v = lo to hi do
           point.(k) <- v;
           scan_writes (k + 1)
         done
     in
     scan_writes 0;
     let clash = ref false in
     let rec scan_reads k =
       if !clash then ()
       else if k = n then
         Array.iter
           (fun r -> if Hashtbl.mem written (addr r point) then clash := true)
           c.reads
       else
         let lo, hi = bounds.(k) in
         for v = lo to hi do
           if not !clash then begin
             point.(k) <- v;
             scan_reads (k + 1)
           end
         done
     in
     scan_reads 0;
     not !clash)

(* The instrumented body additionally records every element address in
   the domain's touched set. *)
let observe_point c touched =
  let note (r : cref) p = Measure.touch touched (addr r p) in
  fun p ->
    Array.iter (fun r -> note r p) c.reads;
    Array.iter (fun (r, _) -> note r p) c.writes

type work =
  | Static of Ivec.t array array
  | Tiled of { tiles : Ivec.t array array; owners : int array }
  | Dynamic of { points : Ivec.t array; chunk : remaining:int -> int }
  | Steal of { queues : Ivec.t array array; chunk : int }

let static_of_assignment (a : Partition.Scheduling.assignment) =
  Static (Array.map Array.of_list a)

let queues_of_assignment (a : Partition.Scheduling.assignment) ~chunk =
  Steal { queues = Array.map Array.of_list a; chunk }

let steps_of_nest ?override nest =
  match override with
  | Some n ->
      if n < 1 then invalid_arg "Exec.steps_of_nest: steps < 1";
      n
  | None -> (
      match nest.Nest.seq with
      | Some l -> l.Nest.upper - l.Nest.lower + 1
      | None -> 1)

(* One execution of the whole nest ([steps] outer iterations) on the
   pool.  [visit p point] performs the body; shared scheduling state is
   reset by domain 0 between the two barriers that bracket each step.
   With a live [trace], barrier waits and per-tile (or per-chunk)
   claims become spans; the [Tiled] work shape exists so a traced
   compile-time partition keeps its tile boundaries - [Static] work is
   the same points with the tile structure flattened away. *)
let one_pass ?(trace = Trace.disabled) pool work ~steps ~visit ~seconds
    ~iterations =
  let counter =
    match work with
    | Dynamic { points; _ } -> Some (Pool.Counter.create ~total:(Array.length points))
    | Static _ | Tiled _ | Steal _ -> None
  in
  let deques =
    match work with
    | Steal { queues; _ } ->
        Some (Pool.Deques.create ~lengths:(Array.map Array.length queues))
    | Static _ | Tiled _ | Dynamic _ -> None
  in
  let my_tiles =
    match work with
    | Tiled { tiles; owners } ->
        let n = Pool.size pool in
        let by = Array.make n [] in
        for t = Array.length tiles - 1 downto 0 do
          by.(owners.(t)) <- t :: by.(owners.(t))
        done;
        Array.map Array.of_list by
    | Static _ | Dynamic _ | Steal _ -> [||]
  in
  Pool.run pool (fun p barrier ->
      let sense = ref false in
      let mine = ref 0 in
      let yielded = ref 0 in
      let t0 = Mclock.now () in
      for step = 1 to steps do
        (if p = 0 then
           match counter, deques with
           | Some c, _ -> Pool.Counter.reset c
           | _, Some d -> Pool.Deques.reset d
           | None, None -> ());
        Trace.begin_span trace p Trace.Barrier ~arg:step;
        Pool.Barrier.wait barrier ~sense ~yielded;
        Trace.end_span trace p;
        Trace.begin_span trace p Trace.Step ~arg:step;
        (match work with
        | Static per_domain ->
            let pts = per_domain.(p) in
            for i = 0 to Array.length pts - 1 do
              visit p (Array.unsafe_get pts i)
            done;
            mine := !mine + Array.length pts
        | Tiled { tiles; _ } ->
            let ids = my_tiles.(p) in
            for j = 0 to Array.length ids - 1 do
              let t = Array.unsafe_get ids j in
              Trace.begin_span trace p Trace.Tile ~arg:t;
              let pts = tiles.(t) in
              for i = 0 to Array.length pts - 1 do
                visit p (Array.unsafe_get pts i)
              done;
              Trace.end_span trace p;
              Trace.incr trace p Trace.Tiles_run;
              mine := !mine + Array.length pts
            done
        | Dynamic { points; chunk } ->
            let c = Option.get counter in
            let continue = ref true in
            while !continue do
              match Pool.Counter.next c ~chunk with
              | None -> continue := false
              | Some (lo, hi) ->
                  Trace.begin_span trace p Trace.Chunk ~arg:lo;
                  for i = lo to hi - 1 do
                    visit p (Array.unsafe_get points i)
                  done;
                  Trace.end_span trace p;
                  mine := !mine + (hi - lo)
            done
        | Steal { queues; chunk } ->
            let d = Option.get deques in
            let continue = ref true in
            while !continue do
              match Pool.Deques.pop d ~me:p ~chunk with
              | None -> continue := false
              | Some (owner, lo, hi) ->
                  if owner <> p then begin
                    Trace.incr trace p Trace.Steals;
                    Trace.instant trace p Trace.Steal ~arg:lo
                  end;
                  Trace.begin_span trace p Trace.Chunk ~arg:lo;
                  let pts = queues.(owner) in
                  for i = lo to hi - 1 do
                    visit p (Array.unsafe_get pts i)
                  done;
                  Trace.end_span trace p;
                  mine := !mine + (hi - lo)
            done);
        Trace.end_span trace p;
        Trace.begin_span trace p Trace.Barrier ~arg:step;
        Pool.Barrier.wait barrier ~sense ~yielded;
        Trace.end_span trace p
      done;
      Trace.add trace p Trace.Backoff_yields !yielded;
      seconds.(p) <- Mclock.now () -. t0;
      iterations.(p) <- !mine)

let check_work pool work =
  let n = Pool.size pool in
  match work with
  | Static a when Array.length a <> n ->
      invalid_arg
        (Printf.sprintf "Exec: %d-domain pool given %d-way static work" n
           (Array.length a))
  | Tiled { tiles; owners } ->
      if Array.length owners <> Array.length tiles then
        invalid_arg "Exec: tiled work with owners/tiles length mismatch";
      Array.iter
        (fun o ->
          if o < 0 || o >= n then
            invalid_arg
              (Printf.sprintf "Exec: tile owner %d outside %d-domain pool" o n))
        owners
  | Steal { queues; _ } when Array.length queues <> n ->
      invalid_arg
        (Printf.sprintf "Exec: %d-domain pool given %d-way queues" n
           (Array.length queues))
  | Static _ | Dynamic _ | Steal _ -> ()

type instrumented = {
  footprints : int array;
  iterations : int array;
  distinct_total : int;
  exact : bool;
  checksum : float;
  buffer : float array;
}

let measure pool c work ~steps ~mode =
  check_work pool work;
  let nprocs = Pool.size pool in
  let universe = total_elements c in
  let storage = alloc c in
  let run_body = exec_point c storage in
  let touched =
    Array.init nprocs (fun _ -> Measure.touched mode ~universe)
  in
  let observers = Array.map (observe_point c) touched in
  let seconds = Array.make nprocs 0.0 in
  let iterations = Array.make nprocs 0 in
  let visit p point =
    observers.(p) point;
    run_body point
  in
  one_pass pool work ~steps ~visit ~seconds ~iterations;
  {
    footprints = Array.map Measure.touched_count touched;
    iterations;
    distinct_total = Measure.union_count touched;
    exact = Array.for_all Measure.is_exact touched;
    checksum = checksum storage;
    buffer = to_float_array storage;
  }

let time ?trace pool c work ~steps ~repeats =
  check_work pool work;
  if repeats < 1 then invalid_arg "Exec.time: repeats < 1";
  let nprocs = Pool.size pool in
  let best_wall = ref infinity in
  let best_seconds = Array.make nprocs 0.0 in
  let best_iterations = Array.make nprocs 0 in
  for _rep = 1 to repeats do
    let storage = alloc c in
    let run_body = exec_point c storage in
    let seconds = Array.make nprocs 0.0 in
    let iterations = Array.make nprocs 0 in
    let visit _p point = run_body point in
    let t0 = Mclock.now () in
    one_pass ?trace pool work ~steps ~visit ~seconds ~iterations;
    let wall = Mclock.now () -. t0 in
    ignore (Sys.opaque_identity (checksum storage));
    if wall < !best_wall then begin
      best_wall := wall;
      Array.blit seconds 0 best_seconds 0 nprocs;
      Array.blit iterations 0 best_iterations 0 nprocs
    end
  done;
  (!best_wall, best_seconds, best_iterations)

let run ?(trace = Trace.disabled) pool c work ~steps ~repeats ~mode =
  let wall, seconds, iterations = time ~trace pool c work ~steps ~repeats in
  let inst = measure pool c work ~steps ~mode in
  (* The instrumented pass runs untraced (its observation cost is not
     representative), but its footprints feed the bytes-touched
     counter: distinct elements each domain actually referenced. *)
  Array.iteri
    (fun p f -> Trace.add trace p Trace.Elements_touched f)
    inst.footprints;
  {
    Measure.wall_seconds = wall;
    seconds;
    iterations;
    footprints = inst.footprints;
    exact_footprints = inst.exact;
    distinct_total = inst.distinct_total;
    checksum = inst.checksum;
  }

let sequential c ~steps =
  let storage = alloc c in
  let run_body = exec_point c storage in
  let bounds = Nest.bounds c.nest in
  let n = Array.length bounds in
  let point = Array.make n 0 in
  let rec scan k =
    if k = n then run_body point
    else
      let lo, hi = bounds.(k) in
      for v = lo to hi do
        point.(k) <- v;
        scan (k + 1)
      done
  in
  for _step = 1 to steps do
    scan 0
  done;
  to_float_array storage
