(** Fault-tolerant execution of partitioned [Doall] nests.

    {!Exec} assumes every domain finishes every tile: one worker
    exception aborts the whole job and a silent straggler hangs the
    barrier forever.  This module re-runs the same tiled work with four
    defenses layered on top:

    - {b fault hooks}: an optional {!Fault.plan} fires injected crashes,
      stalls and corruptions at chosen (domain, step, claim) sites - the
      adversity the rest of the machinery is tested against.  Without a
      plan the hook is a single consumed-array scan per tile claim; the
      plain {!Exec}/{!Pool} paths never see it at all;
    - {b watchdog}: workers publish a per-tile heartbeat; domains
      waiting at the end-of-step gate monitor the stragglers and convert
      a heartbeat silent for longer than the configured deadline into a
      structured {!Report.Timed_out} event that fails the attempt - no
      infinite spin;
    - {b tile-level recovery}: when the nest's tiles are idempotent
      ({!Exec.reexecution_safe}), a crashed domain retires, its claimed
      tile is orphaned, and surviving domains re-execute it before the
      step gate opens - a completion bitmap checks every tile ran
      effectively once per step;
    - {b graceful degradation}: the {!policy} decides what a failed
      attempt costs - give up ([Fail_fast]), retry with exponential
      backoff on fresh operands ([Retry]), or additionally shrink the
      domain count, re-partition, and ultimately fall back to sequential
      execution ([Degrade]).

    A retried attempt always restarts from freshly initialized operands,
    so an aborted half-mutated buffer can never leak into the result:
    the final buffer of a completed job is bit-identical to a fault-free
    run whenever the nest is deterministic. *)

open Matrixkit

type policy =
  | Fail_fast  (** first failure fails the job; no recovery of any kind *)
  | Retry of { attempts : int; backoff_ms : int }
      (** tile-level crash recovery when safe, plus up to [attempts]
          pool jobs with doubling backoff starting at [backoff_ms] *)
  | Degrade
      (** like [Retry] (two attempts per size), then halve the domain
          count and re-partition; sequential execution as last resort -
          this path always completes *)

val policy_to_string : policy -> string

val policy_of_string : string -> (policy, string) result
(** [fail-fast | retry\[:ATTEMPTS\[:BACKOFF_MS\]\] | degrade]. *)

type config = {
  policy : policy;
  deadline_ms : int;
      (** watchdog: a straggler whose heartbeat is silent this long is
          declared timed out *)
  stall_poll_ms : int;
      (** granularity at which injected stalls re-check for an aborted
          attempt, so a watchdog verdict wakes the sleeper promptly *)
}

val default_config : config
(** [Retry {attempts = 3; backoff_ms = 25}], 1000 ms deadline, 5 ms
    stall poll. *)

type partitioned = {
  nprocs : int;
  tiles : Ivec.t array array;  (** tile id -> iteration points, in order *)
  owners : int array;  (** tile id -> preferred domain, [< nprocs] *)
  boxes : (int * int) array option array;
      (** tile id -> inclusive per-axis bounds when the tile's points
          are exactly a rectangular box ([None] for ragged tiles), the
          precondition for executing it through {!Kernel.run_box} *)
}
(** Tile-granular work: the unit of claiming, stealing, completion
    tracking and recovery. *)

val tiles_of_schedule : Partition.Codegen.schedule -> partitioned
(** Group the schedule's iteration space into its compile-time tiles
    (via {!Partition.Codegen.tile_id}), owners from
    {!Partition.Codegen.owner}; [boxes] holds each tile's bounding box
    when (and only when) the tile fills it completely. *)

val execute :
  ?config:config ->
  ?plan:Fault.plan ->
  ?kernels:bool ->
  ?trace:Trace.t ->
  compiled:Exec.compiled ->
  steps:int ->
  partition:(nprocs:int -> partitioned) ->
  nprocs:int ->
  unit ->
  Report.t * float array
(** Run [steps] outer iterations of the nest under the policy, starting
    on [nprocs] domains partitioned by [partition ~nprocs] (called again
    with smaller counts when degrading).  With [kernels], box tiles run
    through {!Kernel}'s specialized strided loops (ragged tiles keep the
    point interpreter); recovery semantics are unchanged since the tile
    stays the unit of completion.  With [trace], workers record tile and
    re-execution spans, gate waits, steals, watchdog probes and fault
    counters into it (size it for the {e initial} [nprocs]; degraded
    attempts reuse the low domain slots), and the report carries a
    {!Trace.summary}.  Returns the structured report and the final
    operand buffer (meaningful when [(fst r).Report.completed]). *)
