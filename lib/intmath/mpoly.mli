(** Multivariate polynomials with rational coefficients.

    Variables are identified by non-negative integers; in the partitioning
    framework variable [i] stands for the tile extent of loop dimension [i]
    (the paper's [L_ii + 1] for rectangular tiles).  The symbolic cumulative
    footprint of a loop nest is such a polynomial, e.g. Example 8 produces
    [x0*x1*x2 + 2*x1*x2 + 3*x0*x2 + 4*x0*x1]. *)

type t

val zero : t
val one : t
val const : Rat.t -> t
val const_int : int -> t
val var : int -> t
(** [var i] is the monomial [x_i]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val scale_int : int -> t -> t
val pow : t -> int -> t
val sum : t list -> t
val product : t list -> t

val equal : t -> t -> bool
val is_zero : t -> bool
val degree : t -> int
(** Total degree; [-1] for the zero polynomial. *)

val num_vars : t -> int
(** One more than the largest variable index occurring (0 if none). *)

val coeff : t -> int list -> Rat.t
(** [coeff p mono] is the coefficient of the monomial whose exponent
    vector is [mono] (short vectors are zero-padded). *)

val monomials : t -> (int list * Rat.t) list
(** All (exponent-vector, coefficient) pairs with non-zero coefficients,
    in a deterministic order. *)

val eval : t -> Rat.t array -> Rat.t
(** Evaluate; missing variables (index >= array length) are an error. *)

val eval_int : t -> int array -> Rat.t
val eval_float : t -> float array -> float

val partial : int -> t -> t
(** [partial i p] is the partial derivative with respect to [x_i]. *)

val subst : int -> t -> t -> t
(** [subst i q p] replaces [x_i] by polynomial [q] in [p]. *)

val pp : ?names:(int -> string) -> Format.formatter -> t -> unit
(** Pretty-print, default variable names [x0, x1, ...]. *)

val to_string : ?names:(int -> string) -> t -> string
