(* Tests for the two prior-work baselines: Abraham-Hudak rectangular
   partitioning and Ramanujam-Sadayappan communication-free partitions,
   and their agreement with the footprint framework (the paper's
   Examples 2 and 8 claims). *)

open Matrixkit
open Loopir
open Baselines

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Abraham-Hudak                                                       *)
(* ------------------------------------------------------------------ *)

let test_ah_applies () =
  (match Abraham_hudak.applies (Loopart.Programs.example8 ()) with
  | Ok name -> Alcotest.(check string) "target B" "B" name
  | Error e -> Alcotest.failf "should apply: %s" e);
  (match Abraham_hudak.applies (Loopart.Programs.example2 ()) with
  | Ok _ -> Alcotest.fail "example 2 is outside the AH domain"
  | Error _ -> ());
  match Abraham_hudak.applies (Loopart.Programs.example9 ()) with
  | Ok _ -> Alcotest.fail "two shared arrays are outside the AH domain"
  | Error _ -> ()

let test_ah_example8 () =
  match Abraham_hudak.partition (Loopart.Programs.example8 ~n:60 ()) ~nprocs:8 with
  | Error e -> Alcotest.failf "AH failed: %s" e
  | Ok r ->
      Alcotest.(check (array int)) "spreads 2:3:4" [| 2; 3; 4 |] r.Abraham_hudak.spreads;
      check "grid size" 8 (Array.fold_left ( * ) 1 r.Abraham_hudak.grid)

let test_ah_agrees_with_framework () =
  (* The paper's claim (Example 8): AH and the footprint framework choose
     the same partition on AH's domain. *)
  let nest = Loopart.Programs.example8 ~n:60 () in
  let cost = Partition.Cost.of_nest nest in
  let ours = Partition.Rectangular.optimize cost ~nprocs:8 in
  match Abraham_hudak.partition nest ~nprocs:8 with
  | Error e -> Alcotest.failf "AH failed: %s" e
  | Ok ah ->
      Alcotest.(check (array int))
        "identical tile sizes" ours.Partition.Rectangular.sizes
        ah.Abraham_hudak.sizes

let test_ah_zero_spread_dimension () =
  (* Offsets vary only in dimension 0: the other dimension should be kept
     whole. *)
  let open Dsl in
  let i = var 0 and j = var 1 in
  let nest =
    nest ~name:"rows"
      [ doall "i" 1 32; doall "j" 1 32 ]
      [ write "A" [ i; j ]; read "A" [ i - int 1; j ]; read "A" [ i + int 1; j ] ]
  in
  match Abraham_hudak.partition nest ~nprocs:4 with
  | Error e -> Alcotest.failf "AH failed: %s" e
  | Ok r ->
      Alcotest.(check (array int)) "spread only in i" [| 2; 0 |] r.Abraham_hudak.spreads;
      (* Sharing runs along i, so tiles span i and split j. *)
      Alcotest.(check (array int)) "i-spanning slabs" [| 32; 8 |] r.Abraham_hudak.sizes

(* ------------------------------------------------------------------ *)
(* Ramanujam-Sadayappan                                                *)
(* ------------------------------------------------------------------ *)

let test_rs_example2 () =
  let t = Ramanujam_sadayappan.analyze (Loopart.Programs.example2 ()) in
  checkb "communication-free exists" true t.Ramanujam_sadayappan.comm_free;
  (* The sharing direction is (4,0); the normal must be (0, +-1). *)
  (match t.Ramanujam_sadayappan.sharing with
  | [ v ] -> Alcotest.(check (array int)) "sharing (4,0)" [| 4; 0 |] v
  | other ->
      Alcotest.failf "expected one sharing vector, got %d" (List.length other));
  match t.Ramanujam_sadayappan.normals with
  | Some n ->
      check "one normal" 1 (Imat.rows n);
      check "normal j component" 1 (abs (Imat.get n 0 1));
      check "normal i component" 0 (Imat.get n 0 0)
  | None -> Alcotest.fail "normal expected"

let test_rs_slab_matches_optimizer () =
  (* The R-S slab for Example 2 is exactly the partition our optimizer
     picks: columns of j. *)
  let nest = Loopart.Programs.example2 () in
  let t = Ramanujam_sadayappan.analyze nest in
  match Ramanujam_sadayappan.slab_tile t nest ~nprocs:100 with
  | None -> Alcotest.fail "slab expected"
  | Some tile ->
      let cost = Partition.Cost.of_nest nest in
      let ours = Partition.Rectangular.optimize cost ~nprocs:100 in
      checkb "same tile" true
        (Partition.Tile.equal tile ours.Partition.Rectangular.tile)

let test_rs_no_comm_free () =
  (* The in-place 4-neighbour relaxation shares along both axes: no
     hyperplane partition is communication-free. *)
  let t =
    Ramanujam_sadayappan.analyze (Loopart.Programs.relax_inplace ())
  in
  checkb "not communication-free" false t.Ramanujam_sadayappan.comm_free;
  checkb "no normals" true (t.Ramanujam_sadayappan.normals = None)

let test_rs_example8_surprise () =
  (* Example 8's three B offsets differ by vectors that span only a
     2-D subspace ((1,1,-1) and (2,-2,-4)); R-S finds the hyperplane
     normal (-3,1,-2) that makes the loop communication-free - a
     partition the rectangular framework cannot express. *)
  let t = Ramanujam_sadayappan.analyze (Loopart.Programs.example8 ()) in
  checkb "comm-free exists" true t.Ramanujam_sadayappan.comm_free;
  match t.Ramanujam_sadayappan.normals with
  | Some n ->
      check "one normal" 1 (Imat.rows n);
      let h = Imat.row n 0 in
      List.iter
        (fun v ->
          check "normal orthogonal to sharing" 0
            ((h.(0) * v.(0)) + (h.(1) * v.(1)) + (h.(2) * v.(2))))
        t.Ramanujam_sadayappan.sharing
  | None -> Alcotest.fail "normal expected"

let test_rs_no_sharing () =
  let open Dsl in
  let i = var 0 and j = var 1 in
  let nest =
    nest ~name:"private"
      [ doall "i" 1 8; doall "j" 1 8 ]
      [ write "A" [ i; j ]; read "B" [ i; j ] ]
  in
  let t = Ramanujam_sadayappan.analyze nest in
  checkb "trivially communication-free" true t.Ramanujam_sadayappan.comm_free;
  match t.Ramanujam_sadayappan.normals with
  | Some n -> check "identity normals" 2 (Imat.rows n)
  | None -> Alcotest.fail "normals expected"

let test_rs_self_sharing_projection () =
  (* A single reference A[i+j] self-shares along (1,-1). *)
  let nest =
    let open Dsl in
    let i = var 0 and j = var 1 in
    nest ~name:"proj" [ doall "i" 1 8; doall "j" 1 8 ] [ write "A" [ i + j ] ]
  in
  let t = Ramanujam_sadayappan.analyze nest in
  checkb "comm-free along the fibre" true t.Ramanujam_sadayappan.comm_free;
  match t.Ramanujam_sadayappan.normals with
  | Some n ->
      (* Normal must be orthogonal to (1,-1) i.e. proportional to (1,1). *)
      let h = Imat.row n 0 in
      check "h . (1,-1) = 0" 0 ((h.(0) * 1) + (h.(1) * -1))
  | None -> Alcotest.fail "normal expected"

let test_rs_simulator_confirms_comm_free () =
  (* Zero coherence traffic and misses = distinct elements for the R-S
     partition of Example 2. *)
  let nest = Loopart.Programs.example2 () in
  let t = Ramanujam_sadayappan.analyze nest in
  match Ramanujam_sadayappan.slab_tile t nest ~nprocs:100 with
  | None -> Alcotest.fail "slab expected"
  | Some tile ->
      let sched = Partition.Codegen.make nest tile ~nprocs:100 in
      let r = Machine.Sim.run sched Machine.Sim.default in
      check "no coherence misses" 0 r.Machine.Sim.stats.Machine.Stats.coherence_misses;
      check "no invalidations" 0 r.Machine.Sim.stats.Machine.Stats.invalidations;
      check "every miss is a distinct element" (Machine.Addr.size r.Machine.Sim.addrs)
        r.Machine.Sim.stats.Machine.Stats.misses

(* ------------------------------------------------------------------ *)
(* Gallery-wide comparison against the cost model                      *)
(* ------------------------------------------------------------------ *)

let objective_of cost sizes =
  Partition.Cost.eval_objective cost (Array.map float_of_int sizes)

let test_ah_never_beats_optimizer () =
  (* On every gallery nest inside the AH domain, the footprint
     optimizer's tile is at least as good as Abraham-Hudak's under the
     paper's own objective - AH is a special case of the framework
     (Section 4.1), so it can tie but never win. *)
  let tried = ref 0 in
  List.iter
    (fun (name, nest) ->
      match Abraham_hudak.partition nest ~nprocs:8 with
      | Error _ -> ()
      | Ok ah -> (
          let cost = Partition.Cost.of_nest nest in
          match Partition.Rectangular.optimize cost ~nprocs:8 with
          | exception Invalid_argument _ -> ()
          | ours ->
              incr tried;
              let f_ah = objective_of cost ah.Abraham_hudak.sizes in
              let f_ours = objective_of cost ours.Partition.Rectangular.sizes in
              Alcotest.(check bool)
                (Printf.sprintf "%s: optimizer (%.1f) <= AH (%.1f)" name f_ours
                   f_ah)
                true
                (f_ours <= f_ah +. (1e-6 *. (1.0 +. abs_float f_ah)))))
    Loopart.Programs.all;
  checkb "at least one gallery nest in the AH domain" true (!tried >= 1)

let test_rs_comm_free_confirmed_on_gallery () =
  (* Every communication-free R-S slab on the gallery really is free of
     coherence traffic when executed, and the rectangular ones are never
     better than the optimizer's choice under the cost objective. *)
  let simmed = ref 0 in
  List.iter
    (fun (name, nest) ->
      if Loopir.Nest.iterations nest <= 20_000 then
        let t = Ramanujam_sadayappan.analyze nest in
        if t.Ramanujam_sadayappan.comm_free then
          match Ramanujam_sadayappan.slab_tile t nest ~nprocs:4 with
          | None -> ()
          | Some tile ->
              incr simmed;
              let sched = Partition.Codegen.make nest tile ~nprocs:4 in
              let r = Machine.Sim.run sched Machine.Sim.default in
              check
                (Printf.sprintf "%s: slab has no coherence misses" name)
                0 r.Machine.Sim.stats.Machine.Stats.coherence_misses;
              check
                (Printf.sprintf "%s: slab causes no invalidations" name)
                0 r.Machine.Sim.stats.Machine.Stats.invalidations;
              (match tile with
              | Partition.Tile.Rect sizes -> (
                  let cost = Partition.Cost.of_nest nest in
                  match Partition.Rectangular.optimize cost ~nprocs:4 with
                  | exception Invalid_argument _ -> ()
                  | ours ->
                      let f_rs = objective_of cost sizes in
                      let f_ours =
                        objective_of cost ours.Partition.Rectangular.sizes
                      in
                      Alcotest.(check bool)
                        (Printf.sprintf
                           "%s: optimizer (%.1f) <= RS slab (%.1f)" name
                           f_ours f_rs)
                        true
                        (f_ours <= f_rs +. (1e-6 *. (1.0 +. abs_float f_rs))))
              | Partition.Tile.Pped _ -> ()))
    Loopart.Programs.all;
  checkb "at least one comm-free gallery slab simulated" true (!simmed >= 1)

let test_ah_cost_model_sees_the_spread () =
  (* On the single-array stencil, the AH tile's predicted misses grow
     with the offset spread exactly as the cost model says: the sizes AH
     picks minimize the model's objective among its own candidates, so
     predicted misses for the AH tile must match misses_per_tile of the
     equivalent rectangular tile. *)
  let nest = Loopart.Programs.example8 ~n:60 () in
  match Abraham_hudak.partition nest ~nprocs:8 with
  | Error e -> Alcotest.failf "AH failed: %s" e
  | Ok ah ->
      let cost = Partition.Cost.of_nest nest in
      let tile = Partition.Tile.rect ah.Abraham_hudak.sizes in
      let predicted = Partition.Cost.misses_per_tile cost tile in
      checkb "prediction positive" true (predicted > 0);
      let ours = Partition.Rectangular.optimize cost ~nprocs:8 in
      check "identical tile, identical prediction"
        (Partition.Cost.misses_per_tile cost ours.Partition.Rectangular.tile)
        predicted

let () =
  Alcotest.run "baselines"
    [
      ( "abraham-hudak",
        [
          Alcotest.test_case "domain check" `Quick test_ah_applies;
          Alcotest.test_case "example 8 spreads" `Quick test_ah_example8;
          Alcotest.test_case "agrees with framework" `Quick
            test_ah_agrees_with_framework;
          Alcotest.test_case "zero-spread dimension" `Quick
            test_ah_zero_spread_dimension;
        ] );
      ( "ramanujam-sadayappan",
        [
          Alcotest.test_case "example 2 normal" `Quick test_rs_example2;
          Alcotest.test_case "slab = optimizer choice" `Quick
            test_rs_slab_matches_optimizer;
          Alcotest.test_case "no comm-free for relaxation" `Quick
            test_rs_no_comm_free;
          Alcotest.test_case "example 8 comm-free surprise" `Quick
            test_rs_example8_surprise;
          Alcotest.test_case "no sharing at all" `Quick test_rs_no_sharing;
          Alcotest.test_case "self-sharing projection" `Quick
            test_rs_self_sharing_projection;
          Alcotest.test_case "simulator confirms" `Quick
            test_rs_simulator_confirms_comm_free;
        ] );
      ( "gallery vs cost model",
        [
          Alcotest.test_case "AH never beats the optimizer" `Quick
            test_ah_never_beats_optimizer;
          Alcotest.test_case "RS slabs coherence-free and dominated" `Quick
            test_rs_comm_free_confirmed_on_gallery;
          Alcotest.test_case "AH tile prediction consistent" `Quick
            test_ah_cost_model_sees_the_spread;
        ] );
    ]
