open Loopir
open Partition
open Machine

type analysis = {
  nest : Nest.t;
  nprocs : int;
  cost : Cost.t;
  rect : Rectangular.result;
  skewed : Skewed.result option;
  rs : Baselines.Ramanujam_sadayappan.t;
  ah : (Baselines.Abraham_hudak.result, string) result;
}

let analyze ?(try_skewed = false) ~nprocs nest =
  let cost = Cost.of_nest nest in
  let rect = Rectangular.optimize cost ~nprocs in
  let skewed = if try_skewed then Skewed.optimize cost ~nprocs else None in
  let rs = Baselines.Ramanujam_sadayappan.analyze nest in
  let ah = Baselines.Abraham_hudak.partition nest ~nprocs in
  { nest; nprocs; cost; rect; skewed; rs; ah }

let best_tile a =
  match a.skewed with
  | Some s when s.Skewed.improves_on_rect -> s.Skewed.tile
  | Some _ | None -> a.rect.Rectangular.tile

let schedule ?tile a =
  let tile = Option.value ~default:a.rect.Rectangular.tile tile in
  Codegen.make a.nest tile ~nprocs:a.nprocs

let simulate ?tile ?(config = Sim.default) a =
  Sim.run (schedule ?tile a) config

let simulate_aligned ?tile ?(geometry = Cache.Infinite) a =
  let sched = schedule ?tile a in
  let placement = Data_partition.aligned sched a.cost in
  Sim.run sched
    {
      Sim.default with
      Sim.geometry;
      topology = Sim.Mesh2d;
      placement = Some placement;
    }

let report ppf a =
  Format.fprintf ppf "@[<v>=== %s on %d processors ===@,@,%a@,@,"
    a.nest.Nest.name a.nprocs Nest.pp a.nest;
  Format.fprintf ppf "%a@,@," Cost.pp a.cost;
  Format.fprintf ppf "--- rectangular partition ---@,%a@,@,"
    Rectangular.pp_result a.rect;
  (match a.skewed with
  | Some s ->
      Format.fprintf ppf "--- parallelepiped partition ---@,%a@,@,"
        Skewed.pp_result s
  | None -> ());
  Format.fprintf ppf "--- Ramanujam-Sadayappan check ---@,%a@,@,"
    Baselines.Ramanujam_sadayappan.pp a.rs;
  (match a.ah with
  | Ok r ->
      Format.fprintf ppf "--- Abraham-Hudak baseline ---@,%a@,"
        Baselines.Abraham_hudak.pp_result r
  | Error e ->
      Format.fprintf ppf "--- Abraham-Hudak baseline: not applicable (%s)@,"
        e);
  Format.fprintf ppf "@]"
