type event =
  | Injected of { action : Fault.action; site : int; domain : int; step : int }
  | Crashed of { domain : int; step : int; exn : string }
  | Timed_out of { domain : int; step : int }
  | Tiles_reexecuted of { count : int; step : int }
  | Degraded of { from_procs : int; to_procs : int }
  | Sequential_fallback

type outcome = Completed | Failed of string

type attempt = {
  attempt : int;
  nprocs : int;
  outcome : outcome;
  events : event list;
  tiles_total : int;
  tiles_reexecuted : int;
  retired_domains : int list;
  backoff_ms : int;
  wall_seconds : float;
}

type t = {
  name : string;
  policy : string;
  plan : string;
  deadline_ms : int;
  steps : int;
  tile_retry : bool;
  attempts : attempt list;
  completed : bool;
  final_nprocs : int;
  total_wall_seconds : float;
  checksum : float;
  covered_exactly_once : bool;
  metrics : Trace.summary option;
}

let events t = List.concat_map (fun a -> a.events) t.attempts

let count f t = List.length (List.filter f (events t))

let injected_count = count (function Injected _ -> true | _ -> false)
let crashed_count = count (function Crashed _ -> true | _ -> false)
let timed_out_count = count (function Timed_out _ -> true | _ -> false)

let reexecuted_tiles t =
  List.fold_left (fun acc a -> acc + a.tiles_reexecuted) 0 t.attempts

let pp_event ppf = function
  | Injected { action; site; domain; step } ->
      Format.fprintf ppf "injected %s (plan entry %d) on domain %d at step %d"
        (Fault.action_to_string action)
        site domain step
  | Crashed { domain; step; exn } ->
      Format.fprintf ppf "domain %d crashed at step %d (%s)" domain step exn
  | Timed_out { domain; step } ->
      Format.fprintf ppf "watchdog: domain %d timed out at step %d" domain step
  | Tiles_reexecuted { count; step } ->
      Format.fprintf ppf "%d orphaned tile%s re-executed at step %d" count
        (if count = 1 then "" else "s")
        step
  | Degraded { from_procs; to_procs } ->
      Format.fprintf ppf "degraded from %d to %d domains" from_procs to_procs
  | Sequential_fallback -> Format.fprintf ppf "fell back to sequential execution"

let pp_outcome ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Failed reason -> Format.fprintf ppf "FAILED: %s" reason

let pp ppf t =
  Format.fprintf ppf "@[<v>=== resilience report: %s (%s%s) ===@," t.name
    t.policy
    (if t.plan = "" then "" else ", plan " ^ t.plan);
  Format.fprintf ppf "watchdog deadline %d ms; tile-level retry %s@,"
    t.deadline_ms
    (if t.tile_retry then "enabled (idempotent tiles)"
     else "disabled (tiles not idempotent)");
  List.iter
    (fun a ->
      Format.fprintf ppf "attempt %d on %s%s: %a (%.2f ms)@," a.attempt
        (if a.nprocs = 0 then "sequential"
         else Printf.sprintf "%d domains" a.nprocs)
        (if a.backoff_ms > 0 then Printf.sprintf " after %d ms backoff"
                                    a.backoff_ms
         else "")
        pp_outcome a.outcome
        (a.wall_seconds *. 1e3);
      List.iter (fun e -> Format.fprintf ppf "  %a@," pp_event e) a.events;
      if a.retired_domains <> [] then
        Format.fprintf ppf "  retired domains: %s@,"
          (String.concat ","
             (List.map string_of_int (List.sort compare a.retired_domains))))
    t.attempts;
  Format.fprintf ppf "verdict: %s in %.2f ms"
    (if t.completed then
       Printf.sprintf "completed on %s, every tile covered exactly once: %b"
         (if t.final_nprocs = 0 then "sequential fallback"
          else Printf.sprintf "%d domains" t.final_nprocs)
         t.covered_exactly_once
     else "FAILED")
    (t.total_wall_seconds *. 1e3);
  if t.completed then Format.fprintf ppf "; checksum %.6g" t.checksum;
  (match t.metrics with
  | Some m -> Format.fprintf ppf "@,%a" Trace.pp_summary m
  | None -> ());
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

(* JSON has no nan/inf literals; a failed attempt's wall time can be
   nan (a watchdog race losing both timestamps) and must not poison the
   whole document.  %.6g itself is JSON-safe for every finite double
   (no bare [.5] or trailing-dot forms). *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let event_json e =
  let obj kind fields =
    Printf.sprintf "{\"event\": %s%s}" (str kind)
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf ", \"%s\": %s" k v) fields))
  in
  match e with
  | Injected { action; site; domain; step } ->
      obj "injected"
        [
          ("action", str (Fault.action_to_string action));
          ("site", string_of_int site);
          ("domain", string_of_int domain);
          ("step", string_of_int step);
        ]
  | Crashed { domain; step; exn } ->
      obj "crashed"
        [
          ("domain", string_of_int domain);
          ("step", string_of_int step);
          ("exn", str exn);
        ]
  | Timed_out { domain; step } ->
      obj "timed_out"
        [ ("domain", string_of_int domain); ("step", string_of_int step) ]
  | Tiles_reexecuted { count; step } ->
      obj "tiles_reexecuted"
        [ ("count", string_of_int count); ("step", string_of_int step) ]
  | Degraded { from_procs; to_procs } ->
      obj "degraded"
        [
          ("from_procs", string_of_int from_procs);
          ("to_procs", string_of_int to_procs);
        ]
  | Sequential_fallback -> obj "sequential_fallback" []

let attempt_json a =
  String.concat ""
    [
      "{\"attempt\": ";
      string_of_int a.attempt;
      ", \"nprocs\": ";
      string_of_int a.nprocs;
      ", \"outcome\": ";
      (match a.outcome with
      | Completed -> str "completed"
      | Failed r -> str ("failed: " ^ r));
      ", \"tiles_total\": ";
      string_of_int a.tiles_total;
      ", \"tiles_reexecuted\": ";
      string_of_int a.tiles_reexecuted;
      ", \"retired_domains\": [";
      String.concat ", "
        (List.map string_of_int (List.sort compare a.retired_domains));
      "], \"backoff_ms\": ";
      string_of_int a.backoff_ms;
      ", \"wall_seconds\": ";
      json_float a.wall_seconds;
      ", \"events\": [";
      String.concat ", " (List.map event_json a.events);
      "]}";
    ]

let to_json t =
  String.concat ""
    [
      "{\n  \"name\": ";
      str t.name;
      ",\n  \"policy\": ";
      str t.policy;
      ",\n  \"plan\": ";
      str t.plan;
      ",\n  \"deadline_ms\": ";
      string_of_int t.deadline_ms;
      ",\n  \"steps\": ";
      string_of_int t.steps;
      ",\n  \"tile_retry\": ";
      string_of_bool t.tile_retry;
      ",\n  \"completed\": ";
      string_of_bool t.completed;
      ",\n  \"final_nprocs\": ";
      string_of_int t.final_nprocs;
      ",\n  \"covered_exactly_once\": ";
      string_of_bool t.covered_exactly_once;
      ",\n  \"total_wall_seconds\": ";
      json_float t.total_wall_seconds;
      ",\n  \"checksum\": ";
      json_float t.checksum;
      ",\n  \"metrics\": ";
      (match t.metrics with
      | Some m -> Trace.summary_json m
      | None -> "null");
      ",\n  \"attempts\": [\n    ";
      String.concat ",\n    " (List.map attempt_json t.attempts);
      "\n  ]\n}\n";
    ]
