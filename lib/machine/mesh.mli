(** 2-D mesh interconnect (the Alewife topology, Section 4).

    Processors are laid out on a near-square grid; message cost is the
    Manhattan hop distance.  A [Uniform] network models the paper's
    bus / dance-hall configuration of Figure 2, where every memory access
    costs the same regardless of placement. *)

type t

val mesh : nprocs:int -> t
val uniform : nprocs:int -> t

val nprocs : t -> int
val coords : t -> int -> int * int
val distance : t -> int -> int -> int
(** Hop distance between two processors (0 for self; 1 between any pair
    under [uniform] so that remote and local remain distinguishable). *)

val is_uniform : t -> bool
val pp : Format.formatter -> t -> unit
