(* Row-style Hermite normal form by integer row reduction: repeatedly use
   division steps (a gcd computation spread across rows) to clear each
   column below its pivot, then reduce the entries above the pivot. *)

let row_hnf g =
  let r = Imat.rows g and c = Imat.cols g in
  let h = Array.init r (fun i -> Imat.row g i) in
  let u = Array.init r (fun i -> Array.init r (fun j -> if i = j then 1 else 0)) in
  let swap i j =
    let th = h.(i) in
    h.(i) <- h.(j);
    h.(j) <- th;
    let tu = u.(i) in
    u.(i) <- u.(j);
    u.(j) <- tu
  in
  let sub_row i j q =
    (* row_i <- row_i - q * row_j *)
    h.(i) <- Array.mapi (fun k x -> x - (q * h.(j).(k))) h.(i);
    u.(i) <- Array.mapi (fun k x -> x - (q * u.(j).(k))) u.(i)
  in
  let negate i =
    h.(i) <- Array.map (fun x -> -x) h.(i);
    u.(i) <- Array.map (fun x -> -x) u.(i)
  in
  let pr = ref 0 in
  for pc = 0 to c - 1 do
    if !pr < r then begin
      (* Reduce column pc below !pr to a single non-zero entry at !pr. *)
      let continue = ref true in
      while !continue do
        (* Find the row with the smallest non-zero |entry| in column pc. *)
        let best = ref (-1) in
        for i = !pr to r - 1 do
          if h.(i).(pc) <> 0
             && (!best = -1 || abs h.(i).(pc) < abs h.(!best).(pc))
          then best := i
        done;
        if !best = -1 then continue := false (* column is all zero *)
        else begin
          if !best <> !pr then swap !best !pr;
          let others_nonzero = ref false in
          for i = !pr + 1 to r - 1 do
            if h.(i).(pc) <> 0 then begin
              let q = Intmath.Int_math.floor_div h.(i).(pc) h.(!pr).(pc) in
              sub_row i !pr q;
              if h.(i).(pc) <> 0 then others_nonzero := true
            end
          done;
          if not !others_nonzero then continue := false
        end
      done;
      if h.(!pr).(pc) <> 0 then begin
        if h.(!pr).(pc) < 0 then negate !pr;
        (* Canonicalize entries above the pivot into [0, pivot). *)
        for i = 0 to !pr - 1 do
          let q = Intmath.Int_math.floor_div h.(i).(pc) h.(!pr).(pc) in
          if q <> 0 then sub_row i !pr q
        done;
        incr pr
      end
    end
  done;
  (Imat.of_array h, Imat.of_array u)

let pivots_of_hnf h =
  let r = Imat.rows h and c = Imat.cols h in
  let rec find_col i j =
    if j >= c then None else if Imat.get h i j <> 0 then Some j else find_col i (j + 1)
  in
  let rec go i acc =
    if i >= r then List.rev acc
    else
      match find_col i 0 with
      | None -> List.rev acc (* zero rows only below *)
      | Some j -> go (i + 1) ((i, j) :: acc)
  in
  go 0 []

let solve_left_int g b =
  if Array.length b <> Imat.cols g then
    invalid_arg "Hnf.solve_left_int: dimension mismatch";
  let h, u = row_hnf g in
  let pivots = pivots_of_hnf h in
  let residue = Array.copy b in
  let y = Array.make (Imat.rows g) 0 in
  let ok = ref true in
  List.iter
    (fun (pr, pc) ->
      if !ok then begin
        let p = Imat.get h pr pc in
        if residue.(pc) mod p <> 0 then ok := false
        else begin
          let q = residue.(pc) / p in
          y.(pr) <- q;
          for j = 0 to Array.length residue - 1 do
            residue.(j) <- residue.(j) - (q * Imat.get h pr j)
          done
        end
      end)
    pivots;
  if !ok && Ivec.is_zero residue then Some (Imat.mul_row y u) else None

let mem_row_lattice g b = Option.is_some (solve_left_int g b)

let left_nullspace g =
  let h, u = row_hnf g in
  let zero_rows =
    List.filter
      (fun i -> Ivec.is_zero (Imat.row h i))
      (List.init (Imat.rows h) Fun.id)
  in
  match zero_rows with
  | [] -> None
  | rows -> Some (Imat.select_rows u rows)

let is_onto g =
  Imat.rank g = Imat.cols g && Imat.gcd_maximal_minors g = 1

let is_one_to_one g = Imat.rank g = Imat.rows g
