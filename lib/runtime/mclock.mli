(** The runtime's single time source: a monotonic clock.

    Every timestamp the runtime takes - wall-clock timings in {!Exec}
    and {!Kernel}, watchdog deadlines and heartbeat ages in
    {!Resilient}, trace span edges in {!Trace} - used to come from
    [Unix.gettimeofday], which follows the {e wall} clock: NTP steps and
    leap-second smears move it, in either direction, at any moment.  A
    backwards step makes a stall deadline computed as [start + budget]
    re-arm after it already fired (or never fire), and makes per-domain
    timings silently negative.  This module is the fix: all runtime
    timing goes through [clock_gettime(CLOCK_MONOTONIC)], reached
    without new C stubs via the [bechamel.monotonic_clock] package the
    bench harness already links.

    Seconds from this clock are relative to an arbitrary epoch (boot
    time on Linux): only differences are meaningful, which is all the
    runtime ever computes. *)

val now_ns : unit -> int64
(** Nanoseconds of [CLOCK_MONOTONIC] since its (arbitrary) epoch. *)

val now : unit -> float
(** {!now_ns} in seconds.  Strictly for differences; never compare with
    [Unix.gettimeofday]. *)

(** {2 Guarded clocks}

    A {!t} wraps a time source with a monotonicity guard: {!read} never
    returns less than any earlier {!read} of the same clock, even if the
    underlying source steps backwards, and the guard is atomic so
    concurrent readers on different domains agree on the floor.  The
    default source is {!now} (already monotonic; the guard then costs
    one atomic load + CAS-free fast path).  An injectable [source]
    exists so tests can replay a recorded or adversarial clock - e.g. a
    wall clock stepping backwards mid-stall - against deadline logic. *)

type t

val create : ?source:(unit -> float) -> unit -> t
(** A fresh guarded clock over [source] (default {!now}). *)

val read : t -> float
(** The source's current time, clamped to be non-decreasing across all
    reads of this clock (from any domain). *)

(** {2 One-shot deadlines}

    The idiom the watchdog and the regression tests share: a deadline
    armed at a start instant that {e fires exactly once}, no matter how
    the underlying source misbehaves or how many domains poll it. *)

module Deadline : sig
  type d

  val arm : t -> after:float -> d
  (** A deadline [after] seconds from the clock's current reading.
      [after] must be finite and non-negative. *)

  val expired : d -> bool
  (** Whether the clock has passed the deadline.  Once true, stays true
      (the guarded clock cannot move back below the deadline). *)

  val fire : d -> bool
  (** [true] on the first call that observes the deadline expired, and
      on no other call ever - including concurrent callers, of which
      exactly one wins. *)

  val reset : d -> after:float -> unit
  (** Re-arm [after] seconds from now, clearing the fired latch: the
      watchdog's "progress observed, push the deadline out" step. *)
end
