type strategy = Linear | Snake | Folded | Serpentine | Shuffled of int

let grid_size grid = Array.fold_left ( * ) 1 grid

let coords_of_index grid idx =
  let n = Array.length grid in
  let c = Array.make n 0 in
  let rem = ref idx in
  for k = n - 1 downto 0 do
    c.(k) <- !rem mod grid.(k);
    rem := !rem / grid.(k)
  done;
  c

let index_of_coords grid c =
  let acc = ref 0 in
  Array.iteri (fun k v -> acc := (!acc * grid.(k)) + v) c;
  !acc

let snake_coords grid c =
  (* Reverse each dimension's direction whenever the prefix of higher
     dimensions sums odd - the classic boustrophedon walk. *)
  let n = Array.length grid in
  let c' = Array.copy c in
  let flip = ref false in
  for k = 0 to n - 1 do
    if !flip then c'.(k) <- grid.(k) - 1 - c.(k);
    if c'.(k) land 1 = 1 then flip := not !flip
  done;
  c'

let folded_coords grid c =
  (* Snake only the second dimension based on the first - pairs well
     with a near-square mesh. *)
  let c' = Array.copy c in
  if Array.length grid >= 2 && c.(0) land 1 = 1 then
    c'.(1) <- grid.(1) - 1 - c.(1);
  c'

(* Deterministic LCG-driven Fisher-Yates. *)
let shuffled_perm seed n =
  let state = ref (seed lor 1) in
  let next () =
    state := (!state * 0x5851F42D4C957F2D) + 0x14057B7EF767814F;
    (!state lsr 33) land max_int
  in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = next () mod (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  perm

(* Physical processor ids in boustrophedon order of their mesh
   coordinates: walking the list visits mesh neighbours only. *)
let serpentine_order mesh n =
  let cells = List.init n (fun p -> (p, Mesh.coords mesh p)) in
  let key (_, (x, y)) = (y, if y land 1 = 0 then x else -x) in
  List.map fst (List.sort (fun a b -> compare (key a) (key b)) cells)

let permutation strategy ~grid ~mesh =
  let n = grid_size grid in
  match strategy with
  | Linear -> Array.init n Fun.id
  | Snake ->
      Array.init n (fun idx ->
          index_of_coords grid (snake_coords grid (coords_of_index grid idx)))
  | Folded ->
      Array.init n (fun idx ->
          index_of_coords grid (folded_coords grid (coords_of_index grid idx)))
  | Serpentine -> Array.of_list (serpentine_order mesh n)
  | Shuffled seed -> shuffled_perm seed n

let neighbor_hop_cost ~grid ~mesh perm =
  let n = grid_size grid in
  if Array.length perm <> n then
    invalid_arg "Placement_map.neighbor_hop_cost: permutation size";
  let total = ref 0 in
  for idx = 0 to n - 1 do
    let c = coords_of_index grid idx in
    Array.iteri
      (fun k _ ->
        if c.(k) + 1 < grid.(k) then begin
          let c' = Array.copy c in
          c'.(k) <- c.(k) + 1;
          let j = index_of_coords grid c' in
          total := !total + Mesh.distance mesh perm.(idx) perm.(j)
        end)
      grid
  done;
  !total

let pp_strategy ppf = function
  | Linear -> Format.pp_print_string ppf "linear"
  | Snake -> Format.pp_print_string ppf "snake"
  | Folded -> Format.pp_print_string ppf "folded"
  | Serpentine -> Format.pp_print_string ppf "serpentine"
  | Shuffled s -> Format.fprintf ppf "shuffled(%d)" s

let best ~grid ~mesh =
  let candidates = [ Linear; Snake; Folded; Serpentine; Shuffled 42 ] in
  let scored =
    List.map
      (fun s ->
        let p = permutation s ~grid ~mesh in
        (s, p, neighbor_hop_cost ~grid ~mesh p))
      candidates
  in
  List.fold_left
    (fun (bs, bp, bc) (s, p, c) -> if c < bc then (s, p, c) else (bs, bp, bc))
    (List.hd scored) (List.tl scored)
