open Matrixkit

let footprint = Cost.misses_per_tile

let fits cost tile ~capacity = footprint cost tile <= capacity

let subtile cost tile ~capacity =
  match tile with
  | Tile.Pped _ ->
      invalid_arg "Capacity.subtile: parallelepiped tiles not supported"
  | Tile.Rect sizes0 ->
      let sizes = Array.copy sizes0 in
      let rec shrink () =
        if fits cost (Tile.rect sizes) ~capacity then Tile.rect sizes
        else begin
          (* Halve the largest dimension; give up at the unit tile. *)
          let k = ref 0 in
          Array.iteri (fun i s -> if s > sizes.(!k) then k := i) sizes;
          if sizes.(!k) <= 1 then
            invalid_arg
              (Printf.sprintf
                 "Capacity.subtile: a single iteration needs more than %d \
                  elements"
                 capacity)
          else begin
            sizes.(!k) <- (sizes.(!k) + 1) / 2;
            shrink ()
          end
        end
      in
      shrink ()

let blocked_iterations (sched : Codegen.schedule) ~subtile =
  let per = Codegen.iterations_by_proc sched in
  let key (it : Ivec.t) =
    (Array.to_list (Tile.tile_coords subtile it), Array.to_list it)
  in
  Array.map
    (fun iters ->
      List.stable_sort (fun a b -> compare (key a) (key b)) iters)
    per
