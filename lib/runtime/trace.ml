type kind =
  | Tile
  | Exec
  | Barrier
  | Chunk
  | Steal
  | Watchdog
  | Reexec
  | Step

let kind_name = function
  | Tile -> "tile"
  | Exec -> "exec"
  | Barrier -> "barrier"
  | Chunk -> "chunk"
  | Steal -> "steal"
  | Watchdog -> "watchdog"
  | Reexec -> "reexec"
  | Step -> "step"

let kind_index = function
  | Tile -> 0
  | Exec -> 1
  | Barrier -> 2
  | Chunk -> 3
  | Steal -> 4
  | Watchdog -> 5
  | Reexec -> 6
  | Step -> 7

let kind_of_index = [| Tile; Exec; Barrier; Chunk; Steal; Watchdog; Reexec; Step |]
let n_kinds = Array.length kind_of_index

type counter =
  | Tiles_run
  | Steals
  | Backoff_yields
  | Elements_touched
  | Faults_injected
  | Faults_detected

let counter_name = function
  | Tiles_run -> "tiles_run"
  | Steals -> "steals"
  | Backoff_yields -> "backoff_yields"
  | Elements_touched -> "elements_touched"
  | Faults_injected -> "faults_injected"
  | Faults_detected -> "faults_detected"

let counter_index = function
  | Tiles_run -> 0
  | Steals -> 1
  | Backoff_yields -> 2
  | Elements_touched -> 3
  | Faults_injected -> 4
  | Faults_detected -> 5

let n_counters = 6

(* Counter blocks are small and adjacent on the heap, so like
   {!Measure} they carry a guard region of [cpad] ints (128 bytes) on
   both sides: two domains bumping their own counters never share a
   cache line.  The span rings are thousands of elements, where only
   the boundary lines could ever be shared - not worth padding. *)
let cpad = 16

let max_depth = 32

type dom = {
  ring_kind : int array;
  ring_t0 : float array;
  ring_dur : float array;
  ring_arg : int array;
  capacity : int;
  mutable count : int;  (** spans ever recorded; ring slot = count mod cap *)
  stk_kind : int array;
  stk_t0 : float array;
  stk_arg : int array;
  mutable depth : int;
  counters : int array;  (** payload at [cpad .. cpad + n_counters - 1] *)
}

type t = { on : bool; origin : float; doms : dom array }

let disabled = { on = false; origin = 0.0; doms = [||] }

let create ?(capacity = 65536) ~domains () =
  if domains < 1 then invalid_arg "Trace.create: domains < 1";
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  {
    on = true;
    origin = Mclock.now ();
    doms =
      Array.init domains (fun _ ->
          {
            ring_kind = Array.make capacity 0;
            ring_t0 = Array.make capacity 0.0;
            ring_dur = Array.make capacity 0.0;
            ring_arg = Array.make capacity 0;
            capacity;
            count = 0;
            stk_kind = Array.make max_depth 0;
            stk_t0 = Array.make max_depth 0.0;
            stk_arg = Array.make max_depth 0;
            depth = 0;
            counters = Array.make (n_counters + (2 * cpad)) 0;
          });
  }

let enabled t = t.on

let[@inline] live t p = t.on && p >= 0 && p < Array.length t.doms

let[@inline] push d k t0 dur arg =
  let slot = d.count mod d.capacity in
  Array.unsafe_set d.ring_kind slot k;
  Array.unsafe_set d.ring_t0 slot t0;
  Array.unsafe_set d.ring_dur slot dur;
  Array.unsafe_set d.ring_arg slot arg;
  d.count <- d.count + 1

let begin_span t p k ~arg =
  if live t p then begin
    let d = t.doms.(p) in
    let i = d.depth in
    if i < max_depth then begin
      d.stk_kind.(i) <- kind_index k;
      d.stk_t0.(i) <- Mclock.now ();
      d.stk_arg.(i) <- arg
    end;
    d.depth <- i + 1
  end

let end_span t p =
  if live t p then begin
    let d = t.doms.(p) in
    let i = d.depth - 1 in
    if i >= 0 then begin
      d.depth <- i;
      if i < max_depth then
        let t0 = d.stk_t0.(i) in
        push d d.stk_kind.(i) t0 (Mclock.now () -. t0) d.stk_arg.(i)
    end
  end

let instant t p k ~arg =
  if live t p then push t.doms.(p) (kind_index k) (Mclock.now ()) 0.0 arg

let add t p c n =
  if live t p then begin
    let cs = t.doms.(p).counters in
    let i = cpad + counter_index c in
    cs.(i) <- cs.(i) + n
  end

let incr t p c = add t p c 1

let depth t p = if live t p then t.doms.(p).depth else 0

let unwind t p ~depth =
  if live t p then begin
    let d = t.doms.(p) in
    if depth >= 0 && depth < d.depth then d.depth <- depth
  end

let counters t p c =
  if live t p then t.doms.(p).counters.(cpad + counter_index c) else 0

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

type event = { domain : int; kind : kind; t0 : float; dur : float; arg : int }

let fold_events t f acc =
  let acc = ref acc in
  Array.iteri
    (fun p d ->
      let held = min d.count d.capacity in
      let first = d.count - held in
      for i = first to d.count - 1 do
        let slot = i mod d.capacity in
        acc :=
          f !acc
            {
              domain = p;
              kind = kind_of_index.(d.ring_kind.(slot));
              t0 = d.ring_t0.(slot) -. t.origin;
              dur = d.ring_dur.(slot);
              arg = d.ring_arg.(slot);
            }
      done)
    t.doms;
  !acc

let events t = List.rev (fold_events t (fun acc e -> e :: acc) [])

(* %.3f microseconds keeps nanosecond resolution; all values here are
   finite by construction (monotonic differences of finite floats). *)
let to_chrome_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  let first = ref true in
  ignore
    (fold_events t
       (fun () e ->
         if !first then first := false else Buffer.add_char b ',';
         Buffer.add_string b
           (Printf.sprintf
              "\n{\"name\": \"%s\", \"cat\": \"runtime\", \"ph\": \"X\", \
               \"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %d, \
               \"args\": {\"arg\": %d}}"
              (kind_name e.kind) (e.t0 *. 1e6) (e.dur *. 1e6) e.domain e.arg))
       ());
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

type summary = {
  domains : int;
  events : int;
  dropped : int;
  tiles_run : int;
  steals : int;
  backoff_yields : int;
  elements_touched : int;
  faults_injected : int;
  faults_detected : int;
  busy_seconds : (string * float) list;
}

let summary t =
  let total c =
    Array.fold_left
      (fun acc d -> acc + d.counters.(cpad + counter_index c))
      0 t.doms
  in
  let busy = Array.make n_kinds 0.0 in
  ignore
    (fold_events t
       (fun () e -> busy.(kind_index e.kind) <- busy.(kind_index e.kind) +. e.dur)
       ());
  {
    domains = Array.length t.doms;
    events =
      Array.fold_left (fun acc d -> acc + min d.count d.capacity) 0 t.doms;
    dropped =
      Array.fold_left (fun acc d -> acc + max 0 (d.count - d.capacity)) 0 t.doms;
    tiles_run = total Tiles_run;
    steals = total Steals;
    backoff_yields = total Backoff_yields;
    elements_touched = total Elements_touched;
    faults_injected = total Faults_injected;
    faults_detected = total Faults_detected;
    busy_seconds =
      List.filter
        (fun (_, s) -> s > 0.0)
        (List.init n_kinds (fun k ->
             (kind_name kind_of_index.(k), busy.(k))));
  }

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>=== trace metrics (%d domain%s) ===@," s.domains
    (if s.domains = 1 then "" else "s");
  Format.fprintf ppf "events: %d recorded%s@," s.events
    (if s.dropped = 0 then ""
     else Printf.sprintf " (%d dropped on ring overflow)" s.dropped);
  Format.fprintf ppf
    "tiles run: %d; steals: %d; backoff yields: %d; elements touched: %d@,"
    s.tiles_run s.steals s.backoff_yields s.elements_touched;
  Format.fprintf ppf "faults injected: %d; faults detected: %d@,"
    s.faults_injected s.faults_detected;
  List.iter
    (fun (k, sec) -> Format.fprintf ppf "busy %-9s %10.3f ms@," k (sec *. 1e3))
    s.busy_seconds;
  Format.fprintf ppf "@]"

let summary_json s =
  String.concat ""
    [
      "{\"domains\": ";
      string_of_int s.domains;
      ", \"events\": ";
      string_of_int s.events;
      ", \"dropped\": ";
      string_of_int s.dropped;
      ", \"tiles_run\": ";
      string_of_int s.tiles_run;
      ", \"steals\": ";
      string_of_int s.steals;
      ", \"backoff_yields\": ";
      string_of_int s.backoff_yields;
      ", \"elements_touched\": ";
      string_of_int s.elements_touched;
      ", \"faults_injected\": ";
      string_of_int s.faults_injected;
      ", \"faults_detected\": ";
      string_of_int s.faults_detected;
      ", \"busy_seconds\": {";
      String.concat ", "
        (List.map
           (fun (k, sec) -> Printf.sprintf "\"%s\": %.9f" k sec)
           s.busy_seconds);
      "}}";
    ]
