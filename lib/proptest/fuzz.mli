(** The fuzz campaign driver: generate cases, run the oracles, shrink
    failures, and render each failure as a replayable report. *)

type failure = {
  case : Gen.case;  (** as generated *)
  violation : Oracle.violation;  (** first oracle it tripped *)
  shrunk : Gen.case;  (** minimized reproducer *)
  shrunk_violation : Oracle.violation;
  shrink_steps : int;
}

type outcome = {
  seed : int;
  count : int;  (** cases requested *)
  tested : int;  (** cases actually run (early stop on max_failures) *)
  fault : Oracle.fault;
  failures : failure list;  (** in discovery order *)
}

val run :
  ?fault:Oracle.fault ->
  ?max_failures:int ->
  ?shrink_budget:int ->
  ?progress:(int -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  outcome
(** Runs cases [0 .. count-1] of [seed].  Stops early once
    [max_failures] (default 3) distinct failures have been collected and
    shrunk; [shrink_budget] (default 400) caps oracle evaluations per
    shrink.  [progress] is called with the case id every 50 cases. *)

val render_failure : outcome -> failure -> string
(** Human-readable report: the oracle verdict, the original and shrunk
    cases, and the exact [loopartc fuzz] command line that replays the
    run. *)

val pp_outcome : Format.formatter -> outcome -> unit
