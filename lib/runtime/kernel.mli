(** Kernel lowering: compile a [(nest, tile)] pair into specialized
    inner loops instead of interpreting the body point by point.

    {!Exec} pays, at {e every} iteration, one [c + m . i] multiply-add
    per reference plus a dispatch through the storage representation.
    But over a rectangular tile box the address of a compiled reference
    ({!Exec.cref}) changes by the compile-time constant [m.(k)] per unit
    step along axis [k].  A plan therefore precomputes the per-axis
    address deltas once, seeds one running address per reference at the
    box corner, and executes the box with incremental bumps only - plus:

    - {b traversal order}: when a conservative safety analysis proves
      reordering bit-exact (injective write maps, at most one
      same-address fiber axis per accumulate, no read/write aliasing
      besides identical maps), the axis with the most unit-stride
      references is rotated innermost so the inner loop walks arrays
      contiguously;
    - {b shape specialization}: the dominant body arities - 1-read
      copy, 5-point stencil, 2-read accumulate (matmul) - get
      hand-specialized unsafe loops over the concrete storage, with a
      generic bumped-address loop as the always-correct fallback.

    Value semantics are the interpreter's, bit for bit: reads summed in
    body order, [+. 1.0], the result stored or added through every
    write in body order.  Fuzz oracle 8 ({!Proptest.Oracle}) holds the
    two engines to byte-identical final buffers. *)

open Loopir

type box = (int * int) array
(** Inclusive per-axis bounds, indexed by loop axis - the clipped
    rectangles {!Partition.Codegen.rect_tile_ranges} produces. *)

type plan

val plan : ?force_generic:bool -> ?order:int array -> Exec.compiled -> plan
(** Lower a compiled nest.  [force_generic] disables shape
    specialization (benchmark baseline for isolating the incremental
    addressing win).  [order] overrides the traversal order ({e
    bypassing} the safety analysis - test/bench use only); it must be a
    permutation of the axes, outermost first. *)

val compiled : plan -> Exec.compiled
val order : plan -> int array
(** Chosen traversal order, outermost first.  The identity permutation
    unless the nest is {!reorderable} and a different innermost axis has
    strictly more unit-stride references. *)

val reorderable : plan -> bool
(** Whether the safety analysis proved every traversal order bit-exact
    (see the module preamble for the conditions).  In-place relaxations
    whose reads overlap their writes are the canonical [false]. *)

val shape : plan -> string
(** The specialization picked: ["copy"], ["stencil5"], ["accumulate3"],
    or ["generic"]. *)

val strides : plan -> (Reference.t * int array) list
(** Each body reference with its per-axis address deltas [m] (original
    axis order): [m.(k)] is exactly
    [address ref (i + e_k) - address ref i] for any in-bounds [i]. *)

val box_volume : box -> int

val run_box : plan -> Exec.storage -> box -> unit
(** Execute every iteration of the box once (one parallel step's worth
    of one tile).  Degenerate axes (extent 1) are fine; an empty box
    ([hi < lo] somewhere) is a no-op. *)

val boxes_of_schedule : Partition.Codegen.schedule -> box array array
(** The schedule's clipped tile boxes grouped by owning processor, each
    owner's boxes in tile-identifier order - [result.(p)] is domain
    [p]'s work for one step. *)

val one_pass :
  ?trace:Trace.t ->
  Pool.t ->
  plan ->
  Exec.storage ->
  boxes:box array array ->
  steps:int ->
  seconds:float array ->
  iterations:int array ->
  unit
(** Run [steps] barrier-separated sweeps, domain [p] executing
    [boxes.(p)]; fills per-domain wall seconds and iteration counts
    (timestamps on {!Mclock}).  Mirrors {!Exec}'s static one-pass
    structure (two barrier waits per step) so timings are comparable.
    A live [trace] records one span per box execution plus barrier and
    step spans. *)

val time :
  ?trace:Trace.t ->
  Pool.t ->
  plan ->
  boxes:box array array ->
  steps:int ->
  repeats:int ->
  float * float array * int array
(** [(wall, per_domain_seconds, per_domain_iterations)] of the fastest
    of [repeats] runs, each on fresh operands - the kernel-path
    analogue of {!Exec.time}. *)

val sequential : plan -> steps:int -> Exec.storage
(** The whole iteration space as one box on the calling domain, [steps]
    times, on fresh operands. *)
