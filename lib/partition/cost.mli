(** The per-tile memory-cost model of a loop nest.

    For every uniformly intersecting class this gathers the symbolic
    cumulative-footprint polynomial (in [x_k] = tile iterations per
    dimension) and its traffic part; the total over classes is the
    objective the optimizer minimizes subject to the load-balance
    constraint [prod x_k = iterations / P] (Section 3.6). *)

open Intmath
open Loopir
open Footprint

type class_cost = {
  cls : Uniform.cls;
  single : Mpoly.t;  (** footprint of one member reference *)
  cumulative : Mpoly.t;  (** Theorem 2 / Theorem 4 class footprint *)
  traffic : Mpoly.t;  (** [cumulative - single] *)
  sync_weight : int;
      (** 1 for ordinary classes, [sync_cost_factor] for classes containing
          atomic accumulates (Appendix A: synchronizing references are
          treated as writes with a slightly higher cost). *)
  writes : bool;
  null_dims : int list;
      (** loop dimensions with an all-zero [G] row: tiling them multiplies
          the writers per element (reduction dimensions) *)
}

type t = {
  nest : Nest.t;
  classes : class_cost list;
  total_cumulative : Mpoly.t;  (** unweighted: predicts cache misses *)
  total_traffic : Mpoly.t;
  objective : Mpoly.t;  (** sync-weighted cumulative; minimized *)
}

val sync_cost_factor : int
(** Weight applied to classes with accumulate references (default 2). *)

val of_nest : Nest.t -> t

val misses_per_tile : t -> Tile.t -> int
(** Predicted distinct-element misses for one tile: evaluates each class's
    cumulative footprint with the numeric engines (rectangular tiles use
    Theorem 4; general tiles Theorem 2). *)

val traffic_per_tile : t -> Tile.t -> int

val eval_objective : t -> float array -> float
(** Objective at real-valued tile sizes [x].  Beyond the polynomial, a
    written class whose [G] ignores some loop dimensions (a reduction)
    is charged once per writing tile: its term is multiplied by the tile
    count along those dimensions, so splitting a reduction dimension is
    visible as coherence cost (this is what keeps matmul's [k] unsplit). *)

val line_adjusted_objective : t -> line_size:int -> Mpoly.t
(** The objective measured in cache {e lines} rather than elements, for a
    row-major layout with the last array dimension contiguous: in each
    class, the tile variable that drives the contiguous dimension is
    substituted by [x/line + 1] (the Abraham-Hudak extension that
    Section 2.2 points to).  With [line_size = 1] this is the plain
    objective.  Larger lines bias the optimum toward tiles elongated
    along the memory-contiguous direction. *)

val pp : Format.formatter -> t -> unit
