open Loopir

type box = (int * int) array

type shape = Copy | Stencil5 | Acc3 | Generic

let shape_name = function
  | Copy -> "copy"
  | Stencil5 -> "stencil5"
  | Acc3 -> "accumulate3"
  | Generic -> "generic"

type plan = {
  compiled : Exec.compiled;
  nesting : int;
  reads : Exec.cref array;
  writes : (Exec.cref * bool) array;
  order : int array;  (** traversal order, outermost first *)
  reorderable : bool;
  shape : shape;
}

let compiled p = p.compiled
let order p = Array.copy p.order
let reorderable p = p.reorderable
let shape p = shape_name p.shape

(* ------------------------------------------------------------------ *)
(* Traversal-order safety analysis                                     *)
(* ------------------------------------------------------------------ *)

(* Inclusive address interval of a compiled reference over the whole
   iteration space (so over any clipped tile box a fortiori). *)
let addr_interval (r : Exec.cref) (bounds : (int * int) array) =
  let lo = ref r.Exec.c and hi = ref r.Exec.c in
  Array.iteri
    (fun k (l, h) ->
      let m = r.Exec.m.(k) in
      if m >= 0 then begin
        lo := !lo + (m * l);
        hi := !hi + (m * h)
      end
      else begin
        lo := !lo + (m * h);
        hi := !hi + (m * l)
      end)
    bounds;
  (!lo, !hi)

let disjoint (a1, b1) (a2, b2) = b1 < a2 || b2 < a1

let same_map (r : Exec.cref) (w : Exec.cref) =
  r.Exec.c = w.Exec.c && r.Exec.m = w.Exec.m

(* Sufficient mixed-radix condition for the address map [i -> c + m.i]
   to be injective over the full iteration space (hence over any box):
   sorting the moving axes by |m_k|, each stride must exceed the total
   span the smaller axes can cover. *)
let injective_on_space (r : Exec.cref) (extents : int array) =
  let moving = ref [] in
  Array.iteri
    (fun k m -> if m <> 0 && extents.(k) > 1 then moving := (abs m, k) :: !moving)
    r.Exec.m;
  let axes = List.sort compare !moving in
  let ok = ref true in
  let span = ref 0 in
  List.iter
    (fun (m, k) ->
      if m <= !span then ok := false;
      span := !span + (m * (extents.(k) - 1)))
    axes;
  !ok

(* Axes the reference is constant along (and that actually move): the
   same-address fiber directions.  If more than one, permuting the loop
   order permutes the fiber visit order, which reorders floating-point
   read-modify-writes. *)
let fiber_axes (r : Exec.cref) (extents : int array) =
  let n = ref 0 in
  Array.iteri
    (fun k m -> if m = 0 && extents.(k) > 1 then incr n)
    r.Exec.m;
  !n

(* Reordering the tile traversal is bit-exact iff (conservatively):
   every write-like reference is injective over the moving axes and has
   at most one fiber axis (so read-modify-write chains per address run
   along a single loop axis, whose order any permutation preserves);
   every read either touches an address range disjoint from every write
   or is the write's own per-iteration location; and distinct writes
   don't alias each other except through the identical index map. *)
let analyze_reorderable reads writes bounds extents =
  Array.for_all
    (fun ((w : Exec.cref), _) ->
      injective_on_space w extents && fiber_axes w extents <= 1)
    writes
  && Array.for_all
       (fun (r : Exec.cref) ->
         Array.for_all
           (fun ((w : Exec.cref), _) ->
             same_map r w
             || disjoint (addr_interval r bounds) (addr_interval w bounds))
           writes)
       reads
  && Array.for_all
       (fun ((w1 : Exec.cref), _) ->
         Array.for_all
           (fun ((w2 : Exec.cref), _) ->
             w1 == w2 || same_map w1 w2
             || disjoint (addr_interval w1 bounds) (addr_interval w2 bounds))
           writes)
       writes

(* Innermost axis choice: the axis along which the most references move
   with unit address stride (row-major spatial locality), restricted to
   axes that actually iterate.  Ties keep the natural innermost axis. *)
let choose_order ~nesting ~reorderable reads writes extents =
  let default = Array.init nesting Fun.id in
  if (not reorderable) || nesting <= 1 then default
  else begin
    let score = Array.make nesting 0 in
    let count (r : Exec.cref) =
      Array.iteri
        (fun k m -> if abs m = 1 && extents.(k) > 1 then score.(k) <- score.(k) + 1)
        r.Exec.m
    in
    Array.iter count reads;
    Array.iter (fun (w, _) -> count w) writes;
    let best = ref (nesting - 1) in
    for k = nesting - 2 downto 0 do
      if score.(k) > score.(!best) then best := k
    done;
    if !best = nesting - 1 then default
    else begin
      let rest =
        Array.to_list default |> List.filter (fun k -> k <> !best)
      in
      Array.of_list (rest @ [ !best ])
    end
  end

let is_permutation o n =
  Array.length o = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun k ->
      k >= 0 && k < n && not seen.(k) && (seen.(k) <- true; true))
    o

let detect_shape (reads : Exec.cref array) writes =
  match (Array.length reads, writes) with
  | 1, [| (_, false) |] -> Copy
  | 5, [| (_, false) |]
    when Array.for_all (fun (r : Exec.cref) -> r.Exec.m = reads.(0).Exec.m) reads
    ->
      (* Equal index maps let the five reads share one cursor with
         constant offsets - the defining property of a stencil. *)
      Stencil5
  | 2, [| (_, true) |] -> Acc3
  | _ -> Generic

let plan ?(force_generic = false) ?order compiled =
  let nest = Exec.nest compiled in
  let nesting = Nest.nesting nest in
  let bounds = Nest.bounds nest in
  let extents = Nest.extents nest in
  let reads = Exec.reads compiled in
  let writes = Exec.writes compiled in
  let reorderable = analyze_reorderable reads writes bounds extents in
  let order =
    match order with
    | Some o ->
        if not (is_permutation o nesting) then
          invalid_arg "Kernel.plan: order is not a permutation of the axes";
        Array.copy o
    | None -> choose_order ~nesting ~reorderable reads writes extents
  in
  let shape = if force_generic then Generic else detect_shape reads writes in
  { compiled; nesting; reads; writes; order; reorderable; shape }

(* Per-axis address delta of each body reference, in original axis
   order: exactly the [m] vector of the compiled reference. *)
let strides p =
  let nest = Exec.nest p.compiled in
  let ri = ref 0 and wi = ref 0 in
  List.map
    (fun (r : Reference.t) ->
      let cr =
        if Reference.is_write_like r then begin
          let cr, _ = p.writes.(!wi) in
          incr wi;
          cr
        end
        else begin
          let cr = p.reads.(!ri) in
          incr ri;
          cr
        end
      in
      (r, Array.copy cr.Exec.m))
    nest.Nest.body

(* ------------------------------------------------------------------ *)
(* Box execution                                                       *)
(* ------------------------------------------------------------------ *)

let box_volume (b : box) =
  Array.fold_left (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1)) 1 b

(* The specialized inner loops.  Every variant advances the references'
   running addresses by their innermost-axis deltas - no per-iteration
   address recomputation - and must reproduce the interpreter's value
   semantics bit for bit: reads summed in body order, [+. 1.0], stores
   (or in-place adds) through every write in body order. *)

let inner_copy_flat (data : float array) ~n ~dr ~dw r0 w0 =
  let r = ref r0 and w = ref w0 in
  for _ = 1 to n do
    Array.unsafe_set data !w (Array.unsafe_get data !r +. 1.0);
    r := !r + dr;
    w := !w + dw
  done

let inner_copy_big data ~n ~dr ~dw r0 w0 =
  let r = ref r0 and w = ref w0 in
  for _ = 1 to n do
    Bigarray.Array1.unsafe_set data !w
      (Bigarray.Array1.unsafe_get data !r +. 1.0);
    r := !r + dr;
    w := !w + dw
  done

(* The five reads share one index map (shape precondition), so their
   mutual offsets are constant over the box: one bumped cursor and four
   fixed displacements replace five independent address streams. *)
let inner_stencil5_flat (data : float array) ~n ~d ~dw ~o1 ~o2 ~o3 ~o4 b0 w0 =
  let b = ref b0 and w = ref w0 in
  for _ = 1 to n do
    let base = !b in
    Array.unsafe_set data !w
      (Array.unsafe_get data base
      +. Array.unsafe_get data (base + o1)
      +. Array.unsafe_get data (base + o2)
      +. Array.unsafe_get data (base + o3)
      +. Array.unsafe_get data (base + o4)
      +. 1.0);
    b := base + d;
    w := !w + dw
  done

let inner_stencil5_big data ~n ~d ~dw ~o1 ~o2 ~o3 ~o4 b0 w0 =
  let b = ref b0 and w = ref w0 in
  for _ = 1 to n do
    let base = !b in
    Bigarray.Array1.unsafe_set data !w
      (Bigarray.Array1.unsafe_get data base
      +. Bigarray.Array1.unsafe_get data (base + o1)
      +. Bigarray.Array1.unsafe_get data (base + o2)
      +. Bigarray.Array1.unsafe_get data (base + o3)
      +. Bigarray.Array1.unsafe_get data (base + o4)
      +. 1.0);
    b := base + d;
    w := !w + dw
  done

let inner_acc3_flat (data : float array) ~n ~d0 ~d1 ~dw r0' r1' w0 =
  let r0 = ref r0' and r1 = ref r1' and w = ref w0 in
  for _ = 1 to n do
    let a = !w in
    Array.unsafe_set data a
      (Array.unsafe_get data a
      +. (Array.unsafe_get data !r0 +. Array.unsafe_get data !r1 +. 1.0));
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    w := !w + dw
  done

let inner_acc3_big data ~n ~d0 ~d1 ~dw r0' r1' w0 =
  let r0 = ref r0' and r1 = ref r1' and w = ref w0 in
  for _ = 1 to n do
    let a = !w in
    Bigarray.Array1.unsafe_set data a
      (Bigarray.Array1.unsafe_get data a
      +. (Bigarray.Array1.unsafe_get data !r0
         +. Bigarray.Array1.unsafe_get data !r1 +. 1.0));
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    w := !w + dw
  done

(* Generic fallback: running addresses live in scratch arrays bumped in
   place - one add per reference per iteration, against the
   interpreter's O(nesting) multiply-add per reference.  The cursor
   bump is fused into the read-sum pass (one sweep over the cursor
   array per iteration, not two), and the overwhelmingly common
   single-write body gets its own variant with the accumulate dispatch
   and the write cursor hoisted out of the array. *)
let inner_generic1_flat (data : float array) ~n ~nr ~(rd : int array) ~dw
    ~is_acc (ra : int array) w0 =
  let w = ref w0 in
  for _ = 1 to n do
    let s = ref 0.0 in
    for i = 0 to nr - 1 do
      let a = Array.unsafe_get ra i in
      s := !s +. Array.unsafe_get data a;
      Array.unsafe_set ra i (a + Array.unsafe_get rd i)
    done;
    let v = !s +. 1.0 in
    let a = !w in
    if is_acc then Array.unsafe_set data a (Array.unsafe_get data a +. v)
    else Array.unsafe_set data a v;
    w := !w + dw
  done

let inner_generic1_big data ~n ~nr ~(rd : int array) ~dw ~is_acc
    (ra : int array) w0 =
  let w = ref w0 in
  for _ = 1 to n do
    let s = ref 0.0 in
    for i = 0 to nr - 1 do
      let a = Array.unsafe_get ra i in
      s := !s +. Bigarray.Array1.unsafe_get data a;
      Array.unsafe_set ra i (a + Array.unsafe_get rd i)
    done;
    let v = !s +. 1.0 in
    let a = !w in
    if is_acc then
      Bigarray.Array1.unsafe_set data a (Bigarray.Array1.unsafe_get data a +. v)
    else Bigarray.Array1.unsafe_set data a v;
    w := !w + dw
  done

(* Arity-unrolled single-write variants: same shape-agnostic bumped
   cursors, but held in registers instead of a scratch array once the
   read count is known.  Kills the per-read loop control and the cursor
   array traffic, which dominate [inner_generic1] for short bodies. *)
let inner_gen2_flat (data : float array) ~n ~(rd : int array) ~dw ~is_acc
    (ra : int array) w0 =
  let r0 = ref ra.(0) and r1 = ref ra.(1) and w = ref w0 in
  let d0 = rd.(0) and d1 = rd.(1) in
  for _ = 1 to n do
    let v = Array.unsafe_get data !r0 +. Array.unsafe_get data !r1 +. 1.0 in
    let a = !w in
    if is_acc then Array.unsafe_set data a (Array.unsafe_get data a +. v)
    else Array.unsafe_set data a v;
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    w := !w + dw
  done

let inner_gen3_flat (data : float array) ~n ~(rd : int array) ~dw ~is_acc
    (ra : int array) w0 =
  let r0 = ref ra.(0) and r1 = ref ra.(1) and r2 = ref ra.(2) and w = ref w0 in
  let d0 = rd.(0) and d1 = rd.(1) and d2 = rd.(2) in
  for _ = 1 to n do
    let v =
      Array.unsafe_get data !r0 +. Array.unsafe_get data !r1
      +. Array.unsafe_get data !r2 +. 1.0
    in
    let a = !w in
    if is_acc then Array.unsafe_set data a (Array.unsafe_get data a +. v)
    else Array.unsafe_set data a v;
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    r2 := !r2 + d2;
    w := !w + dw
  done

let inner_gen4_flat (data : float array) ~n ~(rd : int array) ~dw ~is_acc
    (ra : int array) w0 =
  let r0 = ref ra.(0)
  and r1 = ref ra.(1)
  and r2 = ref ra.(2)
  and r3 = ref ra.(3)
  and w = ref w0 in
  let d0 = rd.(0) and d1 = rd.(1) and d2 = rd.(2) and d3 = rd.(3) in
  for _ = 1 to n do
    let v =
      Array.unsafe_get data !r0 +. Array.unsafe_get data !r1
      +. Array.unsafe_get data !r2 +. Array.unsafe_get data !r3 +. 1.0
    in
    let a = !w in
    if is_acc then Array.unsafe_set data a (Array.unsafe_get data a +. v)
    else Array.unsafe_set data a v;
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    r2 := !r2 + d2;
    r3 := !r3 + d3;
    w := !w + dw
  done

let inner_gen5_flat (data : float array) ~n ~(rd : int array) ~dw ~is_acc
    (ra : int array) w0 =
  let r0 = ref ra.(0)
  and r1 = ref ra.(1)
  and r2 = ref ra.(2)
  and r3 = ref ra.(3)
  and r4 = ref ra.(4)
  and w = ref w0 in
  let d0 = rd.(0) and d1 = rd.(1) and d2 = rd.(2) and d3 = rd.(3) and d4 = rd.(4) in
  for _ = 1 to n do
    let v =
      Array.unsafe_get data !r0 +. Array.unsafe_get data !r1
      +. Array.unsafe_get data !r2 +. Array.unsafe_get data !r3
      +. Array.unsafe_get data !r4 +. 1.0
    in
    let a = !w in
    if is_acc then Array.unsafe_set data a (Array.unsafe_get data a +. v)
    else Array.unsafe_set data a v;
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    r2 := !r2 + d2;
    r3 := !r3 + d3;
    r4 := !r4 + d4;
    w := !w + dw
  done

let inner_gen2_big data ~n ~(rd : int array) ~dw ~is_acc (ra : int array) w0 =
  let r0 = ref ra.(0) and r1 = ref ra.(1) and w = ref w0 in
  let d0 = rd.(0) and d1 = rd.(1) in
  for _ = 1 to n do
    let v =
      Bigarray.Array1.unsafe_get data !r0
      +. Bigarray.Array1.unsafe_get data !r1 +. 1.0
    in
    let a = !w in
    if is_acc then
      Bigarray.Array1.unsafe_set data a (Bigarray.Array1.unsafe_get data a +. v)
    else Bigarray.Array1.unsafe_set data a v;
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    w := !w + dw
  done

let inner_gen3_big data ~n ~(rd : int array) ~dw ~is_acc (ra : int array) w0 =
  let r0 = ref ra.(0) and r1 = ref ra.(1) and r2 = ref ra.(2) and w = ref w0 in
  let d0 = rd.(0) and d1 = rd.(1) and d2 = rd.(2) in
  for _ = 1 to n do
    let v =
      Bigarray.Array1.unsafe_get data !r0
      +. Bigarray.Array1.unsafe_get data !r1
      +. Bigarray.Array1.unsafe_get data !r2 +. 1.0
    in
    let a = !w in
    if is_acc then
      Bigarray.Array1.unsafe_set data a (Bigarray.Array1.unsafe_get data a +. v)
    else Bigarray.Array1.unsafe_set data a v;
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    r2 := !r2 + d2;
    w := !w + dw
  done

let inner_gen4_big data ~n ~(rd : int array) ~dw ~is_acc (ra : int array) w0 =
  let r0 = ref ra.(0)
  and r1 = ref ra.(1)
  and r2 = ref ra.(2)
  and r3 = ref ra.(3)
  and w = ref w0 in
  let d0 = rd.(0) and d1 = rd.(1) and d2 = rd.(2) and d3 = rd.(3) in
  for _ = 1 to n do
    let v =
      Bigarray.Array1.unsafe_get data !r0
      +. Bigarray.Array1.unsafe_get data !r1
      +. Bigarray.Array1.unsafe_get data !r2
      +. Bigarray.Array1.unsafe_get data !r3 +. 1.0
    in
    let a = !w in
    if is_acc then
      Bigarray.Array1.unsafe_set data a (Bigarray.Array1.unsafe_get data a +. v)
    else Bigarray.Array1.unsafe_set data a v;
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    r2 := !r2 + d2;
    r3 := !r3 + d3;
    w := !w + dw
  done

let inner_gen5_big data ~n ~(rd : int array) ~dw ~is_acc (ra : int array) w0 =
  let r0 = ref ra.(0)
  and r1 = ref ra.(1)
  and r2 = ref ra.(2)
  and r3 = ref ra.(3)
  and r4 = ref ra.(4)
  and w = ref w0 in
  let d0 = rd.(0) and d1 = rd.(1) and d2 = rd.(2) and d3 = rd.(3) and d4 = rd.(4) in
  for _ = 1 to n do
    let v =
      Bigarray.Array1.unsafe_get data !r0
      +. Bigarray.Array1.unsafe_get data !r1
      +. Bigarray.Array1.unsafe_get data !r2
      +. Bigarray.Array1.unsafe_get data !r3
      +. Bigarray.Array1.unsafe_get data !r4 +. 1.0
    in
    let a = !w in
    if is_acc then
      Bigarray.Array1.unsafe_set data a (Bigarray.Array1.unsafe_get data a +. v)
    else Bigarray.Array1.unsafe_set data a v;
    r0 := !r0 + d0;
    r1 := !r1 + d1;
    r2 := !r2 + d2;
    r3 := !r3 + d3;
    r4 := !r4 + d4;
    w := !w + dw
  done

let inner_generic_flat (data : float array) ~n ~nr ~nw ~(rd : int array)
    ~(wd : int array) ~(acc : bool array) (ra : int array) (wa : int array) =
  for _ = 1 to n do
    let s = ref 0.0 in
    for i = 0 to nr - 1 do
      let a = Array.unsafe_get ra i in
      s := !s +. Array.unsafe_get data a;
      Array.unsafe_set ra i (a + Array.unsafe_get rd i)
    done;
    let v = !s +. 1.0 in
    for i = 0 to nw - 1 do
      let a = Array.unsafe_get wa i in
      (if Array.unsafe_get acc i then
         Array.unsafe_set data a (Array.unsafe_get data a +. v)
       else Array.unsafe_set data a v);
      Array.unsafe_set wa i (a + Array.unsafe_get wd i)
    done
  done

let inner_generic_big data ~n ~nr ~nw ~(rd : int array) ~(wd : int array)
    ~(acc : bool array) (ra : int array) (wa : int array) =
  for _ = 1 to n do
    let s = ref 0.0 in
    for i = 0 to nr - 1 do
      let a = Array.unsafe_get ra i in
      s := !s +. Bigarray.Array1.unsafe_get data a;
      Array.unsafe_set ra i (a + Array.unsafe_get rd i)
    done;
    let v = !s +. 1.0 in
    for i = 0 to nw - 1 do
      let a = Array.unsafe_get wa i in
      (if Array.unsafe_get acc i then
         Bigarray.Array1.unsafe_set data a
           (Bigarray.Array1.unsafe_get data a +. v)
       else Bigarray.Array1.unsafe_set data a v);
      Array.unsafe_set wa i (a + Array.unsafe_get wd i)
    done
  done

let run_box p storage (b : box) =
  let d = p.nesting in
  if Array.length b <> d then invalid_arg "Kernel.run_box: box arity mismatch";
  if Array.exists (fun (lo, hi) -> hi < lo) b then ()
  else begin
    let ord = p.order in
    let ext = Array.map (fun k -> let lo, hi = b.(k) in hi - lo + 1) ord in
    let nr = Array.length p.reads and nw = Array.length p.writes in
    let start (r : Exec.cref) =
      let a = ref r.Exec.c in
      Array.iteri (fun k (lo, _) -> a := !a + (r.Exec.m.(k) * lo)) b;
      !a
    in
    (* Running addresses (outer axes), and per-ref deltas permuted into
       traversal order. *)
    let ra = Array.map start p.reads in
    let wa = Array.map (fun (w, _) -> start w) p.writes in
    let rdelta =
      Array.map (fun (r : Exec.cref) -> Array.map (fun k -> r.Exec.m.(k)) ord) p.reads
    in
    let wdelta =
      Array.map (fun ((w : Exec.cref), _) -> Array.map (fun k -> w.Exec.m.(k)) ord)
        p.writes
    in
    let n = ext.(d - 1) in
    let rd = Array.map (fun dl -> dl.(d - 1)) rdelta in
    let wd = Array.map (fun dl -> dl.(d - 1)) wdelta in
    (* [inner ra wa] runs the innermost row starting at the given
       addresses; it must not mutate its arguments. *)
    let inner =
      match (p.shape, Exec.view storage) with
      | Copy, `Flat data ->
          let dr = rd.(0) and dw = wd.(0) in
          fun (ra : int array) (wa : int array) ->
            inner_copy_flat data ~n ~dr ~dw ra.(0) wa.(0)
      | Copy, `Big data ->
          let dr = rd.(0) and dw = wd.(0) in
          fun ra wa -> inner_copy_big data ~n ~dr ~dw ra.(0) wa.(0)
      | Stencil5, `Flat data ->
          let d = rd.(0) and dw = wd.(0) in
          let o1 = ra.(1) - ra.(0)
          and o2 = ra.(2) - ra.(0)
          and o3 = ra.(3) - ra.(0)
          and o4 = ra.(4) - ra.(0) in
          fun (ra : int array) (wa : int array) ->
            inner_stencil5_flat data ~n ~d ~dw ~o1 ~o2 ~o3 ~o4 ra.(0) wa.(0)
      | Stencil5, `Big data ->
          let d = rd.(0) and dw = wd.(0) in
          let o1 = ra.(1) - ra.(0)
          and o2 = ra.(2) - ra.(0)
          and o3 = ra.(3) - ra.(0)
          and o4 = ra.(4) - ra.(0) in
          fun ra wa ->
            inner_stencil5_big data ~n ~d ~dw ~o1 ~o2 ~o3 ~o4 ra.(0) wa.(0)
      | Acc3, `Flat data ->
          let d0 = rd.(0) and d1 = rd.(1) and dw = wd.(0) in
          fun ra wa -> inner_acc3_flat data ~n ~d0 ~d1 ~dw ra.(0) ra.(1) wa.(0)
      | Acc3, `Big data ->
          let d0 = rd.(0) and d1 = rd.(1) and dw = wd.(0) in
          fun ra wa -> inner_acc3_big data ~n ~d0 ~d1 ~dw ra.(0) ra.(1) wa.(0)
      | Generic, `Flat data when nw = 1 ->
          let dw = wd.(0) and is_acc = snd p.writes.(0) in
          let unrolled =
            match nr with
            | 2 -> Some inner_gen2_flat
            | 3 -> Some inner_gen3_flat
            | 4 -> Some inner_gen4_flat
            | 5 -> Some inner_gen5_flat
            | _ -> None
          in
          (match unrolled with
          | Some f -> fun ra wa -> f data ~n ~rd ~dw ~is_acc ra wa.(0)
          | None ->
              let ras = Array.make (max nr 1) 0 in
              fun ra wa ->
                Array.blit ra 0 ras 0 nr;
                inner_generic1_flat data ~n ~nr ~rd ~dw ~is_acc ras wa.(0))
      | Generic, `Big data when nw = 1 ->
          let dw = wd.(0) and is_acc = snd p.writes.(0) in
          let unrolled =
            match nr with
            | 2 -> Some inner_gen2_big
            | 3 -> Some inner_gen3_big
            | 4 -> Some inner_gen4_big
            | 5 -> Some inner_gen5_big
            | _ -> None
          in
          (match unrolled with
          | Some f -> fun ra wa -> f data ~n ~rd ~dw ~is_acc ra wa.(0)
          | None ->
              let ras = Array.make (max nr 1) 0 in
              fun ra wa ->
                Array.blit ra 0 ras 0 nr;
                inner_generic1_big data ~n ~nr ~rd ~dw ~is_acc ras wa.(0))
      | Generic, `Flat data ->
          let acc = Array.map snd p.writes in
          let ras = Array.make (max nr 1) 0 and was = Array.make (max nw 1) 0 in
          fun ra wa ->
            Array.blit ra 0 ras 0 nr;
            Array.blit wa 0 was 0 nw;
            inner_generic_flat data ~n ~nr ~nw ~rd ~wd ~acc ras was
      | Generic, `Big data ->
          let acc = Array.map snd p.writes in
          let ras = Array.make (max nr 1) 0 and was = Array.make (max nw 1) 0 in
          fun ra wa ->
            Array.blit ra 0 ras 0 nr;
            Array.blit wa 0 was 0 nw;
            inner_generic_big data ~n ~nr ~nw ~rd ~wd ~acc ras was
    in
    let rec go k =
      if k = d - 1 then inner ra wa
      else begin
        for _ = 1 to ext.(k) do
          go (k + 1);
          for i = 0 to nr - 1 do
            ra.(i) <- ra.(i) + rdelta.(i).(k)
          done;
          for i = 0 to nw - 1 do
            wa.(i) <- wa.(i) + wdelta.(i).(k)
          done
        done;
        for i = 0 to nr - 1 do
          ra.(i) <- ra.(i) - (ext.(k) * rdelta.(i).(k))
        done;
        for i = 0 to nw - 1 do
          wa.(i) <- wa.(i) - (ext.(k) * wdelta.(i).(k))
        done
      end
    in
    go 0
  end

(* ------------------------------------------------------------------ *)
(* Schedules and parallel execution                                    *)
(* ------------------------------------------------------------------ *)

let boxes_of_schedule sched =
  let open Partition in
  let ranges = Codegen.rect_tile_ranges sched in
  let n = sched.Codegen.nprocs in
  let own = Codegen.owner sched in
  let by = Array.make n [] in
  List.iter
    (fun (b : box) ->
      let corner = Array.map fst b in
      let p = own corner in
      by.(p) <- b :: by.(p))
    ranges;
  Array.map (fun l -> Array.of_list (List.rev l)) by

let check_boxes pool p boxes =
  if Array.length boxes <> Pool.size pool then
    invalid_arg
      (Printf.sprintf "Kernel: %d-domain pool given %d-way boxes"
         (Pool.size pool) (Array.length boxes));
  Array.iter
    (Array.iter (fun (b : box) ->
         if Array.length b <> p.nesting then
           invalid_arg "Kernel: box arity mismatch"))
    boxes

let one_pass ?(trace = Trace.disabled) pool p storage ~boxes ~steps ~seconds
    ~iterations =
  Pool.run pool (fun me barrier ->
      let sense = ref false in
      let mine = boxes.(me) in
      let per_step = Array.fold_left (fun acc b -> acc + box_volume b) 0 mine in
      let yielded = ref 0 in
      let t0 = Mclock.now () in
      for step = 1 to steps do
        Trace.begin_span trace me Trace.Barrier ~arg:step;
        Pool.Barrier.wait barrier ~sense ~yielded;
        Trace.end_span trace me;
        Trace.begin_span trace me Trace.Step ~arg:step;
        for i = 0 to Array.length mine - 1 do
          Trace.begin_span trace me Trace.Tile ~arg:i;
          run_box p storage (Array.unsafe_get mine i);
          Trace.end_span trace me;
          Trace.incr trace me Trace.Tiles_run
        done;
        Trace.end_span trace me;
        Trace.begin_span trace me Trace.Barrier ~arg:step;
        Pool.Barrier.wait barrier ~sense ~yielded;
        Trace.end_span trace me
      done;
      Trace.add trace me Trace.Backoff_yields !yielded;
      seconds.(me) <- Mclock.now () -. t0;
      iterations.(me) <- per_step * steps)

let time ?trace pool p ~boxes ~steps ~repeats =
  check_boxes pool p boxes;
  if repeats < 1 then invalid_arg "Kernel.time: repeats < 1";
  let nprocs = Pool.size pool in
  let best_wall = ref infinity in
  let best_seconds = Array.make nprocs 0.0 in
  let best_iterations = Array.make nprocs 0 in
  for _rep = 1 to repeats do
    let storage = Exec.alloc p.compiled in
    let seconds = Array.make nprocs 0.0 in
    let iterations = Array.make nprocs 0 in
    let t0 = Mclock.now () in
    one_pass ?trace pool p storage ~boxes ~steps ~seconds ~iterations;
    let wall = Mclock.now () -. t0 in
    ignore (Sys.opaque_identity (Exec.checksum storage));
    if wall < !best_wall then begin
      best_wall := wall;
      Array.blit seconds 0 best_seconds 0 nprocs;
      Array.blit iterations 0 best_iterations 0 nprocs
    end
  done;
  (!best_wall, best_seconds, best_iterations)

let sequential p ~steps =
  let storage = Exec.alloc p.compiled in
  let bounds = Nest.bounds (Exec.nest p.compiled) in
  let whole = Array.map (fun (lo, hi) -> (lo, hi)) bounds in
  for _step = 1 to steps do
    run_box p storage whole
  done;
  storage
