(** Iteration-space tiles (Definitions 1-2 of the paper).

    A homogeneous hyperparallelepiped partition is fully described by its
    tile at the origin.  Rectangular tiles are stored by their per-dimension
    iteration counts (the paper's [lambda_k + 1], i.e. the diagonal of
    [Lambda] plus one); general tiles by their [L] matrix whose rows are
    the tile edge vectors ([L = Lambda (H^-1)^t], Definition 2). *)

open Intmath
open Matrixkit

type t =
  | Rect of int array  (** iterations per dimension, each [>= 1] *)
  | Pped of Imat.t  (** square [L]; rows are edge vectors *)

val rect : int array -> t
val pped : Imat.t -> t

val nesting : t -> int

val lambda : t -> int array
(** For rectangular tiles: the bound vector [lambda] (sizes minus one).
    Raises [Invalid_argument] on [Pped]. *)

val l_matrix : t -> Qmat.t
(** The [L] matrix over the rationals (diagonal for rectangular tiles). *)

val volume : t -> Rat.t
(** [|det L|]: the (continuous) number of iterations in the tile.  For
    rectangular tiles this is the product of the sizes. *)

val iterations : t -> Ivec.t list
(** Integer points of the tile at the origin (rectangular: the box
    [0..size_k - 1]; pped: the points of [S(L)]).  Enumerative. *)

val contains : t -> Ivec.t -> bool
(** Is the iteration-space point inside the tile at the origin? *)

val tile_coords : t -> Ivec.t -> int array
(** Which tile of the homogeneous partition contains the point: for
    rectangular tiles [floor(i_k / size_k)]; for general tiles
    [floor(i L^-1)] component-wise. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
