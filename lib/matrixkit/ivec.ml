type t = int array

let make n v = Array.make n v
let zero n = make n 0
let of_list = Array.of_list
let to_list = Array.to_list
let dim = Array.length

let check_dims a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Ivec.%s: dimension mismatch" name)

let map2 f a b =
  check_dims a b "map2";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( + ) a b
let sub a b = map2 ( - ) a b
let neg a = Array.map (fun x -> -x) a
let scale k a = Array.map (fun x -> k * x) a

let dot a b =
  check_dims a b "dot";
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x * b.(i))) a;
  !acc

let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b
let is_zero a = Array.for_all (fun x -> x = 0) a
let gcd a = Array.fold_left Intmath.Int_math.gcd 0 a

let pp ppf v =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (List.map string_of_int (Array.to_list v)))

let to_string v = Format.asprintf "%a" pp v
