(* Smoke suite for the differential fuzzing subsystem (lib/proptest).

   Three things must hold for the fuzzer to be trustworthy:
   - determinism: a (seed, id) pair regenerates the identical case;
   - soundness: a fixed-seed clean campaign finds zero violations
     (every oracle layer agrees on every random nest);
   - sensitivity: each injectable fault is actually caught, and the
     shrinker returns a smaller case that still fails. *)

open Proptest

let clean_seed = 42
let smoke_count = 60

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  for id = 0 to 19 do
    let a = Gen.generate ~seed:clean_seed ~id in
    let b = Gen.generate ~seed:clean_seed ~id in
    Alcotest.(check string)
      (Printf.sprintf "case %d regenerates identically" id)
      (Gen.to_string a) (Gen.to_string b)
  done

let test_generator_valid () =
  (* Every generated case is well-formed: tile within extents, nprocs in
     range, iteration space small enough to brute-force. *)
  for id = 0 to 99 do
    let c = Gen.generate ~seed:7 ~id in
    let extents = Loopir.Nest.extents c.Gen.nest in
    Array.iteri
      (fun k t ->
        Alcotest.(check bool)
          (Printf.sprintf "case %d tile dim %d in 1..extent" id k)
          true
          (t >= 1 && t <= extents.(k)))
      c.Gen.tile;
    Alcotest.(check bool)
      (Printf.sprintf "case %d nprocs in 1..4" id)
      true
      (c.Gen.nprocs >= 1 && c.Gen.nprocs <= 4);
    Alcotest.(check bool)
      (Printf.sprintf "case %d space small" id)
      true
      (Loopir.Nest.iterations c.Gen.nest <= 1728)
  done

let test_generator_covers_shapes () =
  (* The G gallery must actually produce the awkward shapes the oracles
     exist for: singular matrices, multi-member classes, trip-count-1
     dims, sequential loops. *)
  let singular = ref 0
  and multi_class = ref 0
  and trip1 = ref 0
  and seq = ref 0 in
  for id = 0 to 199 do
    let c = Gen.generate ~seed:11 ~id in
    let nest = c.Gen.nest in
    List.iter
      (fun (r : Loopir.Reference.t) ->
        let g = Loopir.Affine.g r.index in
        if
          Matrixkit.Imat.rank g < min (Matrixkit.Imat.rows g) (Matrixkit.Imat.cols g)
        then incr singular)
      nest.Loopir.Nest.body;
    if
      List.exists
        (fun (cls : Footprint.Uniform.cls) -> List.length cls.refs >= 2)
        (Footprint.Uniform.classify_nest nest)
    then incr multi_class;
    if Array.exists (fun t -> t = 1) c.Gen.tile then incr trip1;
    if nest.Loopir.Nest.seq <> None then incr seq
  done;
  Alcotest.(check bool) "singular G generated" true (!singular > 10);
  Alcotest.(check bool) "multi-member classes generated" true (!multi_class > 10);
  Alcotest.(check bool) "trip-count-1 tiles generated" true (!trip1 > 30);
  Alcotest.(check bool) "doseq nests generated" true (!seq > 20)

(* ------------------------------------------------------------------ *)
(* Clean campaign                                                      *)
(* ------------------------------------------------------------------ *)

let test_clean_campaign () =
  let o = Fuzz.run ~seed:clean_seed ~count:smoke_count () in
  Alcotest.(check int) "all cases tested" smoke_count o.Fuzz.tested;
  List.iter
    (fun f -> Alcotest.failf "unexpected violation:\n%s" (Fuzz.render_failure o f))
    o.Fuzz.failures

(* ------------------------------------------------------------------ *)
(* Injected faults: caught and shrunk                                  *)
(* ------------------------------------------------------------------ *)

let expected_oracle = function
  | Oracle.Spread_off_by_one -> "footprint-cumulative"
  | Oracle.Drop_iteration -> "owner-cover"
  | Oracle.No_fault -> assert false

let test_fault_caught fault () =
  let o = Fuzz.run ~fault ~max_failures:1 ~seed:clean_seed ~count:150 () in
  match o.Fuzz.failures with
  | [] ->
      Alcotest.failf "fault %s escaped %d cases"
        (Oracle.fault_to_string fault) o.Fuzz.tested
  | f :: _ ->
      Alcotest.(check string)
        "tripped the oracle the fault targets"
        (expected_oracle fault)
        f.Fuzz.shrunk_violation.Oracle.oracle;
      Alcotest.(check bool) "shrunk case not heavier" true
        (Gen.weight f.Fuzz.shrunk <= Gen.weight f.Fuzz.case);
      Alcotest.(check bool) "shrunk case is small" true
        (Loopir.Nest.iterations f.Fuzz.shrunk.Gen.nest
        <= Loopir.Nest.iterations f.Fuzz.case.Gen.nest);
      (* The report must be replayable: it names the seed and the case. *)
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
        m = 0 || at 0
      in
      let report = Fuzz.render_failure o f in
      Alcotest.(check bool) "report names the seed" true
        (contains report (string_of_int clean_seed));
      Alcotest.(check bool) "report carries a replay command" true
        (contains report "loopartc fuzz --seed")

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let test_shrink_reaches_fixpoint () =
  (* Shrinking with an always-failing oracle must terminate (weight is
     strictly decreasing) and reach a minimal case. *)
  let case = Gen.generate ~seed:3 ~id:5 in
  let v = { Oracle.oracle = "fake"; detail = "always fails" } in
  let r =
    Shrink.minimize ~fails:(fun _ -> Some v) ~budget:2000 case v
  in
  Alcotest.(check int) "minimal nest has one iteration" 1
    (Loopir.Nest.iterations r.Shrink.shrunk.Gen.nest);
  Alcotest.(check int) "minimal case uses one processor" 1
    r.Shrink.shrunk.Gen.nprocs

let () =
  Alcotest.run "proptest"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "valid cases" `Quick test_generator_valid;
          Alcotest.test_case "shape coverage" `Quick test_generator_covers_shapes;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "clean campaign, zero violations" `Slow
            test_clean_campaign;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "spread off-by-one caught" `Slow
            (test_fault_caught Oracle.Spread_off_by_one);
          Alcotest.test_case "dropped iteration caught" `Slow
            (test_fault_caught Oracle.Drop_iteration);
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "terminates at a minimal case" `Quick
            test_shrink_reaches_fixpoint;
        ] );
    ]
