open Matrixkit
open Loopir

let uniformly_generated = Affine.uniformly_generated

let intersecting r s =
  if Affine.dims r <> Affine.dims s then false
  else
    let delta = Ivec.sub (Affine.offset s) (Affine.offset r) in
    if uniformly_generated r s then Hnf.mem_row_lattice (Affine.g r) delta
    else begin
      (* Stack [G1; -G2]: an integer x = (i1, i2) with
         i1*G1 - i2*G2 = a2 - a1 witnesses an intersection. *)
      let g1 = Affine.g r and g2 = Affine.g s in
      let l1 = Imat.rows g1 and l2 = Imat.rows g2 in
      let stacked =
        Imat.make (l1 + l2) (Imat.cols g1) (fun i j ->
            if i < l1 then Imat.get g1 i j else -Imat.get g2 (i - l1) j)
      in
      Hnf.mem_row_lattice stacked delta
    end

let uniformly_intersecting r s =
  uniformly_generated r s && intersecting r s

type cls = {
  array_name : string;
  g : Imat.t;
  refs : Reference.t list;
  offsets : Ivec.t list;
}

let spread cls =
  match cls.offsets with
  | [] -> invalid_arg "Uniform.spread: empty class"
  | first :: rest ->
      let d = Ivec.dim first in
      let lo = Array.copy first and hi = Array.copy first in
      List.iter
        (fun o ->
          for k = 0 to d - 1 do
            if o.(k) < lo.(k) then lo.(k) <- o.(k);
            if o.(k) > hi.(k) then hi.(k) <- o.(k)
          done)
        rest;
      Ivec.sub hi lo

let cumulative_spread cls =
  match cls.offsets with
  | [] -> invalid_arg "Uniform.cumulative_spread: empty class"
  | first :: _ ->
      let d = Ivec.dim first in
      Array.init d (fun k ->
          let col = List.map (fun o -> o.(k)) cls.offsets in
          let sorted = List.sort compare col in
          let median = List.nth sorted ((List.length sorted - 1) / 2) in
          List.fold_left (fun acc v -> acc + abs (v - median)) 0 col)

let has_write cls = List.exists Reference.is_write_like cls.refs

let classify refs =
  (* Fold references into the first compatible class, preserving program
     order of both classes and members.  Intersection within a uniformly
     generated set is transitive (lattice membership), so matching against
     any member — we use the first — is sound. *)
  let classes = ref [] in
  List.iter
    (fun (r : Reference.t) ->
      let rec place = function
        | [] ->
            [
              {
                array_name = r.Reference.array_name;
                g = Affine.g r.Reference.index;
                refs = [ r ];
                offsets = [ Affine.offset r.Reference.index ];
              };
            ]
        | c :: rest ->
            if
              String.equal c.array_name r.Reference.array_name
              && (match c.refs with
                 | m :: _ ->
                     uniformly_intersecting m.Reference.index
                       r.Reference.index
                 | [] -> false)
            then
              {
                c with
                refs = c.refs @ [ r ];
                offsets = c.offsets @ [ Affine.offset r.Reference.index ];
              }
              :: rest
            else c :: place rest
      in
      classes := place !classes)
    refs;
  !classes

let classify_nest nest = classify nest.Nest.body

let pp_cls ~vars ppf cls =
  Format.fprintf ppf "@[<v>class %s (%d refs):@," cls.array_name
    (List.length cls.refs);
  List.iter
    (fun r -> Format.fprintf ppf "  %a@," (Reference.pp ~vars) r)
    cls.refs;
  Format.fprintf ppf "  G =@,%a@,  spread = %a@]" Imat.pp cls.g Ivec.pp
    (spread cls)
