(* Tests for the hardened report serialization: Report.to_json must be
   strictly valid JSON even for reports carrying non-finite floats and
   control characters, verified by round-tripping through a
   deliberately strict hand-written JSON parser (no nan/inf literals,
   no unescaped control characters, no trailing garbage).  The same
   parser validates Trace.to_chrome_json. *)

module Fault = Runtime.Fault
module Report = Runtime.Report
module Trace = Runtime.Trace

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* A strict JSON parser (RFC 8259 subset, no extensions)               *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "dangling escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* Test inputs only use BMP < 0x80 escapes. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else fail "non-ASCII \\u escape unsupported by this parser"
        | _ -> fail "bad escape");
        go ()
      end
      else if Char.code c < 0x20 then
        fail "unescaped control character in string"
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = d0 then fail "expected digits"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else fail "bad literal"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else fail "bad literal"
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Null
        end
        else fail "bad literal"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj k =
  match obj with
  | Obj members -> (
      match List.assoc_opt k members with
      | Some v -> v
      | None -> Alcotest.failf "missing field %S" k)
  | _ -> Alcotest.failf "not an object (looking for %S)" k

(* ------------------------------------------------------------------ *)
(* Round trip                                                          *)
(* ------------------------------------------------------------------ *)

(* A report deliberately stuffed with everything that used to corrupt
   the JSON: nan/inf wall times and checksums, control characters and
   quotes in strings. *)
let hostile_report () =
  let attempt =
    {
      Report.attempt = 0;
      nprocs = 2;
      outcome = Report.Failed "boom\x01 with \ttab and \"quotes\"";
      events =
        [
          Report.Injected
            { action = Fault.Crash; site = 0; domain = 1; step = 1 };
          Report.Crashed
            { domain = 1; step = 1; exn = "Weird\x02exn\nnewline" };
        ];
      tiles_total = 4;
      tiles_reexecuted = 1;
      retired_domains = [ 1 ];
      backoff_ms = 0;
      wall_seconds = Float.nan;
    }
  in
  {
    Report.name = "nest\x1fwith\x07control \"chars\"";
    policy = "retry:3:25";
    plan = "crash@d1s1c0";
    deadline_ms = 100;
    steps = 2;
    tile_retry = true;
    attempts = [ attempt ];
    completed = false;
    final_nprocs = 2;
    total_wall_seconds = Float.infinity;
    checksum = Float.neg_infinity;
    covered_exactly_once = false;
    metrics = None;
  }

let test_hostile_report_round_trips () =
  let r = hostile_report () in
  let json =
    match parse_json (Report.to_json r) with
    | j -> j
    | exception Bad msg -> Alcotest.failf "report JSON is not strict: %s" msg
  in
  (* Strings with control characters survive escaping byte for byte. *)
  (match field json "name" with
  | Str s -> checks "name round-trips" r.Report.name s
  | _ -> Alcotest.fail "name not a string");
  (* Non-finite floats become null, never nan/inf literals. *)
  checkb "inf total wall -> null" true (field json "total_wall_seconds" = Null);
  checkb "-inf checksum -> null" true (field json "checksum" = Null);
  checkb "no metrics -> null" true (field json "metrics" = Null);
  match field json "attempts" with
  | Arr [ att ] -> (
      checkb "nan attempt wall -> null" true (field att "wall_seconds" = Null);
      match field att "events" with
      | Arr [ injected; crashed ] ->
          checkb "site serialized" true (field injected "site" = Num 0.0);
          (match field crashed "exn" with
          | Str s -> checks "exn round-trips" "Weird\x02exn\nnewline" s
          | _ -> Alcotest.fail "exn not a string")
      | _ -> Alcotest.fail "expected 2 events")
  | _ -> Alcotest.fail "expected 1 attempt"

let test_live_report_with_metrics_round_trips () =
  (* A real traced resilient run end to end: injected fault, retry,
     metrics summary - all through the strict parser. *)
  let nest = Loopart.Programs.stencil5 ~n:17 ~steps:2 () in
  let nprocs = 4 in
  let a = Loopart.Driver.analyze ~nprocs nest in
  let trace = Trace.create ~domains:nprocs () in
  let config =
    { Loopart.Driver.default_exec_config with Loopart.Driver.trace = Some trace }
  in
  (* A wildcard crash fires on the first claim by whichever domain gets
     there - deterministic even when a tiny problem leaves some domain
     without any claims at all. *)
  let plan =
    match Fault.of_string "crash" with
    | Ok p -> p
    | Error e -> Alcotest.failf "bad plan: %s" e
  in
  let report, _ = Loopart.Driver.execute_resilient ~config ~plan a in
  checkb "completed" true report.Runtime.Report.completed;
  let json =
    match parse_json (Report.to_json report) with
    | j -> j
    | exception Bad msg -> Alcotest.failf "live report JSON not strict: %s" msg
  in
  (match field json "metrics" with
  | Obj _ as m ->
      (match field m "tiles_run" with
      | Num tr ->
          let s = Trace.summary trace in
          checkb "metrics tiles_run matches the recorder" true
            (int_of_float tr = s.Trace.tiles_run)
      | _ -> Alcotest.fail "tiles_run not a number");
      checkb "faults injected recorded" true
        (field m "faults_injected" = Num 1.0)
  | Null -> Alcotest.fail "traced report lost its metrics"
  | _ -> Alcotest.fail "metrics not an object");
  match field json "attempts" with
  | Arr (_ :: _) -> ()
  | _ -> Alcotest.fail "no attempts"

let test_chrome_trace_is_strict_json () =
  let trace = Trace.create ~domains:2 () in
  Trace.begin_span trace 0 Trace.Tile ~arg:1;
  Trace.begin_span trace 0 Trace.Exec ~arg:1;
  Trace.end_span trace 0;
  Trace.end_span trace 0;
  Trace.instant trace 1 Trace.Watchdog ~arg:2;
  match parse_json (Trace.to_chrome_json trace) with
  | exception Bad msg -> Alcotest.failf "chrome JSON is not strict: %s" msg
  | json -> (
      match field json "traceEvents" with
      | Arr evs ->
          Alcotest.(check int) "three events" 3 (List.length evs);
          List.iter
            (fun e ->
              checkb "complete event" true (field e "ph" = Str "X");
              match (field e "ts", field e "dur") with
              | Num ts, Num dur ->
                  checkb "non-negative timestamps" true (ts >= 0.0 && dur >= 0.0)
              | _ -> Alcotest.fail "ts/dur not numbers")
            evs
      | _ -> Alcotest.fail "traceEvents not an array")

let test_parser_rejects_bare_nan () =
  (* Sanity-check the checker itself: the old serializer's output shape
     must actually fail this parser. *)
  let rejects s =
    match parse_json s with exception Bad _ -> true | _ -> false
  in
  checkb "bare nan" true (rejects "{\"x\": nan}");
  checkb "bare inf" true (rejects "{\"x\": inf}");
  checkb "raw control char" true (rejects "{\"x\": \"a\x01b\"}");
  checkb "trailing garbage" true (rejects "{} {}");
  checkb "valid json accepted" false
    (rejects "{\"x\": [1.5e-3, null, true, \"\\u0007\"]}")

let () =
  Alcotest.run "report-json"
    [
      ( "round-trip",
        [
          Alcotest.test_case "hostile report is strict JSON" `Quick
            test_hostile_report_round_trips;
          Alcotest.test_case "live traced report is strict JSON" `Quick
            test_live_report_with_metrics_round_trips;
          Alcotest.test_case "chrome trace is strict JSON" `Quick
            test_chrome_trace_is_strict_json;
          Alcotest.test_case "parser rejects the old failure modes" `Quick
            test_parser_rejects_bare_nan;
        ] );
    ]
