(** A tiny deterministic PRNG (splitmix64) for the differential fuzzer.

    [Stdlib.Random] is avoided on purpose: its stream is not guaranteed
    stable across OCaml releases, and a fuzz failure must be replayable
    from [--seed S] forever.  Splitmix64 is fully specified by its seed,
    so a counterexample seed printed by CI reproduces bit-identically on
    any machine. *)

type t

val make : int -> t
(** Stream seeded by an integer. *)

val case : seed:int -> id:int -> t
(** An independent stream for case [id] of run [seed]: case [k] of a run
    generates the same nest no matter how many cases precede it, so a
    single failing case can be regenerated without replaying the run. *)

val int : t -> int -> int
(** Uniform in [0, bound).  Raises [Invalid_argument] on [bound <= 0]. *)

val range : t -> int -> int -> int
(** Uniform inclusive [lo..hi]. *)

val bool : t -> bool

val chance : t -> pct:int -> bool
(** True with probability [pct]/100. *)

val choose : t -> 'a array -> 'a
