(* Tests for the trace recorder: span-stack discipline and nesting
   well-formedness, ring overflow accounting, counter totals against
   the schedule's cover-exactly-once tile counts, the disabled
   recorder's zero-event zero-allocation guarantee, and the < 5%
   overhead budget of tracing a real run. *)

open Loopart
module Trace = Runtime.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Recording discipline                                                *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let t = Trace.create ~domains:2 () in
  Trace.begin_span t 0 Trace.Tile ~arg:7;
  Trace.begin_span t 0 Trace.Exec ~arg:7;
  Trace.end_span t 0;
  Trace.end_span t 0;
  checki "stack empty again" 0 (Trace.depth t 0);
  match Trace.events t with
  | [ inner; outer ] ->
      (* The inner span completes (and is recorded) first. *)
      checkb "inner is exec" true (inner.Trace.kind = Trace.Exec);
      checkb "outer is tile" true (outer.Trace.kind = Trace.Tile);
      checki "args preserved" 7 inner.Trace.arg;
      checkb "durations non-negative" true
        (inner.Trace.dur >= 0.0 && outer.Trace.dur >= 0.0);
      (* Well-nested: the child interval lies inside the parent's. *)
      checkb "child starts after parent" true
        (outer.Trace.t0 <= inner.Trace.t0);
      checkb "child ends before parent" true
        (inner.Trace.t0 +. inner.Trace.dur
         <= outer.Trace.t0 +. outer.Trace.dur +. 1e-9)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_unwind_discards_open_spans () =
  let t = Trace.create ~domains:1 () in
  let d0 = Trace.depth t 0 in
  Trace.begin_span t 0 Trace.Tile ~arg:1;
  Trace.begin_span t 0 Trace.Exec ~arg:1;
  checki "two open spans" 2 (Trace.depth t 0);
  Trace.unwind t 0 ~depth:d0;
  checki "stack reset" 0 (Trace.depth t 0);
  checki "nothing recorded" 0 (List.length (Trace.events t));
  (* Recording still works after an unwind. *)
  Trace.begin_span t 0 Trace.Step ~arg:1;
  Trace.end_span t 0;
  checki "recording resumes" 1 (List.length (Trace.events t))

let test_overdeep_nesting_is_safe () =
  let t = Trace.create ~domains:1 () in
  for i = 1 to 64 do
    Trace.begin_span t 0 Trace.Tile ~arg:i
  done;
  checki "depth tracks past the limit" 64 (Trace.depth t 0);
  for _ = 1 to 64 do
    Trace.end_span t 0
  done;
  checki "stack unwound" 0 (Trace.depth t 0);
  (* Spans beyond max_depth are not recorded; the 32 tracked ones are. *)
  checki "tracked spans recorded" 32 (List.length (Trace.events t))

let test_out_of_range_domain_ignored () =
  let t = Trace.create ~domains:1 () in
  Trace.begin_span t 5 Trace.Tile ~arg:0;
  Trace.end_span t 5;
  Trace.incr t (-1) Trace.Tiles_run;
  Trace.instant t 99 Trace.Steal ~arg:0;
  checki "no events" 0 (List.length (Trace.events t));
  checki "no counters" 0 (Trace.counters t 0 Trace.Tiles_run)

let test_ring_overflow_counts_dropped () =
  let t = Trace.create ~capacity:4 ~domains:1 () in
  for i = 0 to 9 do
    Trace.instant t 0 Trace.Steal ~arg:i
  done;
  let s = Trace.summary t in
  checki "held" 4 s.Trace.events;
  checki "dropped" 6 s.Trace.dropped;
  let args = List.map (fun e -> e.Trace.arg) (Trace.events t) in
  Alcotest.(check (list int)) "newest survive" [ 6; 7; 8; 9 ] args

(* ------------------------------------------------------------------ *)
(* Counter totals vs the schedule's tile counts                        *)
(* ------------------------------------------------------------------ *)

(* A traced tiled run must record exactly one claim-to-completion span
   per (tile, step, repeat) and the same number on the Tiles_run
   counter - the trace-side mirror of Validate's cover-exactly-once
   property. *)
let test_counters_match_tile_counts () =
  let nest = Programs.stencil5 ~n:33 ~steps:2 () in
  let nprocs = 4 and repeats = 2 in
  let a = Driver.analyze ~nprocs nest in
  let sched = Driver.schedule a in
  let ntiles = Partition.Codegen.num_tiles sched in
  let steps = Runtime.Exec.steps_of_nest nest in
  let trace = Trace.create ~domains:nprocs () in
  let config =
    {
      Driver.default_exec_config with
      Driver.repeats;
      trace = Some trace;
    }
  in
  ignore (Driver.execute ~config a);
  let s = Trace.summary trace in
  let expected = ntiles * steps * repeats in
  checki "tiles_run counter covers every (tile, step, repeat)" expected
    s.Trace.tiles_run;
  let tile_spans =
    List.length
      (List.filter
         (fun e -> e.Trace.kind = Trace.Tile)
         (Trace.events trace))
  in
  checki "one tile span per (tile, step, repeat)" expected tile_spans;
  checki "no ring overflow at this scale" 0 s.Trace.dropped;
  (* The instrumented pass feeds the footprint counter. *)
  checkb "elements touched recorded" true (s.Trace.elements_touched > 0)

let test_resilient_counters_match_cover () =
  let nest = Programs.stencil5 ~n:17 ~steps:2 () in
  let nprocs = 4 in
  let a = Driver.analyze ~nprocs nest in
  let trace = Trace.create ~domains:nprocs () in
  let config =
    { Driver.default_exec_config with Driver.trace = Some trace }
  in
  let report, _ = Driver.execute_resilient ~config a in
  checkb "completed" true report.Runtime.Report.completed;
  checkb "covered exactly once" true
    report.Runtime.Report.covered_exactly_once;
  let tiles_total =
    match report.Runtime.Report.attempts with
    | [ att ] -> att.Runtime.Report.tiles_total
    | atts -> Alcotest.failf "expected 1 attempt, got %d" (List.length atts)
  in
  let s = Trace.summary trace in
  checki "tiles_run == tiles x steps (the cover-exactly-once count)"
    (tiles_total * report.Runtime.Report.steps)
    s.Trace.tiles_run;
  (match report.Runtime.Report.metrics with
  | Some m -> checki "report embeds the same summary" s.Trace.tiles_run
                m.Trace.tiles_run
  | None -> Alcotest.fail "traced resilient report has no metrics");
  checki "no faults in a fault-free run" 0 s.Trace.faults_injected

(* ------------------------------------------------------------------ *)
(* Disabled recorder: zero events, zero allocation                     *)
(* ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  let t = Trace.disabled in
  checkb "disabled" false (Trace.enabled t);
  Trace.begin_span t 0 Trace.Tile ~arg:0;
  Trace.end_span t 0;
  Trace.instant t 0 Trace.Steal ~arg:0;
  Trace.incr t 0 Trace.Tiles_run;
  checki "no events" 0 (List.length (Trace.events t));
  checki "no counters" 0 (Trace.counters t 0 Trace.Tiles_run);
  let s = Trace.summary t in
  checki "empty summary" 0 s.Trace.events;
  checki "zero domains" 0 s.Trace.domains

let test_disabled_claim_path_allocates_nothing () =
  let t = Trace.disabled in
  (* One warm call so any one-time setup is paid before measuring. *)
  Trace.begin_span t 0 Trace.Tile ~arg:0;
  Trace.end_span t 0;
  let w0 = Gc.minor_words () in
  for i = 0 to 99_999 do
    Trace.begin_span t 0 Trace.Tile ~arg:i;
    Trace.begin_span t 0 Trace.Exec ~arg:i;
    Trace.end_span t 0;
    Trace.incr t 0 Trace.Tiles_run;
    Trace.end_span t 0
  done;
  let delta = Gc.minor_words () -. w0 in
  (* The boxed float returned by Gc.minor_words itself accounts for a
     few words; 100k traced claims would account for hundreds of
     thousands. *)
  checkb "claim-path probes allocate nothing" true (delta < 64.0)

(* ------------------------------------------------------------------ *)
(* Overhead budget                                                     *)
(* ------------------------------------------------------------------ *)

(* Tracing must stay under 5% of wall-clock on the E22 scale-1 stencil
   workload.  Samples are interleaved (untraced, traced, untraced, ...)
   so scheduler drift hits both sides equally, compared by per-side
   medians with an absolute slack floor so machine noise on millisecond
   runs cannot fail the relative bound. *)
let test_overhead_budget () =
  let nest = Programs.stencil5 ~n:128 ~steps:2 () in
  let nprocs = 2 and reps = 7 in
  let a = Driver.analyze ~nprocs nest in
  let sched = Driver.schedule a in
  let compiled = Runtime.Exec.compile nest in
  let plan = Runtime.Kernel.plan compiled in
  let boxes = Runtime.Kernel.boxes_of_schedule sched in
  let steps = Runtime.Exec.steps_of_nest nest in
  Runtime.Pool.with_pool nprocs (fun pool ->
      let once trace () =
        let w, _, _ =
          Runtime.Kernel.time ~trace pool plan ~boxes ~steps ~repeats:1
        in
        w
      in
      let trace = Trace.create ~domains:nprocs () in
      let plain = once Trace.disabled and traced = once trace in
      ignore (plain ());
      ignore (traced ());
      let ps = Array.make reps 0.0 and ts = Array.make reps 0.0 in
      for i = 0 to reps - 1 do
        ps.(i) <- plain ();
        ts.(i) <- traced ()
      done;
      let med a =
        let a = Array.copy a in
        Array.sort compare a;
        a.(reps / 2)
      in
      let p = med ps and t = med ts in
      if not (t <= (p *. 1.05) +. 0.002) then
        Alcotest.failf
          "tracing overhead out of budget: untraced %.3f ms, traced %.3f ms \
           (budget 5%% + 2 ms slack)"
          (1e3 *. p) (1e3 *. t))

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_shape () =
  let t = Trace.create ~domains:2 () in
  Trace.begin_span t 0 Trace.Tile ~arg:3;
  Trace.end_span t 0;
  Trace.instant t 1 Trace.Steal ~arg:3;
  let json = Trace.to_chrome_json t in
  let count_substring hay needle =
    let n = String.length needle and h = String.length hay in
    let c = ref 0 in
    for i = 0 to h - n do
      if String.sub hay i n = needle then incr c
    done;
    !c
  in
  checki "one complete event per span" 2
    (count_substring json "\"ph\": \"X\"");
  checki "tile event present" 1 (count_substring json "\"name\": \"tile\"");
  checki "steal on domain 1" 1 (count_substring json "\"tid\": 1");
  checkb "traceEvents container" true
    (count_substring json "\"traceEvents\"" = 1)

let () =
  Alcotest.run "trace"
    [
      ( "recording",
        [
          Alcotest.test_case "spans nest well-formed" `Quick test_span_nesting;
          Alcotest.test_case "unwind discards open spans" `Quick
            test_unwind_discards_open_spans;
          Alcotest.test_case "over-deep nesting is safe" `Quick
            test_overdeep_nesting_is_safe;
          Alcotest.test_case "out-of-range domains ignored" `Quick
            test_out_of_range_domain_ignored;
          Alcotest.test_case "ring overflow counts dropped" `Quick
            test_ring_overflow_counts_dropped;
        ] );
      ( "counters",
        [
          Alcotest.test_case "totals match (tile, step, repeat) counts" `Quick
            test_counters_match_tile_counts;
          Alcotest.test_case "resilient totals match cover-exactly-once"
            `Quick test_resilient_counters_match_cover;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "claim path allocates nothing" `Quick
            test_disabled_claim_path_allocates_nothing;
        ] );
      ( "overhead",
        [ Alcotest.test_case "< 5% on E22 scale-1" `Slow test_overhead_budget ] );
      ( "export",
        [ Alcotest.test_case "chrome trace shape" `Quick test_chrome_export_shape ] );
    ]
