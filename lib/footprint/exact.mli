(** Ground-truth footprint computation by exhaustive enumeration.

    These functions walk every iteration of a tile and collect the exact
    set of data elements touched.  They are exponential in the tile size
    and exist to validate the closed forms of {!Size} (and to measure the
    approximation error reported in EXPERIMENTS.md), not for use inside
    the optimizer. *)

open Matrixkit
open Loopir

val rect_tile_iterations : lambda:int array -> Ivec.t list
(** All integer points [0 <= i_k <= lambda_k]. *)

val pped_tile_iterations : l:Imat.t -> Ivec.t list
(** All integer points on or inside the hyperparallelepiped whose edge
    vectors are the rows of [l] (Definition 7's [S(L)]), found by scanning
    the bounding box and testing rational coordinates. *)

val footprint : iterations:Ivec.t list -> Affine.t -> Ivec.t list
(** Distinct data elements accessed through one reference. *)

val footprint_size : iterations:Ivec.t list -> Affine.t -> int

val cumulative_footprint_size :
  iterations:Ivec.t list -> Affine.t list -> int
(** Size of the union of the footprints of several references (the class
    members), Definition 3 /cumulative footprint. *)

val nest_unique_elements : Nest.t -> (string * int) list
(** For each array of the nest, the number of distinct elements accessed
    over the whole iteration space (useful to bound cold misses). *)
