(* Tests for the footprint machinery: classification into uniformly
   intersecting sets (Definitions 4-6, Appendix B), spread vectors
   (Definition 8, footnote 2), and the size engines (Equation 2,
   Theorems 1-5), all validated against exhaustive enumeration. *)

open Intmath
open Matrixkit
open Loopir
open Footprint

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let rat = Alcotest.testable Rat.pp Rat.equal

let aff rows off = Affine.of_rows rows off

(* ------------------------------------------------------------------ *)
(* Classification: Definitions 4-6 and Appendix B                      *)
(* ------------------------------------------------------------------ *)

let test_intersecting_basic () =
  (* From Definition 4's text: A(i+c1, j+c2) and A(j+c3, i+c4) intersect
     even though they are not uniformly generated. *)
  let a = aff [ [ 1; 0 ]; [ 0; 1 ] ] [ 3; 7 ] in
  let b = aff [ [ 0; 1 ]; [ 1; 0 ] ] [ -2; 5 ] in
  checkb "transposed pair intersects" true (Uniform.intersecting a b);
  checkb "but is not uniformly generated" false
    (Uniform.uniformly_generated a b);
  (* A[2i] and A[2i+1] never intersect. *)
  let e = aff [ [ 2 ] ] [ 0 ] and o = aff [ [ 2 ] ] [ 1 ] in
  checkb "A[2i] vs A[2i+1]" false (Uniform.intersecting e o)

let test_appendix_b_uniformly_intersecting () =
  (* Set 1: A[i,j], A[i+1,j-3], A[i,j+4]. *)
  let g = [ [ 1; 0 ]; [ 0; 1 ] ] in
  let r1 = aff g [ 0; 0 ] and r2 = aff g [ 1; -3 ] and r3 = aff g [ 0; 4 ] in
  checkb "set1 12" true (Uniform.uniformly_intersecting r1 r2);
  checkb "set1 13" true (Uniform.uniformly_intersecting r1 r3);
  checkb "set1 23" true (Uniform.uniformly_intersecting r2 r3)

let test_appendix_b_negative_pairs () =
  let id = [ [ 1; 0 ]; [ 0; 1 ] ] in
  (* 1. A[i,j] vs A[2i,j] *)
  checkb "A[i,j] vs A[2i,j]" false
    (Uniform.uniformly_intersecting
       (aff id [ 0; 0 ])
       (aff [ [ 2; 0 ]; [ 0; 1 ] ] [ 0; 0 ]));
  (* 2. A[i,j] vs A[2i,2j] *)
  checkb "A[i,j] vs A[2i,2j]" false
    (Uniform.uniformly_intersecting
       (aff id [ 0; 0 ])
       (aff [ [ 2; 0 ]; [ 0; 2 ] ] [ 0; 0 ]));
  (* 3. A[j,2,4] vs A[j,3,4]: uniformly generated, non-intersecting. *)
  let g3 = [ [ 0; 0; 0 ]; [ 1; 0; 0 ] ] in
  let p = aff g3 [ 0; 2; 4 ] and q = aff g3 [ 0; 3; 4 ] in
  checkb "A[j,2,4] vs A[j,3,4] uniformly generated" true
    (Uniform.uniformly_generated p q);
  checkb "A[j,2,4] vs A[j,3,4] not intersecting" false
    (Uniform.intersecting p q);
  (* 4. A[2i] vs A[2i+1] *)
  checkb "A[2i] vs A[2i+1]" false
    (Uniform.uniformly_intersecting (aff [ [ 2 ] ] [ 0 ]) (aff [ [ 2 ] ] [ 1 ]));
  (* 5. A[i+2,2i+4] vs A[i+3,2i+8]: delta (1,4) needs x=1 and 2x=4. *)
  let g5 = [ [ 1; 2 ] ] in
  checkb "A[i+2,2i+4] vs A[i+3,2i+8]" false
    (Uniform.uniformly_intersecting (aff g5 [ 2; 4 ]) (aff g5 [ 3; 8 ]))

let test_classify_example10 () =
  (* Example 10: C(i,2i,i+2j-1) and C(i,2i,i+2j+1) are one class;
     C(i+1,2i+2,i+2j+1) is its own class despite equal G. *)
  let gc = [ [ 1; 2; 1 ]; [ 0; 0; 2 ] ] in
  let refs =
    [
      Reference.read "C" (aff gc [ 0; 0; -1 ]);
      Reference.read "C" (aff gc [ 1; 2; 1 ]);
      Reference.read "C" (aff gc [ 0; 0; 1 ]);
    ]
  in
  let classes = Uniform.classify refs in
  check "two classes" 2 (List.length classes);
  let sizes = List.sort compare (List.map (fun c -> List.length c.Uniform.refs) classes) in
  Alcotest.(check (list int)) "sizes 1 and 2" [ 1; 2 ] sizes

let test_classify_different_arrays () =
  (* Appendix B non-example 6: A[i,j] vs B[i,j]. *)
  let id = [ [ 1; 0 ]; [ 0; 1 ] ] in
  let refs =
    [ Reference.read "A" (aff id [ 0; 0 ]); Reference.read "B" (aff id [ 0; 0 ]) ]
  in
  check "never merged across arrays" 2 (List.length (Uniform.classify refs))

let test_classify_order_preserved () =
  let id = [ [ 1; 0 ]; [ 0; 1 ] ] in
  let refs =
    [
      Reference.write "A" (aff id [ 0; 0 ]);
      Reference.read "B" (aff id [ 0; 0 ]);
      Reference.read "A" (aff id [ 1; 1 ]);
    ]
  in
  let classes = Uniform.classify refs in
  check "two classes" 2 (List.length classes);
  (match classes with
  | a :: b :: _ ->
      Alcotest.(check string) "A first" "A" a.Uniform.array_name;
      Alcotest.(check string) "B second" "B" b.Uniform.array_name;
      check "A class has both refs" 2 (List.length a.Uniform.refs)
  | _ -> Alcotest.fail "expected two classes");
  checkb "write detected" true
    (Uniform.has_write (List.hd classes))

(* ------------------------------------------------------------------ *)
(* Spread vectors                                                      *)
(* ------------------------------------------------------------------ *)

let spread_cls offsets =
  let g = [ [ 1; 0 ]; [ 0; 1 ] ] in
  let refs = List.map (fun o -> Reference.read "A" (aff g o)) offsets in
  {
    Uniform.array_name = "A";
    g = Imat.of_rows g;
    refs;
    offsets = List.map (fun o -> Ivec.of_list o) offsets;
  }

let test_spread () =
  (* Example 8's B class has spread (2,3,4); here a 2-D variant. *)
  let cls = spread_cls [ [ -1; 0 ]; [ 0; 1 ]; [ 1; -2 ] ] in
  Alcotest.(check (array int)) "max-min" [| 2; 3 |] (Uniform.spread cls)

let test_cumulative_spread () =
  (* Footnote 2: sum of |offset - median| per dimension. *)
  let cls = spread_cls [ [ -1; 0 ]; [ 0; 1 ]; [ 1; -2 ] ] in
  (* dim 0: offsets -1,0,1, median 0 -> 2; dim 1: -2,0,1, median 0 -> 3. *)
  Alcotest.(check (array int))
    "cumulative" [| 2; 3 |]
    (Uniform.cumulative_spread cls);
  (* Four references make the two spreads differ. *)
  let cls4 = spread_cls [ [ 0; 0 ]; [ 1; 0 ]; [ 2; 0 ]; [ 3; 0 ] ] in
  Alcotest.(check (array int)) "max-min 4 refs" [| 3; 0 |] (Uniform.spread cls4);
  (* median (lower) = 1: |0-1|+|1-1|+|2-1|+|3-1| = 4. *)
  Alcotest.(check (array int))
    "cumulative 4 refs" [| 4; 0 |]
    (Uniform.cumulative_spread cls4)

(* ------------------------------------------------------------------ *)
(* Theorem 1 conditions                                                *)
(* ------------------------------------------------------------------ *)

let test_theorem1_condition () =
  checkb "unimodular qualifies" true
    (Size.theorem1_applies (Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ]));
  checkb "det -2 does not" false
    (Size.theorem1_applies (Imat.of_rows [ [ 1; 1 ]; [ 1; -1 ] ]))

(* ------------------------------------------------------------------ *)
(* Reduction pipeline (3.4.1)                                          *)
(* ------------------------------------------------------------------ *)

let test_reduce_example7 () =
  (* A[i, 2i, i+j]: keep columns 0 and 2; the reduced G is unimodular. *)
  let g = Imat.of_rows [ [ 1; 2; 1 ]; [ 0; 0; 1 ] ] in
  let red = Size.reduce ~g ~spread:[| 0; 0; 0 |] in
  Alcotest.(check (list int)) "kept cols" [ 0; 2 ] red.Size.kept_cols;
  checkb "full row rank" true red.Size.full_row_rank;
  checkb "reduced unimodular" true (Imat.is_unimodular red.Size.g_reduced)

let test_reduce_zero_rows () =
  (* A[i,k] in a triple nest: row j drops out. *)
  let g = Imat.of_rows [ [ 1; 0 ]; [ 0; 0 ]; [ 0; 1 ] ] in
  let red = Size.reduce ~g ~spread:[| 0; 0 |] in
  Alcotest.(check (list int)) "kept rows" [ 0; 2 ] red.Size.kept_rows;
  checkb "full row rank after drop" true red.Size.full_row_rank

let test_reduce_projection () =
  (* A[i+j]: rows dependent even after reduction. *)
  let g = Imat.of_rows [ [ 1 ]; [ 1 ] ] in
  let red = Size.reduce ~g ~spread:[| 0 |] in
  checkb "not full row rank" false red.Size.full_row_rank

(* ------------------------------------------------------------------ *)
(* Rectangular sizes vs exhaustive enumeration                         *)
(* ------------------------------------------------------------------ *)

let exact_single lambda g =
  let iters = Exact.rect_tile_iterations ~lambda in
  Exact.footprint_size ~iterations:iters
    (Affine.make g (Ivec.zero (Imat.cols g)))

let test_rect_single_identity () =
  let g = Imat.identity 2 in
  check "4x5 box" 20 (Size.rect_single ~lambda:[| 3; 4 |] ~g);
  check "matches enumeration" (exact_single [| 3; 4 |] g)
    (Size.rect_single ~lambda:[| 3; 4 |] ~g)

let test_rect_single_nonsingular () =
  (* Example 2's B: one-to-one, so footprint = tile points. *)
  let g = Imat.of_rows [ [ 1; 1 ]; [ 1; -1 ] ] in
  check "size is box size" 20 (Size.rect_single ~lambda:[| 3; 4 |] ~g);
  check "matches enumeration" (exact_single [| 3; 4 |] g)
    (Size.rect_single ~lambda:[| 3; 4 |] ~g)

let test_rect_single_projection () =
  (* A[i+j] over 0..3 x 0..4: values 0..7, i.e. 8 elements. *)
  let g = Imat.of_rows [ [ 1 ]; [ 1 ] ] in
  check "A[i+j]" 8 (Size.rect_single ~lambda:[| 3; 4 |] ~g);
  check "matches enumeration" (exact_single [| 3; 4 |] g)
    (Size.rect_single ~lambda:[| 3; 4 |] ~g);
  (* A[2i+2j]: same count, sparser values. *)
  let g2 = Imat.of_rows [ [ 2 ]; [ 2 ] ] in
  check "A[2i+2j]" (exact_single [| 3; 4 |] g2)
    (Size.rect_single ~lambda:[| 3; 4 |] ~g:g2)

let test_rect_single_zero_g () =
  let g = Imat.of_rows [ [ 0 ]; [ 0 ] ] in
  check "constant reference touches one element" 1
    (Size.rect_single ~lambda:[| 3; 4 |] ~g)

let test_rect_cumulative_example2 () =
  (* The headline numbers: 104 for 100x1 column tiles, 140 for 10x10. *)
  let g = Imat.of_rows [ [ 1; 1 ]; [ 1; -1 ] ] in
  let spread = [| 4; 4 |] in
  check "column tile" 104
    (Size.rect_cumulative ~exact:false ~lambda:[| 99; 0 |] ~g ~spread);
  check "square tile" 140
    (Size.rect_cumulative ~exact:false ~lambda:[| 9; 9 |] ~g ~spread)

let test_rect_cumulative_exact_vs_brute () =
  let g = Imat.of_rows [ [ 1; 1 ]; [ 1; -1 ] ] in
  let r1 = Affine.make g [| 0; -1 |] and r2 = Affine.make g [| 4; 3 |] in
  let lambda = [| 9; 9 |] in
  let iters = Exact.rect_tile_iterations ~lambda in
  let brute = Exact.cumulative_footprint_size ~iterations:iters [ r1; r2 ] in
  check "lemma-3 exact equals brute force" brute
    (Size.rect_cumulative ~exact:true ~lambda ~g ~spread:[| 4; 4 |])

let test_rect_cumulative_exact_rank_deficient () =
  (* Regression, found by the differential fuzzer's exhaustive probe:
     with a rank-deficient reduced G the exact:true engine used to fall
     back to the Theorem 4 linearization, which is badly wrong at
     degenerate tiles.  A trip-count-1 tile (lambda = 0) with two
     coinciding references through G = [[2],[-2]] touches exactly 1
     element, yet the linearized form reported 3; offsets one apart
     reported up to 7 for a true union of 2. *)
  let g = Imat.of_rows [ [ 2 ]; [ -2 ] ] in
  let check_pair o1 o2 lambda =
    let r1 = Affine.make g o1 and r2 = Affine.make g o2 in
    let iters = Exact.rect_tile_iterations ~lambda in
    let brute = Exact.cumulative_footprint_size ~iterations:iters [ r1; r2 ] in
    let spread = Array.map abs (Array.map2 ( - ) o2 o1) in
    check
      (Printf.sprintf "G=[[2],[-2]] o1=%d o2=%d lambda=(%d,%d)" o1.(0) o2.(0)
         lambda.(0) lambda.(1))
      brute
      (Size.rect_cumulative ~exact:true ~lambda ~g ~spread)
  in
  (* zero spread on a single-iteration tile: must equal the single
     footprint of 1 *)
  check_pair [| -2 |] [| -2 |] [| 0; 0 |];
  (* lattice-intersecting translate, still one iteration *)
  check_pair [| 0 |] [| 2 |] [| 0; 0 |];
  (* and on a small non-degenerate tile *)
  check_pair [| 0 |] [| 2 |] [| 2; 1 |];
  (* zero spread must always agree with rect_single, rank-deficient or
     not *)
  let g2 = Imat.of_rows [ [ 2; 2 ]; [ 2; 2 ] ] in
  check "spread 0 equals single (rank-1 2x2)"
    (Size.rect_single ~lambda:[| 0; 2 |] ~g:g2)
    (Size.rect_cumulative ~exact:true ~lambda:[| 0; 2 |] ~g:g2
       ~spread:[| 0; 0 |])

let test_rect_cumulative_poly_examples () =
  let names = [| "xi"; "xj"; "xk" |] in
  let pname k = names.(k) in
  (* Example 8. *)
  let p8 =
    Size.rect_cumulative_poly ~nesting:3 ~g:(Imat.identity 3)
      ~spread:[| 2; 3; 4 |]
  in
  Alcotest.(check string)
    "example 8 polynomial" "xi*xj*xk + 2*xj*xk + 3*xi*xk + 4*xi*xj"
    (Mpoly.to_string ~names:pname p8);
  (* Example 10, class B: (Li+1)(Lj+1) + 3(Lj+1) + (Li+1). *)
  let p10 =
    Size.rect_cumulative_poly ~nesting:2
      ~g:(Imat.of_rows [ [ 1; 1 ]; [ 1; -1 ] ])
      ~spread:[| 4; 2 |]
  in
  Alcotest.(check string)
    "example 10 B polynomial" "xi*xj + 3*xj + xi"
    (Mpoly.to_string ~names:pname p10);
  (* Example 10, class C (singular G, columns 0 and 2 kept):
     (Li+1)(Lj+1) + (Li+1). *)
  let pc =
    Size.rect_cumulative_poly ~nesting:2
      ~g:(Imat.of_rows [ [ 1; 2; 1 ]; [ 0; 0; 2 ] ])
      ~spread:[| 0; 0; 2 |]
  in
  Alcotest.(check string)
    "example 10 C polynomial" "xi*xj + xi"
    (Mpoly.to_string ~names:pname pc)

let test_lattice_spread_sharper () =
  (* Found by the random-nest property hunt: B[i+2, i+j-2] and B[i, i+j]
     have data-space spread (2,2) whose lattice coordinates (2,0) miss
     the true translation (2,-4); Definition 8's formula then
     under-counts.  The lattice-coordinate spread fixes it. *)
  let g = Imat.of_rows [ [ 1; 1 ]; [ 0; 1 ] ] in
  let offsets = [ [| 2; -2 |]; [| 0; 0 |] ] in
  (match Size.lattice_spread ~g ~offsets with
  | None -> Alcotest.fail "full-rank case"
  | Some u ->
      Alcotest.check rat "u0" (Rat.of_int 2) u.(0);
      Alcotest.check rat "u1" (Rat.of_int 4) u.(1));
  let poly = Size.rect_cumulative_poly_class ~nesting:2 ~g ~offsets in
  Alcotest.(check string)
    "sharper polynomial" "x0*x1 + 2*x1 + 4*x0"
    (Mpoly.to_string poly);
  (* The Definition 8 path gives the smaller (under-counting) value. *)
  let paper =
    Size.rect_cumulative_poly ~nesting:2 ~g ~spread:[| 2; 2 |]
  in
  Alcotest.(check string)
    "paper polynomial" "x0*x1 + 2*x1"
    (Mpoly.to_string paper);
  (* Ground truth sides with the lattice-coordinate spread. *)
  let lambda = [| 6; 6 |] in
  let iters = Exact.rect_tile_iterations ~lambda in
  let exact =
    Exact.cumulative_footprint_size ~iterations:iters
      [ Affine.make g [| 2; -2 |]; Affine.make g [| 0; 0 |] ]
  in
  let at poly = Rat.floor (Mpoly.eval_int poly [| 7; 7 |]) in
  checkb "lattice spread bounds truth" true (at poly >= exact);
  checkb "paper spread underestimates" true (at paper < exact)

let test_lattice_spread_matches_paper_examples () =
  (* On every worked example the two spreads coincide. *)
  List.iter
    (fun (g_rows, offsets, expect) ->
      let g = Imat.of_rows g_rows in
      match Size.lattice_spread ~g ~offsets with
      | None -> Alcotest.fail "expected full rank"
      | Some u ->
          Alcotest.(check (list string))
            "coords" expect
            (List.map Rat.to_string (Array.to_list u)))
    [
      (* Example 10 B: u = (3,1). *)
      ( [ [ 1; 1 ]; [ 1; -1 ] ],
        [ [| 0; 0 |]; [| 4; 2 |] ],
        [ "3"; "1" ] );
      (* Example 2 B: u = (4,0). *)
      ( [ [ 1; 1 ]; [ 1; -1 ] ],
        [ [| 0; -1 |]; [| 4; 3 |] ],
        [ "4"; "0" ] );
      (* Example 8 B: u = spread = (2,3,4). *)
      ( [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ],
        [ [| -1; 0; 1 |]; [| 0; 1; 0 |]; [| 1; -2; -3 |] ],
        [ "2"; "3"; "4" ] );
    ]

let test_rect_traffic_poly () =
  let t =
    Size.rect_traffic_poly ~nesting:3 ~g:(Imat.identity 3)
      ~spread:[| 2; 3; 4 |]
  in
  Alcotest.(check string)
    "figure 9 traffic" "2*x1*x2 + 3*x0*x2 + 4*x0*x1"
    (Mpoly.to_string t)

(* ------------------------------------------------------------------ *)
(* Parallelepiped sizes (Equation 2 / Theorem 2)                       *)
(* ------------------------------------------------------------------ *)

let qmat_of_int_rows rows = Qmat.of_imat (Imat.of_rows rows)

let test_pped_single_example6 () =
  (* Example 6: L = [[L1,L1],[L2,0]], G = [[1,0],[1,1]]: |det LG| = L1 L2. *)
  let l = qmat_of_int_rows [ [ 10; 10 ]; [ 5; 0 ] ] in
  let g = Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  Alcotest.check rat "L1*L2" (Rat.of_int 50) (Size.pped_single ~l ~g)

let test_pped_cumulative_example6 () =
  (* Cumulative with spread (1,2): |det LG| + |det (row1 -> a)| +
     |det (row2 -> a)|. *)
  let l = qmat_of_int_rows [ [ 10; 10 ]; [ 5; 0 ] ] in
  let g = Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  (* LG = [[20,10],[5,0]]; replacing rows by (1,2):
     |det[[1,2],[5,0]]| = 10; |det[[20,10],[1,2]]| = 30. *)
  Alcotest.check rat "theorem 2 value" (Rat.of_int 90)
    (Size.pped_cumulative ~l ~g ~spread:[| 1; 2 |])

let test_pped_unsupported () =
  (* A[i+j]: rank 1 < nesting 2. *)
  let l = qmat_of_int_rows [ [ 10; 0 ]; [ 0; 10 ] ] in
  let g = Imat.of_rows [ [ 1 ]; [ 1 ] ] in
  checkb "raises Unsupported" true
    (try
       ignore (Size.pped_single ~l ~g);
       false
     with Size.Unsupported _ -> true)

let test_pped_float_matches_exact () =
  let g = Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  let l = [| [| 10.0; 10.0 |]; [| 5.0; 0.0 |] |] in
  let v = Size.pped_cumulative_float ~l ~g ~spread:[| 1; 2 |] in
  Alcotest.(check (float 1e-6)) "float engine agrees" 90.0 v

let test_pped_terms_symbolic () =
  (* Example 9's B class: G = I, spread (2,1).  Theorem 2's terms over a
     generic L must be det L, det[[2,1],[L21,L22]], det[[L11,L12],[2,1]]. *)
  let terms =
    Size.pped_terms_symbolic ~nesting:2 ~g:(Imat.identity 2)
      ~spread:[| 2; 1 |]
  in
  let names = Pmat.entry_names 2 in
  Alcotest.(check (list string))
    "paper's three determinants"
    [ "-L12*L21 + L11*L22"; "2*L22 - L21"; "-2*L12 + L11" ]
    (List.map (Mpoly.to_string ~names) terms);
  (* Evaluating the symbolic terms at a concrete L reproduces the
     numeric Theorem 2 value. *)
  let env = Array.map Rat.of_int [| 10; 0; 0; 5 |] in
  let total =
    List.fold_left
      (fun acc p -> Rat.add acc (Rat.abs (Mpoly.eval p env)))
      Rat.zero terms
  in
  let numeric =
    Size.pped_cumulative
      ~l:(Qmat.of_rows Rat.[ [ of_int 10; zero ]; [ zero; of_int 5 ] ])
      ~g:(Imat.identity 2) ~spread:[| 2; 1 |]
  in
  Alcotest.check rat "sum of |terms| = Theorem 2" numeric total

let test_float_det () =
  Alcotest.(check (float 1e-9))
    "2x2" (-2.0)
    (Size.float_det [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  Alcotest.(check (float 1e-9))
    "singular" 0.0
    (Size.float_det [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |])

(* ------------------------------------------------------------------ *)
(* General-G closed forms (Section 3.8)                                *)
(* ------------------------------------------------------------------ *)

let brute_linear_form coeffs lambda =
  let n = Array.length coeffs in
  let seen = Hashtbl.create 64 in
  let rec go k acc =
    if k = n then Hashtbl.replace seen acc ()
    else
      for x = 0 to lambda.(k) do
        go (k + 1) (acc + (coeffs.(k) * x))
      done
  in
  go 0 0;
  Hashtbl.length seen

let test_general_two_var () =
  (* A[i+j]: all of 0..l1+l2. *)
  check "i+j" 8 (General.count_linear_form_2 ~a:1 ~b:1 ~l1:3 ~l2:4);
  (* A[2i+2j]: same count, scaled values. *)
  check "2i+2j" 8 (General.count_linear_form_2 ~a:2 ~b:2 ~l1:3 ~l2:4);
  (* A[5i] with j unused. *)
  check "5i" 4 (General.count_linear_form_2 ~a:5 ~b:0 ~l1:3 ~l2:9);
  (* Disjoint runs: 5x + y with y in 0..1 leaves gaps. *)
  check "5i+j gaps" (brute_linear_form [| 5; 1 |] [| 3; 1 |])
    (General.count_linear_form_2 ~a:5 ~b:1 ~l1:3 ~l2:1);
  (* Negative coefficients count like positive ones. *)
  check "negatives" (General.count_linear_form_2 ~a:2 ~b:3 ~l1:4 ~l2:5)
    (General.count_linear_form_2 ~a:(-2) ~b:3 ~l1:4 ~l2:5)

let test_general_three_var () =
  List.iter
    (fun (coeffs, lambda) ->
      check
        (Printf.sprintf "form %s"
           (String.concat "," (List.map string_of_int (Array.to_list coeffs))))
        (brute_linear_form coeffs lambda)
        (General.count_linear_form ~coeffs ~lambda))
    [
      ([| 1; 2; 3 |], [| 3; 4; 5 |]);
      ([| 2; 4; 6 |], [| 3; 4; 5 |]);
      ([| 7; 3; 1 |], [| 2; 2; 8 |]);
      ([| 5; 5; 5 |], [| 2; 3; 4 |]);
      ([| 1; -1; 2 |], [| 4; 4; 4 |]);
      ([| 9; 6; 4 |], [| 3; 3; 3 |]);
    ]

let test_general_memoized () =
  let before = General.memo_stats () in
  let c = [| 3; 5; 7 |] and l = [| 6; 6; 6 |] in
  let v1 = General.count_linear_form ~coeffs:c ~lambda:l in
  let v2 = General.count_linear_form ~coeffs:c ~lambda:l in
  check "stable" v1 v2;
  checkb "table grew" true (General.memo_stats () >= before)

let test_general_rect_single () =
  (* A[i+j, 2i+2j]: rank 1, two columns. *)
  let g = Imat.of_rows [ [ 1; 2 ]; [ 1; 2 ] ] in
  (match General.rect_single ~lambda:[| 3; 4 |] ~g with
  | Some n -> check "rank-1 exact" (exact_single [| 3; 4 |] g) n
  | None -> Alcotest.fail "rank-1 case should be handled");
  (* Full-rank G is outside this module's domain. *)
  checkb "declines full rank" true
    (General.rect_single ~lambda:[| 3; 4 |] ~g:(Imat.identity 2) = None);
  (* Size.rect_single now routes rank-1 projections here: a 3-nest
     A[i+2j+3k] stays exact even for large tiles. *)
  let g3 = Imat.of_rows [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  check "large tile exact"
    (General.count_linear_form ~coeffs:[| 1; 2; 3 |]
       ~lambda:[| 150; 150; 150 |])
    (Size.rect_single ~lambda:[| 150; 150; 150 |] ~g:g3)

let prop_general_matches_brute =
  QCheck2.Test.make ~name:"count_linear_form = brute force" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 3) (int_range (-6) 6))
        (list_size (return 3) (int_range 0 5)))
    (fun (coeffs, lambda) ->
      let n = List.length coeffs in
      let coeffs = Array.of_list coeffs in
      let lambda = Array.of_list (List.filteri (fun i _ -> i < n) lambda) in
      QCheck2.assume (Array.length lambda = n);
      General.count_linear_form ~coeffs ~lambda
      = brute_linear_form coeffs lambda)

let prop_general_2var_matches_brute =
  QCheck2.Test.make ~name:"count_linear_form_2 = brute force" ~count:500
    QCheck2.Gen.(
      quad (int_range (-9) 9) (int_range (-9) 9) (int_range 0 12)
        (int_range 0 12))
    (fun (a, b, l1, l2) ->
      General.count_linear_form_2 ~a ~b ~l1 ~l2
      = brute_linear_form [| a; b |] [| l1; l2 |])

(* ------------------------------------------------------------------ *)
(* Exact enumeration engine                                            *)
(* ------------------------------------------------------------------ *)

let test_pped_tile_iterations () =
  (* Unit square has 4 lattice points (closed parallelepiped). *)
  let l = Imat.of_rows [ [ 1; 0 ]; [ 0; 1 ] ] in
  check "closed unit square" 4 (List.length (Exact.pped_tile_iterations ~l));
  (* Example 6's skewed tile. *)
  let l2 = Imat.of_rows [ [ 2; 2 ]; [ 3; 0 ] ] in
  let pts = Exact.pped_tile_iterations ~l:l2 in
  (* |det| = 6; closed boundary adds points. *)
  checkb "at least det points" true (List.length pts >= 6)

let test_nest_unique_elements () =
  let open Dsl in
  let i = var 0 and j = var 1 in
  let n =
    nest [ doall "i" 0 3; doall "j" 0 3 ]
      [ write "A" [ i; j ]; read "B" [ i; j ]; read "B" [ i + int 1; j ] ]
  in
  let u = Exact.nest_unique_elements n in
  check "A unique" 16 (List.assoc "A" u);
  check "B unique" 20 (List.assoc "B" u)

(* ------------------------------------------------------------------ *)
(* Properties: closed forms vs enumeration on random inputs            *)
(* ------------------------------------------------------------------ *)

let gen_nonsing_2 =
  QCheck2.Gen.(
    map
      (fun (a, b, c, d) ->
        let m = Imat.of_rows [ [ a; b ]; [ c; d ] ] in
        if Imat.det m = 0 then Imat.identity 2 else m)
      (quad (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3)
         (int_range (-3) 3)))

let prop_rect_single_matches_enum =
  QCheck2.Test.make ~name:"rect_single = enumeration (nonsingular G)"
    ~count:200
    QCheck2.Gen.(pair gen_nonsing_2 (pair (int_range 0 5) (int_range 0 5)))
    (fun (g, (l0, l1)) ->
      Size.rect_single ~lambda:[| l0; l1 |] ~g = exact_single [| l0; l1 |] g)

let prop_rect_single_projection_enum =
  QCheck2.Test.make ~name:"rect_single = enumeration (projection G)"
    ~count:200
    QCheck2.Gen.(
      triple
        (pair (int_range (-3) 3) (int_range (-3) 3))
        (int_range 0 6) (int_range 0 6))
    (fun ((a, b), l0, l1) ->
      QCheck2.assume (a <> 0 || b <> 0);
      let g = Imat.of_rows [ [ a ]; [ b ] ] in
      Size.rect_single ~lambda:[| l0; l1 |] ~g = exact_single [| l0; l1 |] g)

let prop_exact_cumulative_matches_brute =
  QCheck2.Test.make
    ~name:"rect_cumulative exact = brute force (intersecting pair)"
    ~count:200
    QCheck2.Gen.(
      triple gen_nonsing_2
        (pair (int_range 0 4) (int_range 0 4))
        (pair (int_range 0 3) (int_range 0 3)))
    (fun (g, (l0, l1), (u0, u1)) ->
      (* Construct the translate on the lattice so the class genuinely
         intersects, like a real uniformly intersecting set. *)
      let spread = Imat.mul_row [| u0; u1 |] g in
      QCheck2.assume (Array.for_all2 (fun s _ -> s >= 0) spread spread);
      let lambda = [| l0; l1 |] in
      let r1 = Affine.make g [| 0; 0 |] in
      let r2 = Affine.make g spread in
      let iters = Exact.rect_tile_iterations ~lambda in
      let brute =
        Exact.cumulative_footprint_size ~iterations:iters [ r1; r2 ]
      in
      Size.rect_cumulative ~exact:true ~lambda ~g ~spread = brute)

let prop_thm4_approx_close =
  QCheck2.Test.make
    ~name:"Theorem 4 approximation within additive cross terms" ~count:200
    QCheck2.Gen.(
      triple gen_nonsing_2
        (pair (int_range 2 6) (int_range 2 6))
        (pair (int_range 0 2) (int_range 0 2)))
    (fun (g, (l0, l1), (u0, u1)) ->
      let spread = Imat.mul_row [| u0; u1 |] g in
      let lambda = [| l0; l1 |] in
      let approx =
        Size.rect_cumulative ~exact:false ~lambda ~g ~spread
      in
      let exact = Size.rect_cumulative ~exact:true ~lambda ~g ~spread in
      (* Thm 4 drops the product of the u_i: overshoot is at most
         u0*u1 + rounding. *)
      approx >= exact && approx - exact <= (abs u0 * abs u1) + 1)

let prop_pped_volume_scales =
  QCheck2.Test.make ~name:"pped volume scales linearly in each row"
    ~count:200 gen_nonsing_2 (fun g ->
      let l = Qmat.of_imat (Imat.of_rows [ [ 4; 0 ]; [ 0; 5 ] ]) in
      let l2 = Qmat.of_imat (Imat.of_rows [ [ 8; 0 ]; [ 0; 5 ] ]) in
      let s1 = Size.pped_single ~l ~g and s2 = Size.pped_single ~l:l2 ~g in
      Rat.equal s2 (Rat.mul (Rat.of_int 2) s1))

(* Random reference lists: the classification must be a partition into
   pairwise uniformly intersecting sets, maximal in the sense that a
   reference never intersects a same-array class it was kept out of. *)
let gen_ref_list =
  QCheck2.Gen.(
    let gen_g =
      oneofl
        [
          [ [ 1; 0 ]; [ 0; 1 ] ];
          [ [ 2; 0 ]; [ 0; 1 ] ];
          [ [ 1; 1 ]; [ 1; -1 ] ];
          [ [ 2; 0 ]; [ 0; 2 ] ];
          [ [ 1; 0 ]; [ 1; 1 ] ];
        ]
    in
    let gen_ref =
      map3
        (fun name g (o1, o2) ->
          Reference.read name (aff g [ o1; o2 ]))
        (oneofl [ "A"; "B" ])
        gen_g
        (pair (int_range (-3) 3) (int_range (-3) 3))
    in
    list_size (int_range 1 7) gen_ref)

let prop_classify_partition =
  QCheck2.Test.make ~name:"classify partitions the references" ~count:200
    gen_ref_list (fun refs ->
      let classes = Uniform.classify refs in
      let total =
        List.fold_left (fun acc c -> acc + List.length c.Uniform.refs) 0 classes
      in
      total = List.length refs)

let prop_classify_classes_cohere =
  QCheck2.Test.make ~name:"classes are pairwise uniformly intersecting"
    ~count:200 gen_ref_list (fun refs ->
      let classes = Uniform.classify refs in
      List.for_all
        (fun c ->
          List.for_all
            (fun (r : Reference.t) ->
              List.for_all
                (fun (s : Reference.t) ->
                  Uniform.uniformly_intersecting r.Reference.index
                    s.Reference.index)
                c.Uniform.refs)
            c.Uniform.refs)
        classes)

let prop_classify_maximal =
  QCheck2.Test.make ~name:"classes do not split intersecting refs"
    ~count:200 gen_ref_list (fun refs ->
      let classes = Uniform.classify refs in
      (* Any two same-array classes with equal G must be mutually
         non-intersecting (otherwise they should have merged). *)
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.for_all
        (fun (c1, c2) ->
          (not
             (c1.Uniform.array_name = c2.Uniform.array_name
             && Matrixkit.Imat.equal c1.Uniform.g c2.Uniform.g))
          ||
          match (c1.Uniform.refs, c2.Uniform.refs) with
          | r :: _, s :: _ ->
              not
                (Uniform.uniformly_intersecting r.Reference.index
                   s.Reference.index)
          | _ -> true)
        (pairs classes))

let prop_class_poly_bounds_union =
  (* The central guarantee of the lattice-coordinate spread: the class
     polynomial bounds the exact union for any pair of intersecting
     references, including the skewed mixed-sign cases where the
     Definition 8 spread under-counts. *)
  QCheck2.Test.make ~name:"class polynomial bounds the exact union"
    ~count:300
    QCheck2.Gen.(
      triple
        (oneofl
           [
             [ [ 1; 0 ]; [ 0; 1 ] ];
             [ [ 1; 1 ]; [ 0; 1 ] ];
             [ [ 1; 1 ]; [ 1; -1 ] ];
             [ [ 2; 1 ]; [ 0; 1 ] ];
             [ [ 1; 0 ]; [ 1; 1 ] ];
           ])
        (pair (int_range 0 4) (int_range (-4) 4))
        (pair (int_range 2 7) (int_range 2 7)))
    (fun (g_rows, (u0, u1), (x0, x1)) ->
      let g = Imat.of_rows g_rows in
      (* Construct an on-lattice translation so the pair is a genuine
         uniformly intersecting class. *)
      let delta = Imat.mul_row [| u0; u1 |] g in
      let offsets = [ [| 0; 0 |]; delta ] in
      let poly = Size.rect_cumulative_poly_class ~nesting:2 ~g ~offsets in
      let lambda = [| x0 - 1; x1 - 1 |] in
      let iters = Exact.rect_tile_iterations ~lambda in
      let exact =
        Exact.cumulative_footprint_size ~iterations:iters
          [ Affine.make g [| 0; 0 |]; Affine.make g delta ]
      in
      Rat.floor (Mpoly.eval_int poly [| x0; x1 |]) >= exact)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_class_poly_bounds_union;
      prop_classify_partition;
      prop_classify_classes_cohere;
      prop_classify_maximal;
      prop_rect_single_matches_enum;
      prop_rect_single_projection_enum;
      prop_exact_cumulative_matches_brute;
      prop_thm4_approx_close;
      prop_pped_volume_scales;
      prop_general_matches_brute;
      prop_general_2var_matches_brute;
    ]

let () =
  Alcotest.run "footprint"
    [
      ( "classification",
        [
          Alcotest.test_case "intersecting basics" `Quick
            test_intersecting_basic;
          Alcotest.test_case "appendix B positives" `Quick
            test_appendix_b_uniformly_intersecting;
          Alcotest.test_case "appendix B negatives" `Quick
            test_appendix_b_negative_pairs;
          Alcotest.test_case "example 10 class split" `Quick
            test_classify_example10;
          Alcotest.test_case "arrays never merge" `Quick
            test_classify_different_arrays;
          Alcotest.test_case "program order kept" `Quick
            test_classify_order_preserved;
        ] );
      ( "spread",
        [
          Alcotest.test_case "max-min spread" `Quick test_spread;
          Alcotest.test_case "cumulative spread (footnote 2)" `Quick
            test_cumulative_spread;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "theorem 1 condition" `Quick
            test_theorem1_condition;
          Alcotest.test_case "example 7 columns" `Quick test_reduce_example7;
          Alcotest.test_case "zero rows" `Quick test_reduce_zero_rows;
          Alcotest.test_case "projection detected" `Quick
            test_reduce_projection;
        ] );
      ( "rect sizes",
        [
          Alcotest.test_case "identity G" `Quick test_rect_single_identity;
          Alcotest.test_case "nonsingular G" `Quick
            test_rect_single_nonsingular;
          Alcotest.test_case "projection G" `Quick test_rect_single_projection;
          Alcotest.test_case "zero G" `Quick test_rect_single_zero_g;
          Alcotest.test_case "example 2 headline numbers" `Quick
            test_rect_cumulative_example2;
          Alcotest.test_case "lemma 3 vs brute force" `Quick
            test_rect_cumulative_exact_vs_brute;
          Alcotest.test_case "exact union for rank-deficient G" `Quick
            test_rect_cumulative_exact_rank_deficient;
          Alcotest.test_case "polynomials of examples 8/10" `Quick
            test_rect_cumulative_poly_examples;
          Alcotest.test_case "figure 9 traffic polynomial" `Quick
            test_rect_traffic_poly;
          Alcotest.test_case "lattice spread is sharper" `Quick
            test_lattice_spread_sharper;
          Alcotest.test_case "lattice spread on paper examples" `Quick
            test_lattice_spread_matches_paper_examples;
        ] );
      ( "pped sizes",
        [
          Alcotest.test_case "example 6 volume" `Quick
            test_pped_single_example6;
          Alcotest.test_case "example 6 cumulative" `Quick
            test_pped_cumulative_example6;
          Alcotest.test_case "unsupported G" `Quick test_pped_unsupported;
          Alcotest.test_case "float engine" `Quick
            test_pped_float_matches_exact;
          Alcotest.test_case "symbolic theorem 2" `Quick
            test_pped_terms_symbolic;
          Alcotest.test_case "float det" `Quick test_float_det;
        ] );
      ( "general G (3.8)",
        [
          Alcotest.test_case "two-variable closed form" `Quick
            test_general_two_var;
          Alcotest.test_case "three-variable sweep" `Quick
            test_general_three_var;
          Alcotest.test_case "lookup table" `Quick test_general_memoized;
          Alcotest.test_case "rank-1 rect_single" `Quick
            test_general_rect_single;
        ] );
      ( "exact",
        [
          Alcotest.test_case "pped tile points" `Quick
            test_pped_tile_iterations;
          Alcotest.test_case "nest unique elements" `Quick
            test_nest_unique_elements;
        ] );
      ("properties", props);
    ]
