
type loop = { var : string; lower : int; upper : int }

type t = {
  name : string;
  seq : loop option;
  loops : loop list;
  body : Reference.t list;
}

let loop var lower upper =
  if lower > upper then invalid_arg "Nest.loop: empty bounds";
  { var; lower; upper }

let make ?(name = "loop") ?seq loops body =
  if loops = [] then invalid_arg "Nest.make: no parallel loops";
  let names = List.map (fun l -> l.var) loops in
  let all_names =
    match seq with None -> names | Some s -> s.var :: names
  in
  if List.length (List.sort_uniq String.compare all_names)
     <> List.length all_names
  then invalid_arg "Nest.make: duplicate loop variable names";
  let l = List.length loops in
  List.iter
    (fun (r : Reference.t) ->
      if Affine.nesting r.Reference.index <> l then
        invalid_arg
          (Printf.sprintf
             "Nest.make: reference to %s has G with %d rows but nesting is %d"
             r.Reference.array_name
             (Affine.nesting r.Reference.index)
             l))
    body;
  { name; seq; loops; body }

let nesting t = List.length t.loops
let vars t = Array.of_list (List.map (fun l -> l.var) t.loops)
let bounds t = Array.of_list (List.map (fun l -> (l.lower, l.upper)) t.loops)
let extents t =
  Array.of_list (List.map (fun l -> l.upper - l.lower + 1) t.loops)

let iterations t =
  Array.fold_left
    (fun acc e -> Intmath.Int_math.mul_exact acc e)
    1 (extents t)

let arrays t =
  List.fold_left
    (fun acc (r : Reference.t) ->
      if List.mem r.Reference.array_name acc then acc
      else acc @ [ r.Reference.array_name ])
    [] t.body

let references_to t name =
  List.filter (fun (r : Reference.t) -> r.Reference.array_name = name) t.body

let corners t =
  let bs = bounds t in
  let rec go i acc =
    if i = Array.length bs then [ Array.of_list (List.rev acc) ]
    else
      let lo, hi = bs.(i) in
      go (i + 1) (lo :: acc) @ go (i + 1) (hi :: acc)
  in
  go 0 []

let array_bounding_boxes t =
  List.map
    (fun name ->
      let refs = references_to t name in
      let d =
        match refs with
        | [] -> 0
        | r :: _ -> Affine.dims r.Reference.index
      in
      let lo = Array.make d max_int and hi = Array.make d min_int in
      List.iter
        (fun (r : Reference.t) ->
          List.iter
            (fun corner ->
              let pt = Affine.apply r.Reference.index corner in
              Array.iteri
                (fun j v ->
                  if v < lo.(j) then lo.(j) <- v;
                  if v > hi.(j) then hi.(j) <- v)
                pt)
            (corners t))
        refs;
      (name, (lo, hi)))
    (arrays t)

let array_extent_hints t =
  List.map
    (fun (name, (lo, hi)) ->
      (name, Array.init (Array.length lo) (fun j -> hi.(j) - lo.(j) + 1)))
    (array_bounding_boxes t)

let pp ppf t =
  let var_names = vars t in
  let indent n = String.make (2 * n) ' ' in
  let level = ref 0 in
  (match t.seq with
  | Some s ->
      Format.fprintf ppf "%sDoseq (%s, %d, %d)@." (indent !level) s.var
        s.lower s.upper;
      incr level
  | None -> ());
  List.iter
    (fun l ->
      Format.fprintf ppf "%sDoall (%s, %d, %d)@." (indent !level) l.var
        l.lower l.upper;
      incr level)
    t.loops;
  let writes, reads =
    List.partition Reference.is_write_like t.body
  in
  (match (writes, reads) with
  | [ w ], _ :: _ ->
      Format.fprintf ppf "%s%a = %s@." (indent !level)
        (Reference.pp ~vars:var_names)
        w
        (String.concat " + "
           (List.map
              (fun r ->
                Format.asprintf "%a" (Reference.pp ~vars:var_names) r)
              reads))
  | _ ->
      List.iter
        (fun r ->
          Format.fprintf ppf "%s%s %a@." (indent !level)
            (Reference.kind_to_string r.Reference.kind)
            (Reference.pp ~vars:var_names)
            r)
        t.body);
  List.iter
    (fun _ ->
      decr level;
      Format.fprintf ppf "%sEndDoall@." (indent !level))
    t.loops;
  match t.seq with
  | Some _ ->
      decr level;
      Format.fprintf ppf "%sEndDoseq@." (indent !level)
  | None -> ()

let to_string t = Format.asprintf "%a" pp t
