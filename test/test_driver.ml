(* End-to-end integration tests: the full pipeline on every program of
   the gallery, plus the paper-agreement checks that tie analysis,
   optimizer, baselines and simulator together. *)

open Loopir
open Partition
open Machine
open Loopart

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_gallery_analyzes () =
  (* Every gallery program must flow through the whole pipeline. *)
  List.iter
    (fun (name, nest) ->
      let nprocs = 4 in
      let a = Driver.analyze ~nprocs nest in
      checkb
        (Printf.sprintf "%s: grid covers procs" name)
        true
        (Array.fold_left ( * ) 1 a.Driver.rect.Rectangular.grid = nprocs);
      checkb
        (Printf.sprintf "%s: report renders" name)
        true
        (String.length (Format.asprintf "%a" Driver.report a) > 0))
    Programs.all

let test_example2_end_to_end () =
  let a = Driver.analyze ~nprocs:100 (Programs.example2 ()) in
  (* The compiler picks the communication-free column partition... *)
  Alcotest.(check (array int))
    "columns" [| 100; 1 |] a.Driver.rect.Rectangular.sizes;
  (* ...RS confirms it is communication-free... *)
  checkb "rs agrees" true a.Driver.rs.Baselines.Ramanujam_sadayappan.comm_free;
  (* ...and the simulator measures exactly the predicted misses. *)
  let r = Driver.simulate a in
  Array.iter
    (fun f -> check "footprint = prediction"
        a.Driver.rect.Rectangular.predicted_misses_per_tile f)
    (Sim.footprints r);
  check "zero coherence" 0 r.Sim.stats.Stats.coherence_misses

let test_prediction_accuracy_across_gallery () =
  (* Theorem 4's estimate must stay within 35% of the measured footprint
     for interior tiles of every gallery program (boundary truncation
     makes measurements smaller, never larger). *)
  List.iter
    (fun (name, nest) ->
      match Nest.nesting nest with
      | 2 | 3 ->
          let nprocs = 4 in
          let a = Driver.analyze ~nprocs nest in
          let r = Driver.simulate ~config:{ Sim.default with Sim.seq_steps = Some 1 } a in
          let measured = Array.fold_left max 0 (Sim.footprints r) in
          let predicted = a.Driver.rect.Rectangular.predicted_misses_per_tile in
          checkb
            (Printf.sprintf "%s: prediction %d vs measured %d" name predicted
               measured)
            true
            (* Theorem 4 linearizes: it drops the positive cross terms
               (undershoots dense stencils like the 27-point one by the
               u_i*u_j corners) and ignores iteration-space boundary
               truncation (overshoots at corner tiles). *)
            (float_of_int measured <= 1.10 *. float_of_int predicted
            && float_of_int predicted <= 1.6 *. float_of_int measured)
      | _ -> ())
    Programs.all

let test_matmul_blocks_beat_rows () =
  (* The introduction's motivating claim: square blocks reuse more than
     rows/columns in matrix multiply. *)
  let nest = Programs.matmul ~n:16 () in
  let cost = Cost.of_nest nest in
  let blocks = Cost.misses_per_tile cost (Tile.rect [| 4; 4; 16 |]) in
  let rows = Cost.misses_per_tile cost (Tile.rect [| 1; 16; 16 |]) in
  checkb "blocks beat rows analytically" true (blocks < rows);
  let sim tile =
    let sched = Codegen.make nest tile ~nprocs:16 in
    (Sim.run sched Sim.default).Sim.stats.Stats.misses
  in
  checkb "blocks beat rows in simulation" true
    (sim (Tile.rect [| 4; 4; 16 |]) < sim (Tile.rect [| 1; 16; 16 |]))

let test_best_tile_prefers_improving_skew () =
  let a = Driver.analyze ~try_skewed:true ~nprocs:10 (Programs.example3 ()) in
  match a.Driver.skewed with
  | None -> Alcotest.fail "skewed engine applies to example 3"
  | Some s ->
      checkb "skew improves" true s.Skewed.improves_on_rect;
      checkb "best tile is the skewed one" true
        (Tile.equal (Driver.best_tile a) s.Skewed.tile)

let test_driver_parse_roundtrip () =
  (* Surface syntax -> full pipeline. *)
  let src =
    "doall i = 1 to 40\ndoall j = 1 to 40\nA[i,j] = B[i-1,j] + B[i+1,j]\n"
  in
  let nest = Parse.nest_of_string ~name:"parsed" src in
  let a = Driver.analyze ~nprocs:4 nest in
  (* Sharing runs along i (offsets +-1 in i): each processor takes all of
     i and a band of j, so the shared strips stay inside one tile. *)
  Alcotest.(check (array int)) "i-spanning slabs" [| 40; 10 |]
    a.Driver.rect.Rectangular.sizes

let test_simulate_aligned_runs () =
  let a = Driver.analyze ~nprocs:9 (Programs.relax_inplace ~n:19 ~steps:2 ()) in
  let r = Driver.simulate_aligned a in
  checkb "local fills on mesh" true (r.Sim.stats.Stats.local_fills > 0)

(* ------------------------------------------------------------------ *)
(* Random-nest integration properties                                  *)
(* ------------------------------------------------------------------ *)

(* Random small doubly-nested programs: a write to one array and 1-3
   reads from another, with random small-G affine subscripts. *)
let gen_nest =
  QCheck2.Gen.(
    let gen_g =
      oneofl
        [
          [ [ 1; 0 ]; [ 0; 1 ] ];
          [ [ 1; 1 ]; [ 1; -1 ] ];
          [ [ 1; 0 ]; [ 1; 1 ] ];
          [ [ 2; 0 ]; [ 0; 1 ] ];
          [ [ 1; 1 ]; [ 0; 1 ] ];
        ]
    in
    let gen_read =
      map2
        (fun g (o1, o2) ->
          Reference.read "B" (Affine.of_rows g [ o1; o2 ]))
        gen_g
        (pair (int_range (-2) 2) (int_range (-2) 2))
    in
    map2
      (fun n reads ->
        let write =
          Reference.write "A" (Affine.of_rows [ [ 1; 0 ]; [ 0; 1 ] ] [ 0; 0 ])
        in
        Nest.make ~name:"random"
          [ Nest.loop "i" 1 n; Nest.loop "j" 1 n ]
          (write :: reads))
      (int_range 8 16)
      (list_size (int_range 1 3) gen_read))

let prop_cold_misses_equal_footprints =
  QCheck2.Test.make ~name:"cold misses = sum of per-proc footprints"
    ~count:60 gen_nest (fun nest ->
      let a = Driver.analyze ~nprocs:4 nest in
      let r = Driver.simulate a in
      r.Sim.stats.Stats.cold_misses
      = Array.fold_left ( + ) 0 (Sim.footprints r))

let prop_prediction_upper_bounds_measurement =
  QCheck2.Test.make
    ~name:"Theorem 4 prediction bounds the busiest processor" ~count:60
    gen_nest (fun nest ->
      let a = Driver.analyze ~nprocs:4 nest in
      let r = Driver.simulate a in
      let measured = Array.fold_left max 0 (Sim.footprints r) in
      let predicted = a.Driver.rect.Rectangular.predicted_misses_per_tile in
      (* Boundary truncation only shrinks footprints; Theorem 4 only
         drops positive cross terms bounded by the spreads. *)
      measured <= predicted + 32)

let prop_schedule_covers_space =
  QCheck2.Test.make ~name:"schedule covers every iteration exactly once"
    ~count:60 gen_nest (fun nest ->
      let a = Driver.analyze ~nprocs:4 nest in
      let per = Codegen.iterations_by_proc (Driver.schedule a) in
      Array.fold_left (fun acc l -> acc + List.length l) 0 per
      = Nest.iterations nest)

let random_props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cold_misses_equal_footprints;
      prop_prediction_upper_bounds_measurement;
      prop_schedule_covers_space;
    ]

let () =
  Alcotest.run "driver"
    [
      ( "integration",
        [
          Alcotest.test_case "gallery analyzes" `Quick test_gallery_analyzes;
          Alcotest.test_case "example 2 end-to-end" `Quick
            test_example2_end_to_end;
          Alcotest.test_case "prediction accuracy" `Quick
            test_prediction_accuracy_across_gallery;
          Alcotest.test_case "matmul blocks vs rows" `Quick
            test_matmul_blocks_beat_rows;
          Alcotest.test_case "best tile with skew" `Quick
            test_best_tile_prefers_improving_skew;
          Alcotest.test_case "parse -> pipeline" `Quick
            test_driver_parse_roundtrip;
          Alcotest.test_case "aligned simulation" `Quick
            test_simulate_aligned_runs;
        ] );
      ("random nests", random_props);
    ]
