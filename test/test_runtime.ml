(* Tests for the multicore execution runtime: the domain pool, the
   dynamic-scheduling primitives, the footprint instruments, and - the
   point of the subsystem - agreement between what the runtime measures
   on real domains and what Machine.Sim (and Theorems 2/4) predict. *)

open Loopir
open Partition
open Loopart

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pool: barrier and dispatch                                          *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_all_domains () =
  Runtime.Pool.with_pool 4 (fun pool ->
      let hits = Array.make 4 0 in
      (* Three jobs on the same pool: domains are reused, not respawned. *)
      for _ = 1 to 3 do
        Runtime.Pool.run pool (fun p _ -> hits.(p) <- hits.(p) + 1)
      done;
      Array.iteri (fun p h -> check (Printf.sprintf "domain %d ran" p) 3 h)
        hits)

let test_pool_barrier_separates_phases () =
  (* Every domain increments a counter, waits, then reads it: after the
     barrier all must observe the full count, in every episode. *)
  Runtime.Pool.with_pool 4 (fun pool ->
      let counter = Atomic.make 0 in
      let ok = Atomic.make true in
      Runtime.Pool.run pool (fun _ barrier ->
          let sense = ref false in
          for episode = 1 to 5 do
            Atomic.incr counter;
            Runtime.Pool.Barrier.wait barrier ~sense;
            if Atomic.get counter < 4 * episode then Atomic.set ok false;
            Runtime.Pool.Barrier.wait barrier ~sense
          done);
      checkb "all phases saw the full count" true (Atomic.get ok))

let test_pool_reraises_job_exception () =
  Runtime.Pool.with_pool 3 (fun pool ->
      let raised =
        try
          Runtime.Pool.run pool (fun p barrier ->
              if p = 1 then failwith "boom"
              else Runtime.Pool.Barrier.wait barrier ~sense:(ref false));
          false
        with Failure m -> m = "boom"
      in
      checkb "worker failure reaches the caller" true raised;
      (* And the pool survives for the next job. *)
      let n = Atomic.make 0 in
      Runtime.Pool.run pool (fun _ _ -> Atomic.incr n);
      check "pool still usable" 3 (Atomic.get n))

let test_pool_first_exception_wins () =
  (* Two workers raise; run must re-raise exactly one of them (the first
     recorded) and swallow the other - never a barrier deadlock. *)
  Runtime.Pool.with_pool 4 (fun pool ->
      let raised =
        try
          Runtime.Pool.run pool (fun p barrier ->
              if p = 0 || p = 2 then failwith (Printf.sprintf "boom%d" p)
              else Runtime.Pool.Barrier.wait barrier ~sense:(ref false));
          None
        with Failure m -> Some m
      in
      (match raised with
      | Some ("boom0" | "boom2") -> ()
      | Some m -> Alcotest.failf "unexpected exception %S" m
      | None -> Alcotest.fail "no exception reached the caller");
      let n = Atomic.make 0 in
      Runtime.Pool.run pool (fun _ _ -> Atomic.incr n);
      check "pool still usable after double fault" 4 (Atomic.get n))

let test_pool_survivors_observe_abort () =
  (* Survivors parked at the barrier when a sibling dies must all wake
     with Aborted - even on an oversubscribed single-core host. *)
  Runtime.Pool.with_pool 6 (fun pool ->
      let aborted = Atomic.make 0 in
      (try
         Runtime.Pool.run pool (fun p barrier ->
             if p = 5 then failwith "die"
             else
               try
                 let sense = ref false in
                 Runtime.Pool.Barrier.wait barrier ~sense;
                 (* Unreachable: the barrier can never fill. *)
                 Runtime.Pool.Barrier.wait barrier ~sense
               with Runtime.Pool.Aborted ->
                 Atomic.incr aborted;
                 raise Runtime.Pool.Aborted)
       with Failure _ -> ());
      check "all five survivors observed Aborted" 5 (Atomic.get aborted))

let test_with_pool_shuts_down_on_exception () =
  let escaped =
    try
      Runtime.Pool.with_pool 3 (fun pool ->
          Runtime.Pool.run pool (fun _ _ -> ());
          failwith "body failed")
    with Failure m -> m = "body failed"
  in
  checkb "body exception escapes with_pool" true escaped

let test_counter_covers_range () =
  let c = Runtime.Pool.Counter.create ~total:100 in
  let seen = Array.make 100 0 in
  let rec drain () =
    match Runtime.Pool.Counter.next c ~chunk:(fun ~remaining ->
              Intmath.Int_math.ceil_div remaining 4)
    with
    | None -> ()
    | Some (lo, hi) ->
        checkb "ordered" true (lo < hi && hi <= 100);
        for i = lo to hi - 1 do
          seen.(i) <- seen.(i) + 1
        done;
        drain ()
  in
  drain ();
  Array.iter (fun s -> check "each index grabbed once" 1 s) seen;
  (* reset rewinds for the next sequential step *)
  Runtime.Pool.Counter.reset c;
  checkb "reset reopens the range" true
    (Runtime.Pool.Counter.next c ~chunk:(fun ~remaining:_ -> 1) <> None)

let test_deques_cover_and_steal () =
  let d = Runtime.Pool.Deques.create ~lengths:[| 10; 0; 6 |] in
  let seen = Hashtbl.create 16 in
  let rec drain me =
    match Runtime.Pool.Deques.pop d ~me ~chunk:4 with
    | None -> ()
    | Some (owner, lo, hi) ->
        for i = lo to hi - 1 do
          let key = (owner, i) in
          checkb "no double grab" false (Hashtbl.mem seen key);
          Hashtbl.replace seen key ()
        done;
        drain me
  in
  (* Domain 1 has an empty queue: everything it gets is stolen. *)
  drain 1;
  drain 0;
  drain 2;
  check "all items drained exactly once" 16 (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Measure: footprint counters                                         *)
(* ------------------------------------------------------------------ *)

let test_touched_exact_and_bloom () =
  let exact = Runtime.Measure.touched Runtime.Measure.Exact ~universe:1000 in
  List.iter (Runtime.Measure.touch exact) [ 3; 7; 3; 999; 7; 0 ];
  check "exact distinct count" 4 (Runtime.Measure.touched_count exact);
  checkb "exact mode" true (Runtime.Measure.is_exact exact);
  let bloom =
    Runtime.Measure.touched (Runtime.Measure.Bloom 65536) ~universe:1000
  in
  for i = 0 to 499 do
    Runtime.Measure.touch bloom (i * 2);
    Runtime.Measure.touch bloom (i * 2) (* duplicates must not count *)
  done;
  let est = Runtime.Measure.touched_count bloom in
  checkb "bloom estimate within 2%" true (abs (est - 500) <= 10);
  checkb "bloom is estimated" false (Runtime.Measure.is_exact bloom)

let test_union_count () =
  let mk l =
    let t = Runtime.Measure.touched Runtime.Measure.Exact ~universe:64 in
    List.iter (Runtime.Measure.touch t) l;
    t
  in
  check "union of overlapping sets" 5
    (Runtime.Measure.union_count [| mk [ 1; 2; 3 ]; mk [ 3; 4; 5 ] |])

(* ------------------------------------------------------------------ *)
(* Runtime vs simulator: the validation protocol                       *)
(* ------------------------------------------------------------------ *)

(* Small instances of gallery nests: the runtime's per-domain distinct
   elements must equal Machine.Sim's, domain by domain. *)
let agreement_nests =
  [
    ("example2", Programs.example2 ~n:40 ());
    ("example3", Programs.example3 ~n:24 ());
    ("matmul", Programs.matmul ~n:12 ());
    ("stencil5", Programs.stencil5 ~n:17 ~steps:2 ());
  ]

let test_runtime_agrees_with_sim () =
  List.iter
    (fun (name, nest) ->
      let a = Driver.analyze ~nprocs:4 nest in
      let v = Driver.validate a in
      checkb
        (Printf.sprintf "%s: runtime footprints = simulator footprints" name)
        true v.Runtime.Validate.footprints_agree;
      checkb (Printf.sprintf "%s: verdict ok" name) true
        (Runtime.Validate.ok v))
    agreement_nests

let test_tiled_prediction_matches_measurement () =
  (* For the interior-dominated example2 the Theorem 2 prediction is not
     just a bound: the measured per-domain footprint equals it. *)
  let a = Driver.analyze ~nprocs:4 (Programs.example2 ()) in
  let r =
    Driver.execute
      ~config:{ Driver.default_exec_config with repeats = 1 }
      a
  in
  match r.Runtime.Measure.predicted_per_domain with
  | None -> Alcotest.fail "tiled policy must carry a prediction"
  | Some predicted ->
      check "measured max footprint = Theorem 2 prediction" predicted
        (Runtime.Measure.max_footprint r)

let test_values_match_sequential () =
  let a = Driver.analyze ~nprocs:4 (Programs.example2 ~n:40 ()) in
  let v = Driver.validate a in
  checkb "race free" true v.Runtime.Validate.race_free;
  checkb "deterministic" true v.Runtime.Validate.deterministic;
  Alcotest.(check (option bool))
    "parallel values = sequential values" (Some true)
    v.Runtime.Validate.values_match

let test_reduction_contention_is_reported () =
  (* diag_accumulate writes one diagonal cell from many iterations: a
     legal shared accumulate, flagged but not a race. *)
  let nest = Programs.diag_accumulate ~n:16 () in
  let a = Driver.analyze ~nprocs:4 nest in
  let v = Driver.validate a in
  checkb "accumulates are not write races" true v.Runtime.Validate.race_free;
  checkb "contended accumulates reported" true
    (v.Runtime.Validate.shared_accumulates <> [])

let test_dynamic_policies_execute_everything () =
  let nest = Programs.example2 ~n:40 () in
  let trip = Nest.iterations nest in
  let a = Driver.analyze ~nprocs:4 nest in
  let run policy =
    Driver.execute
      ~config:{ Driver.default_exec_config with policy; repeats = 1 }
      a
  in
  (* Whatever the schedule, the union of touched elements is the same
     set - only its distribution over domains changes. *)
  let tiled_union = (run Driver.Tiled).Runtime.Measure.distinct_total in
  List.iter
    (fun policy ->
      let r = run policy in
      let executed =
        Array.fold_left
          (fun acc (d : Runtime.Measure.domain_stat) -> acc + d.iterations)
          0 r.Runtime.Measure.per_domain
      in
      check "every iteration executed exactly once" trip executed;
      check "union footprint matches the tiled run" tiled_union
        r.Runtime.Measure.distinct_total)
    [ Driver.Cyclic; Driver.Block_cyclic 7; Driver.Guided;
      Driver.Work_steal 5 ]

(* ------------------------------------------------------------------ *)
(* Codegen.load_balance regression (satellite)                         *)
(* ------------------------------------------------------------------ *)

let test_load_balance_never_nan () =
  (* More processors than iterations: min is 0, the ratio is finite. *)
  let nest = Programs.example2 ~n:3 () in
  let sched = Codegen.make nest (Tile.rect [| 1; 3 |]) ~nprocs:8 in
  let mn, mx, imb = Codegen.load_balance sched in
  check "some processor is idle" 0 mn;
  checkb "max positive" true (mx > 0);
  checkb "imbalance not NaN" false (Float.is_nan imb);
  (* imbalance = max / (total / nprocs) = 3 / (9/8) *)
  Alcotest.(check (float 1e-9)) "true ratio" (3.0 /. (9.0 /. 8.0)) imb

let () =
  Alcotest.run "runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "dispatch to all domains" `Quick
            test_pool_runs_all_domains;
          Alcotest.test_case "barrier separates phases" `Quick
            test_pool_barrier_separates_phases;
          Alcotest.test_case "job exception re-raised" `Quick
            test_pool_reraises_job_exception;
          Alcotest.test_case "first of two exceptions wins" `Quick
            test_pool_first_exception_wins;
          Alcotest.test_case "survivors observe Aborted" `Quick
            test_pool_survivors_observe_abort;
          Alcotest.test_case "with_pool shuts down on exception" `Quick
            test_with_pool_shuts_down_on_exception;
          Alcotest.test_case "counter covers range" `Quick
            test_counter_covers_range;
          Alcotest.test_case "deques cover and steal" `Quick
            test_deques_cover_and_steal;
        ] );
      ( "measure",
        [
          Alcotest.test_case "exact and bloom counters" `Quick
            test_touched_exact_and_bloom;
          Alcotest.test_case "union cardinality" `Quick test_union_count;
        ] );
      ( "validation",
        [
          Alcotest.test_case "runtime = simulator footprints" `Quick
            test_runtime_agrees_with_sim;
          Alcotest.test_case "Theorem 2 prediction = measurement" `Quick
            test_tiled_prediction_matches_measurement;
          Alcotest.test_case "values match sequential" `Quick
            test_values_match_sequential;
          Alcotest.test_case "reduction contention reported" `Quick
            test_reduction_contention_is_reported;
          Alcotest.test_case "dynamic policies execute everything" `Quick
            test_dynamic_policies_execute_everything;
        ] );
      ( "codegen regression",
        [
          Alcotest.test_case "load_balance never NaN" `Quick
            test_load_balance_never_nan;
        ] );
    ]
