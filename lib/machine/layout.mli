(** Row-major array layout: the memory map that makes cache lines longer
    than one element meaningful (the paper assumes unit lines in
    Section 2.2 and points at Abraham-Hudak for the extension; this
    module provides it).

    Each array of a nest is laid out row-major over the bounding box of
    the region its references can touch, with its base address aligned up
    to [line_align] so lines never straddle two arrays.  The {e last}
    array dimension is contiguous in memory. *)

open Matrixkit
open Loopir

type t

val of_nest : ?line_align:int -> Nest.t -> t
(** [line_align] defaults to 1 (elements); pass the line size so bases
    are line-aligned. *)

val address : t -> string -> Ivec.t -> int
(** Global element address.  Raises [Invalid_argument] for an unknown
    array or a point outside its bounding box. *)

val line : t -> line_size:int -> string -> Ivec.t -> int
(** The cache-line index holding the element: [address / line_size]. *)

val element_of : t -> int -> string * int list
(** Reverse map of {!address}. *)

val frame : t -> string -> int * int array * int array
(** [(base, lo, strides)] of an array: the address of element [p] is
    [base + sum_j (p.(j) - lo.(j)) * strides.(j)].  Exposed so an
    execution backend can fold a whole affine reference [(G, a)] into a
    single base-plus-dot-product index function. *)

val total_elements : t -> int
(** Footprint of the whole layout (sum of bounding-box volumes, plus
    alignment padding). *)

val pp : Format.formatter -> t -> unit
