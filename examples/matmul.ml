(* Matrix multiply with fine-grain synchronization (Appendix A).

   Run:  dune exec examples/matmul.exe

   The introduction's motivating claim: distributing the iteration space
   by square blocks reuses far more cached data than distributing by rows
   or columns.  This example quantifies the claim analytically (cumulative
   footprints) and on the simulated machine, including the atomic
   accumulates into C and NUMA data placement. *)

open Partition
open Machine

let n = 24
let nprocs = 16

let () =
  let nest = Loopart.Programs.matmul ~n () in
  Format.printf "%a@." Loopir.Nest.pp nest;
  let cost = Cost.of_nest nest in

  (* Candidate distributions of the (i,j,k) iteration space.  The k
     dimension is kept whole (it is the reduction direction). *)
  let candidates =
    [
      ("rows      (i split)", Tile.rect [| n / nprocs; n; n |]);
      ("columns   (j split)", Tile.rect [| n; n / nprocs; n |]);
      ( "blocks    (i,j split)",
        Tile.rect [| n / 4; n / 4; n |] );
    ]
  in
  Format.printf "%-24s %14s %14s %14s %12s@." "partition" "misses(pred)"
    "misses(sim)" "invalidations" "hops";
  List.iter
    (fun (name, tile) ->
      let predicted = Cost.misses_per_tile cost tile * nprocs in
      let sched = Codegen.make nest tile ~nprocs in
      let placement = Data_partition.aligned sched cost in
      let cfg =
        {
          Sim.default with
          Sim.topology = Sim.Mesh2d;
          placement = Some placement;
        }
      in
      let r = Sim.run sched cfg in
      Format.printf "%-24s %14d %14d %14d %12d@." name predicted
        r.Sim.stats.Stats.misses r.Sim.stats.Stats.invalidations
        r.Sim.stats.Stats.network_hops)
    candidates;

  Format.printf
    "@.Square blocks touch O(N^2/sqrt(P)) data per processor instead of \
     O(N^2): they win on every metric.@.";

  (* The partitioner reaches the same conclusion on its own. *)
  let a = Loopart.Driver.analyze ~nprocs nest in
  Format.printf "partitioner's choice: %s@."
    (Tile.to_string a.Loopart.Driver.rect.Rectangular.tile)
