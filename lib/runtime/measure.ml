type mode = Auto | Exact | Bloom of int

(* 16M elements = a 2 MiB bitset per domain: cheap enough to default. *)
let exact_limit = 1 lsl 24

let default_bloom_bits = 1 lsl 22
let bloom_hashes = 4

(* Each instrument is owned by one domain but all of them are allocated
   by the coordinating domain, back to back on the heap.  A guard region
   on both sides of the payload keeps the bytes two domains hammer from
   ever sharing a cache line, so the instrumented pass does not serialize
   on false sharing at the object boundaries. *)
let pad = 128

type touched =
  | Bitset of { bits : Bytes.t; len : int }
      (** payload is [bits.[pad .. pad+len-1]] *)
  | Filter of { bits : Bytes.t; len : int; m : int }

let padded len = Bytes.make (len + (2 * pad)) '\000'

let touched mode ~universe =
  if universe < 0 then invalid_arg "Measure.touched: negative universe";
  let bitset n =
    let len = (n + 7) / 8 in
    Bitset { bits = padded len; len }
  in
  let bloom bits =
    let bits = max 64 bits in
    let len = (bits + 7) / 8 in
    Filter { bits = padded len; len; m = len * 8 }
  in
  match mode with
  | Exact -> bitset universe
  | Bloom bits -> bloom bits
  | Auto -> if universe <= exact_limit then bitset universe else bloom default_bloom_bits

let set_bit bytes i =
  let byte = pad + (i lsr 3) and mask = 1 lsl (i land 7) in
  let old = Char.code (Bytes.unsafe_get bytes byte) in
  if old land mask = 0 then
    Bytes.unsafe_set bytes byte (Char.unsafe_chr (old lor mask))

(* Two multiplicative mixes drive [bloom_hashes] probes by double
   hashing (Kirsch-Mitzenmacher). *)
let mix1 x =
  let x = x * 0x9E3779B97F4A7C1 in
  x lxor (x lsr 29)

let mix2 x =
  let x = (x + 0x165667B19E3779F9) * 0xC2B2AE3D27D4EB5 in
  x lxor (x lsr 32)

let touch t addr =
  match t with
  | Bitset { bits; _ } -> set_bit bits addr
  | Filter { bits; m; _ } ->
      let h1 = mix1 addr and h2 = mix2 addr lor 1 in
      for i = 0 to bloom_hashes - 1 do
        let h = (h1 + (i * h2)) land max_int in
        set_bit bits (h mod m)
      done

let popcount_byte = Array.init 256 (fun b ->
    let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
    go b 0)

let ones bytes len =
  let total = ref 0 in
  for i = pad to pad + len - 1 do
    total := !total + popcount_byte.(Char.code (Bytes.unsafe_get bytes i))
  done;
  !total

let touched_count = function
  | Bitset { bits; len } -> ones bits len
  | Filter { bits; len; m } ->
      let x = ones bits len in
      if x >= m then max_int
      else
        let m = float_of_int m and x = float_of_int x in
        let est =
          -.(m /. float_of_int bloom_hashes) *. log (1.0 -. (x /. m))
        in
        int_of_float (Float.round est)

let is_exact = function Bitset _ -> true | Filter _ -> false

let bytes_of = function
  | Bitset { bits; len } -> (bits, len)
  | Filter { bits; len; _ } -> (bits, len)

let union_count ts =
  if Array.length ts = 0 then 0
  else begin
    let first, len = bytes_of ts.(0) in
    let acc = Bytes.copy first in
    Array.iteri
      (fun i t ->
        if i > 0 then begin
          let b, blen = bytes_of t in
          if blen <> len then
            invalid_arg "Measure.union_count: mismatched sets";
          for j = pad to pad + len - 1 do
            Bytes.unsafe_set acc j
              (Char.unsafe_chr
                 (Char.code (Bytes.unsafe_get acc j)
                 lor Char.code (Bytes.unsafe_get b j)))
          done
        end)
      ts;
    let merged =
      match ts.(0) with
      | Bitset _ -> Bitset { bits = acc; len }
      | Filter { m; _ } -> Filter { bits = acc; len; m }
    in
    touched_count merged
  end

type domain_stat = {
  domain : int;
  iterations : int;
  seconds : float;
  footprint : int;
}

type raw = {
  wall_seconds : float;
  seconds : float array;
  iterations : int array;
  footprints : int array;
  exact_footprints : bool;
  distinct_total : int;
  checksum : float;
}

type report = {
  name : string;
  policy : string;
  nprocs : int;
  steps : int;
  repeats : int;
  total_elements : int;
  predicted_per_domain : int option;
  per_domain : domain_stat array;
  wall_seconds : float;
  distinct_total : int;
  exact_footprints : bool;
  checksum : float;
}

let report ~name ~policy ~steps ~repeats ~total_elements ?predicted_per_domain
    (raw : raw) =
  let nprocs = Array.length raw.seconds in
  {
    name;
    policy;
    nprocs;
    steps;
    repeats;
    total_elements;
    predicted_per_domain;
    per_domain =
      Array.init nprocs (fun p ->
          {
            domain = p;
            iterations = raw.iterations.(p);
            seconds = raw.seconds.(p);
            footprint = raw.footprints.(p);
          });
    wall_seconds = raw.wall_seconds;
    distinct_total = raw.distinct_total;
    exact_footprints = raw.exact_footprints;
    checksum = raw.checksum;
  }

let max_footprint r =
  Array.fold_left (fun acc d -> max acc d.footprint) 0 r.per_domain

let mean_seconds r =
  if Array.length r.per_domain = 0 then 0.0
  else
    Array.fold_left
      (fun acc (d : domain_stat) -> acc +. d.seconds)
      0.0 r.per_domain
    /. float_of_int (Array.length r.per_domain)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>=== %s: %s on %d domain%s" r.name r.policy r.nprocs
    (if r.nprocs = 1 then "" else "s");
  if r.steps > 1 then Format.fprintf ppf ", %d sequential steps" r.steps;
  Format.fprintf ppf " (min of %d run%s) ===@," r.repeats
    (if r.repeats = 1 then "" else "s");
  Format.fprintf ppf "%-8s %12s %12s %12s@," "domain" "time (ms)" "iterations"
    (if r.exact_footprints then "footprint" else "footprint~");
  Array.iter
    (fun d ->
      Format.fprintf ppf "%-8d %12.3f %12d %12d@," d.domain
        (d.seconds *. 1000.0) d.iterations d.footprint)
    r.per_domain;
  Format.fprintf ppf "wall: %.3f ms; distinct elements touched: %d of %d@,"
    (r.wall_seconds *. 1000.0)
    r.distinct_total r.total_elements;
  (match r.predicted_per_domain with
  | Some predicted ->
      Format.fprintf ppf
        "model predicted footprint/domain: %d; measured max: %d (%.2fx)@,"
        predicted (max_footprint r)
        (if predicted = 0 then Float.nan
         else float_of_int (max_footprint r) /. float_of_int predicted)
  | None ->
      Format.fprintf ppf "no model prediction for this policy@,");
  Format.fprintf ppf "checksum: %.6g@]" r.checksum
