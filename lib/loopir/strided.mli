(** Strided loops and their normalization.

    The framework (following Section 2.1) assumes unit strides.  Real
    front ends meet that assumption with a normalization pass: a loop
    [for i = lo to hi step s] becomes [for i' = 0 to (hi-lo)/s] with
    [i = lo + s*i'] substituted into every subscript.  The substitution
    maps a reference [(G, a)] to [(S G, lo*G + a)] where [S = diag(s)] -
    which is exactly how non-unimodular [G] matrices like [A[2i]] arise
    in practice, and the footprint machinery handles them. *)

type loop = { var : string; lower : int; upper : int; step : int }
(** [step >= 1]; the index takes the values [lower, lower+step, ...]
    up to [upper]. *)

type t = {
  name : string;
  seq : loop option;
  loops : loop list;
  body : Reference.t list;
}

val loop : ?step:int -> string -> int -> int -> loop
val make : ?name:string -> ?seq:loop -> loop list -> Reference.t list -> t

val is_normalized : t -> bool
(** All steps are 1. *)

val normalize : t -> Nest.t
(** The unit-stride nest accessing exactly the same data elements. *)

val iteration_values : loop -> int list
(** The index values the loop visits (for tests). *)
