(** Integer row vectors (thin helpers over [int array]).

    The paper works with row vectors throughout ([i], [g(i)], [a] are rows);
    these helpers keep that convention readable. *)

type t = int array

val make : int -> int -> t
val zero : int -> t
val of_list : int list -> t
val to_list : t -> int list
val dim : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val dot : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val map2 : (int -> int -> int) -> t -> t -> t
val gcd : t -> int
(** Gcd of all components (0 for the zero vector). *)

val pp : Format.formatter -> t -> unit
(** Prints as [(a, b, c)]. *)

val to_string : t -> string
