open Intmath
open Matrixkit
open Loopir
open Footprint

type placement = {
  nprocs : int;
  home : string -> Ivec.t -> int;
  description : string;
}

let hash_home nprocs name (d : Ivec.t) =
  let h = Hashtbl.hash (name, Array.to_list d) in
  h mod nprocs

let round_robin ~nprocs =
  {
    nprocs;
    home = hash_home nprocs;
    description = "round-robin (hashed) element placement";
  }

let block_row ~nprocs ~rows =
  {
    nprocs;
    home =
      (fun _ d ->
        if Array.length d = 0 then 0
        else
          let r = d.(0) in
          let b = r * nprocs / max 1 rows in
          max 0 (min (nprocs - 1) b));
    description = "block distribution by first dimension (rows)";
  }

(* Anchor class for an array: prefer a class containing a write, then the
   first class in program order. *)
let anchor_class cost name =
  let classes =
    List.filter
      (fun (c : Cost.class_cost) -> c.Cost.cls.Uniform.array_name = name)
      cost.Cost.classes
  in
  match List.filter (fun c -> Uniform.has_write c.Cost.cls) classes with
  | c :: _ -> Some c
  | [] -> ( match classes with c :: _ -> Some c | [] -> None)

(* Invert the anchor reference on its reduced square part: given data
   element d, find an iteration i with i*G = d - a.  Loop dimensions the
   reference ignores are pinned to the iteration-space lower bound. *)
let inverter (schedule : Codegen.schedule) (c : Cost.class_cost) =
  let cls = c.Cost.cls in
  let g = cls.Uniform.g in
  let red = Size.reduce ~g ~spread:(Uniform.spread cls) in
  if not red.Size.full_row_rank then None
  else
    match Qmat.inv (Qmat.of_imat red.Size.g_reduced) with
    | None -> None
    | Some ginv ->
        let a =
          match cls.Uniform.offsets with
          | o :: _ -> o
          | [] -> assert false
        in
        let bounds = Nest.bounds schedule.Codegen.nest in
        let nesting = Nest.nesting schedule.Codegen.nest in
        Some
          (fun (d : Ivec.t) ->
            let d_red =
              Array.of_list
                (List.map (fun j -> d.(j) - a.(j)) red.Size.kept_cols)
            in
            let coords =
              Qmat.mul_row (Array.map Rat.of_int d_red) ginv
            in
            let i = Array.make nesting 0 in
            Array.iteri (fun k (lo, _) -> i.(k) <- lo) bounds;
            List.iteri
              (fun pos row ->
                (* Rational iterations round toward the containing tile. *)
                i.(row) <- Rat.floor coords.(pos))
              red.Size.kept_rows;
            (* Clamp into the iteration space so every element gets an
               owner even at the fringes of the footprint. *)
            Array.iteri
              (fun k (lo, hi) -> i.(k) <- max lo (min hi i.(k)))
              bounds;
            i)

let aligned schedule cost =
  let nprocs = schedule.Codegen.nprocs in
  let own = Codegen.owner schedule in
  let arrays = Nest.arrays schedule.Codegen.nest in
  let table = Hashtbl.create 8 in
  List.iter
    (fun name ->
      match anchor_class cost name with
      | None -> ()
      | Some c -> (
          match inverter schedule c with
          | None -> ()
          | Some inv -> Hashtbl.replace table name inv))
    arrays;
  {
    nprocs;
    home =
      (fun name d ->
        match Hashtbl.find_opt table name with
        | Some inv -> own (inv d)
        | None -> hash_home nprocs name d);
    description = "loop-tile aligned placement (anchor-reference inverse)";
  }

let cumulative_spread_note cost =
  List.map
    (fun (c : Cost.class_cost) ->
      (c.Cost.cls.Uniform.array_name, Uniform.cumulative_spread c.Cost.cls))
    cost.Cost.classes

let data_objective cost =
  let nesting = Nest.nesting cost.Cost.nest in
  Intmath.Mpoly.sum
    (List.map
       (fun (c : Cost.class_cost) ->
         let cls = c.Cost.cls in
         Intmath.Mpoly.scale_int c.Cost.sync_weight
           (Size.rect_cumulative_poly ~nesting ~g:cls.Uniform.g
              ~spread:(Uniform.cumulative_spread cls)))
       cost.Cost.classes)

let optimal_data_ratio cost ~nprocs =
  let nest = cost.Cost.nest in
  let extents = Nest.extents nest in
  let volume =
    float_of_int (Nest.iterations nest) /. float_of_int nprocs
  in
  let poly = data_objective cost in
  Rectangular.continuous_minimize
    (fun x -> Intmath.Mpoly.eval_float poly x)
    ~volume ~extents
