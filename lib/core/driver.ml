open Loopir
open Partition
open Machine

type analysis = {
  nest : Nest.t;
  nprocs : int;
  cost : Cost.t;
  rect : Rectangular.result;
  skewed : Skewed.result option;
  rs : Baselines.Ramanujam_sadayappan.t;
  ah : (Baselines.Abraham_hudak.result, string) result;
}

let analyze ?(try_skewed = false) ~nprocs nest =
  let cost = Cost.of_nest nest in
  let rect = Rectangular.optimize cost ~nprocs in
  let skewed = if try_skewed then Skewed.optimize cost ~nprocs else None in
  let rs = Baselines.Ramanujam_sadayappan.analyze nest in
  let ah = Baselines.Abraham_hudak.partition nest ~nprocs in
  { nest; nprocs; cost; rect; skewed; rs; ah }

let best_tile a =
  match a.skewed with
  | Some s when s.Skewed.improves_on_rect -> s.Skewed.tile
  | Some _ | None -> a.rect.Rectangular.tile

let schedule ?tile a =
  let tile = Option.value ~default:a.rect.Rectangular.tile tile in
  Codegen.make a.nest tile ~nprocs:a.nprocs

let simulate ?tile ?(config = Sim.default) a =
  Sim.run (schedule ?tile a) config

type exec_policy =
  | Tiled
  | Cyclic
  | Block_cyclic of int
  | Guided
  | Work_steal of int

type exec_config = {
  policy : exec_policy;
  repeats : int;
  steps : int option;
  footprint : Runtime.Measure.mode;
  bigarray : bool;
  kernels : bool;
  trace : Runtime.Trace.t option;
}

let default_exec_config =
  {
    policy = Tiled;
    repeats = 3;
    steps = None;
    footprint = Runtime.Measure.Auto;
    bigarray = false;
    kernels = false;
    trace = None;
  }

let trace_of config = Option.value ~default:Runtime.Trace.disabled config.trace

let policy_name = function
  | Tiled -> "compile-time tiles"
  | Cyclic -> "cyclic self-scheduling"
  | Block_cyclic c -> Printf.sprintf "block-cyclic self-scheduling (chunk %d)" c
  | Guided -> "guided self-scheduling"
  | Work_steal c -> Printf.sprintf "tiled + work stealing (chunk %d)" c

(* All iterations in lexicographic order: the stream the run-time
   schedulers grab chunks from. *)
let lex_points nest = Array.of_list (Scheduling.cyclic nest ~nprocs:1).(0)

(* The kernel path: time the specialized strided loops over the tile
   boxes, but keep the interpreter's instrumented pass (same iteration
   sets, so the footprints transfer) for the report. *)
let execute_kernels ~config ~sched a =
  let nest = a.nest in
  let per_tile = Cost.misses_per_tile a.cost sched.Codegen.tile in
  let tiles_per_proc =
    Intmath.Int_math.ceil_div (Codegen.num_tiles sched) a.nprocs
  in
  let predicted = per_tile * tiles_per_proc in
  let compiled = Runtime.Exec.compile ~bigarray:config.bigarray nest in
  let plan = Runtime.Kernel.plan compiled in
  let boxes = Runtime.Kernel.boxes_of_schedule sched in
  let work = Runtime.Exec.static_of_assignment (Scheduling.of_schedule sched) in
  let steps = Runtime.Exec.steps_of_nest ?override:config.steps nest in
  let trace = trace_of config in
  let raw =
    Runtime.Pool.with_pool a.nprocs (fun pool ->
        let wall, seconds, iterations =
          Runtime.Kernel.time ~trace pool plan ~boxes ~steps
            ~repeats:config.repeats
        in
        let inst =
          Runtime.Exec.measure pool compiled work ~steps
            ~mode:config.footprint
        in
        Array.iteri
          (fun p f ->
            Runtime.Trace.add trace p Runtime.Trace.Elements_touched f)
          inst.Runtime.Exec.footprints;
        {
          Runtime.Measure.wall_seconds = wall;
          seconds;
          iterations;
          footprints = inst.Runtime.Exec.footprints;
          exact_footprints = inst.Runtime.Exec.exact;
          distinct_total = inst.Runtime.Exec.distinct_total;
          checksum = inst.Runtime.Exec.checksum;
        })
  in
  Runtime.Measure.report ~name:nest.Nest.name
    ~policy:
      (Printf.sprintf "compile-time tiles + %s kernel"
         (Runtime.Kernel.shape plan))
    ~steps ~repeats:config.repeats
    ~total_elements:(Runtime.Exec.total_elements compiled)
    ~predicted_per_domain:predicted raw

let execute ?(config = default_exec_config) ?tile a =
  let nest = a.nest in
  let sched = schedule ?tile a in
  let kernel_capable =
    config.kernels && config.policy = Tiled
    && match sched.Codegen.tile with Tile.Rect _ -> true | Tile.Pped _ -> false
  in
  if kernel_capable then execute_kernels ~config ~sched a
  else
  let work, predicted =
    match config.policy with
    | Tiled ->
        let per_tile = Cost.misses_per_tile a.cost sched.Codegen.tile in
        let tiles_per_proc =
          Intmath.Int_math.ceil_div (Codegen.num_tiles sched) a.nprocs
        in
        let work =
          match config.trace with
          | Some tr when Runtime.Trace.enabled tr ->
              (* A traced run keeps the tile-granular work list so each
                 tile gets its own span; the untraced path stays on the
                 flattened static assignment (identical iteration order,
                 no per-tile dispatch). *)
              let p = Runtime.Resilient.tiles_of_schedule sched in
              Runtime.Exec.Tiled
                {
                  tiles = p.Runtime.Resilient.tiles;
                  owners = p.Runtime.Resilient.owners;
                }
          | Some _ | None ->
              Runtime.Exec.static_of_assignment (Scheduling.of_schedule sched)
        in
        (work, Some (per_tile * tiles_per_proc))
    | Work_steal chunk ->
        ( Runtime.Exec.queues_of_assignment
            (Scheduling.of_schedule sched)
            ~chunk,
          None )
    | Cyclic ->
        (Runtime.Exec.Dynamic
           { points = lex_points nest; chunk = (fun ~remaining:_ -> 1) },
         None)
    | Block_cyclic chunk ->
        if chunk < 1 then invalid_arg "Driver.execute: chunk < 1";
        (Runtime.Exec.Dynamic
           { points = lex_points nest; chunk = (fun ~remaining:_ -> chunk) },
         None)
    | Guided ->
        (Runtime.Exec.Dynamic
           {
             points = lex_points nest;
             chunk =
               (fun ~remaining ->
                 Intmath.Int_math.ceil_div remaining a.nprocs);
           },
         None)
  in
  let compiled = Runtime.Exec.compile ~bigarray:config.bigarray nest in
  let steps = Runtime.Exec.steps_of_nest ?override:config.steps nest in
  let raw =
    Runtime.Pool.with_pool a.nprocs (fun pool ->
        Runtime.Exec.run ~trace:(trace_of config) pool compiled work ~steps
          ~repeats:config.repeats ~mode:config.footprint)
  in
  Runtime.Measure.report ~name:nest.Nest.name
    ~policy:(policy_name config.policy)
    ~steps ~repeats:config.repeats
    ~total_elements:(Runtime.Exec.total_elements compiled)
    ?predicted_per_domain:predicted raw

let execute_resilient ?(config = default_exec_config)
    ?(resilience = Runtime.Resilient.default_config) ?plan ?tile a =
  let nest = a.nest in
  let compiled = Runtime.Exec.compile ~bigarray:config.bigarray nest in
  let steps = Runtime.Exec.steps_of_nest ?override:config.steps nest in
  let chosen = Option.value ~default:(best_tile a) tile in
  let partition ~nprocs =
    let tile =
      if nprocs = a.nprocs then chosen
      else
        (* Degraded pool: re-optimize the partition for the smaller
           machine instead of squeezing the old tile onto it. *)
        (Rectangular.optimize a.cost ~nprocs).Rectangular.tile
    in
    Runtime.Resilient.tiles_of_schedule (Codegen.make nest tile ~nprocs)
  in
  Runtime.Resilient.execute ~config:resilience ?plan ?trace:config.trace
    ~kernels:config.kernels ~compiled ~steps ~partition ~nprocs:a.nprocs ()

let validate ?tile a = Runtime.Validate.check_schedule (schedule ?tile a)

let simulate_aligned ?tile ?(geometry = Cache.Infinite) a =
  let sched = schedule ?tile a in
  let placement = Data_partition.aligned sched a.cost in
  Sim.run sched
    {
      Sim.default with
      Sim.geometry;
      topology = Sim.Mesh2d;
      placement = Some placement;
    }

let report ppf a =
  Format.fprintf ppf "@[<v>=== %s on %d processors ===@,@,%a@,@,"
    a.nest.Nest.name a.nprocs Nest.pp a.nest;
  Format.fprintf ppf "%a@,@," Cost.pp a.cost;
  Format.fprintf ppf "--- rectangular partition ---@,%a@,@,"
    Rectangular.pp_result a.rect;
  (match a.skewed with
  | Some s ->
      Format.fprintf ppf "--- parallelepiped partition ---@,%a@,@,"
        Skewed.pp_result s
  | None -> ());
  Format.fprintf ppf "--- Ramanujam-Sadayappan check ---@,%a@,@,"
    Baselines.Ramanujam_sadayappan.pp a.rs;
  (match a.ah with
  | Ok r ->
      Format.fprintf ppf "--- Abraham-Hudak baseline ---@,%a@,"
        Baselines.Abraham_hudak.pp_result r
  | Error e ->
      Format.fprintf ppf "--- Abraham-Hudak baseline: not applicable (%s)@,"
        e);
  Format.fprintf ppf "@]"
