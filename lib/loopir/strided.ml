open Matrixkit

type loop = { var : string; lower : int; upper : int; step : int }

type t = {
  name : string;
  seq : loop option;
  loops : loop list;
  body : Reference.t list;
}

let loop ?(step = 1) var lower upper =
  if step < 1 then invalid_arg "Strided.loop: step must be >= 1";
  if lower > upper then invalid_arg "Strided.loop: empty bounds";
  { var; lower; upper; step }

let make ?(name = "loop") ?seq loops body =
  if loops = [] then invalid_arg "Strided.make: no parallel loops";
  let l = List.length loops in
  List.iter
    (fun (r : Reference.t) ->
      if Affine.nesting r.Reference.index <> l then
        invalid_arg "Strided.make: reference arity mismatch")
    body;
  { name; seq; loops; body }

let is_normalized t =
  List.for_all (fun l -> l.step = 1) t.loops
  && match t.seq with Some s -> s.step = 1 | None -> true

let iteration_values l =
  List.init (((l.upper - l.lower) / l.step) + 1) (fun k ->
      l.lower + (k * l.step))

let normalize t =
  let l = List.length t.loops in
  let steps = Array.of_list (List.map (fun lp -> lp.step) t.loops) in
  let lowers = Array.of_list (List.map (fun lp -> lp.lower) t.loops) in
  let unit_loops =
    List.map
      (fun lp -> Nest.loop lp.var 0 ((lp.upper - lp.lower) / lp.step))
      t.loops
  in
  let substitute (r : Reference.t) =
    let g = Affine.g r.Reference.index in
    let g' = Imat.make l (Imat.cols g) (fun i j -> steps.(i) * Imat.get g i j) in
    let offset' =
      Ivec.add (Imat.mul_row lowers g) (Affine.offset r.Reference.index)
    in
    { r with Reference.index = Affine.make g' offset' }
  in
  let seq =
    Option.map
      (fun s -> Nest.loop s.var 0 ((s.upper - s.lower) / s.step))
      t.seq
  in
  Nest.make ~name:t.name ?seq unit_loops (List.map substitute t.body)
