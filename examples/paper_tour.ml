(* A guided tour of every worked example in the paper, printing the
   paper's claim next to what this implementation computes.

   Run:  dune exec examples/paper_tour.exe *)

open Intmath
open Matrixkit
open Loopir
open Footprint

let section title =
  Format.printf "@.=== %s ===@." title

(* ------------------------------------------------------------------ *)

let example1 () =
  section "Example 1: affine index functions";
  let f =
    Affine.of_rows
      [ [ 0; 0; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 1; 0; 0; 0 ] ]
      [ 2; 5; -1; 4 ]
  in
  Format.printf "A(i3+2, 5, i2-1, 4) as (G, a): subscripts = %a@."
    (Affine.pp ~vars:[| "i1"; "i2"; "i3" |])
    f;
  let reduced, kept = Affine.drop_constant_dims f in
  Format.printf
    "zero columns dropped (paper: treat as a lower-dimensional array): kept \
     dims %s, reduced dimension %d@."
    (String.concat "," (List.map string_of_int kept))
    (Affine.dims reduced)

let example2 () =
  section "Example 2 / Figure 3: 104 vs 140 misses per tile";
  let nest = Loopart.Programs.example2 () in
  let cost = Partition.Cost.of_nest nest in
  let col = Partition.Tile.rect [| 100; 1 |] in
  let sq = Partition.Tile.rect [| 10; 10 |] in
  let b_class =
    List.find
      (fun c -> c.Partition.Cost.cls.Uniform.array_name = "B")
      cost.Partition.Cost.classes
  in
  let b_misses tile =
    Size.rect_cumulative ~exact:false
      ~lambda:(Partition.Tile.lambda tile)
      ~g:b_class.Partition.Cost.cls.Uniform.g
      ~spread:(Uniform.spread b_class.Partition.Cost.cls)
  in
  Format.printf
    "partition (a) columns: B misses/tile = %d (paper: 104)@.partition (b) \
     squares: B misses/tile = %d (paper: 140)@."
    (b_misses col) (b_misses sq);
  let r = Partition.Rectangular.optimize cost ~nprocs:100 in
  Format.printf "optimizer chooses tile %s (partition (a))@."
    (Partition.Tile.to_string r.Partition.Rectangular.tile)

let example3 () =
  section "Example 3: parallelogram tiles beat rectangles";
  let nest = Loopart.Programs.example3 () in
  let cost = Partition.Cost.of_nest nest in
  match Partition.Skewed.optimize cost ~nprocs:10 with
  | None -> Format.printf "(engine not applicable?)@."
  | Some s ->
      Format.printf
        "best rectangular cost %.0f, parallelepiped cost %.0f -> skewing \
         internalizes the (1,3) reuse (improves: %b)@.L =@.%a@."
        s.Partition.Skewed.rect_cost s.Partition.Skewed.continuous_cost
        s.Partition.Skewed.improves_on_rect Imat.pp s.Partition.Skewed.l

let examples_4_5 () =
  section "Examples 4-5: tiles and uniformly intersecting references";
  let t = Partition.Tile.rect [| 4; 8 |] in
  Format.printf "rectangular tile: H = I, L = Lambda -> %s, |det L| = %s@."
    (Partition.Tile.to_string t)
    (Rat.to_string (Partition.Tile.volume t));
  let id = [ [ 1; 0 ]; [ 0; 1 ] ] in
  let a0 = Affine.of_rows id [ 0; 0 ] in
  let a1 = Affine.of_rows id [ 1; -3 ] in
  let a2 = Affine.of_rows [ [ 2; 0 ]; [ 0; 1 ] ] [ 0; 0 ] in
  Format.printf
    "A[i,j] ~ A[i+1,j-3]: uniformly intersecting = %b (paper: yes)@."
    (Uniform.uniformly_intersecting a0 a1);
  Format.printf "A[i,j] ~ A[2i,j]: uniformly intersecting = %b (paper: no)@."
    (Uniform.uniformly_intersecting a0 a2)

let example6 () =
  section "Example 6 / Figures 5-7: footprint of a skewed reference";
  let l = Qmat.of_rows Rat.[ [ of_int 10; of_int 10 ]; [ of_int 5; of_int 0 ] ] in
  let g = Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  Format.printf
    "L = [[L1,L1],[L2,0]] with L1=10, L2=5; G for B[i+j,j].@.|det LG| = %s \
     (paper: L1*L2 = 50, plus boundary L1+L2)@."
    (Rat.to_string (Size.pped_single ~l ~g));
  Format.printf "cumulative with spread (1,2): %s (paper: adds the two \
                 offset determinants)@."
    (Rat.to_string (Size.pped_cumulative ~l ~g ~spread:[| 1; 2 |]))

let example7 () =
  section "Example 7: dependent columns";
  let g = Imat.of_rows [ [ 1; 2; 1 ]; [ 0; 0; 1 ] ] in
  let red = Size.reduce ~g ~spread:[| 0; 0; 0 |] in
  Format.printf
    "A[i,2i,i+j]: kept columns %s; reduced G' unimodular = %b (paper: \
     G' = [[1,1],[0,1]])@."
    (String.concat "," (List.map string_of_int red.Size.kept_cols))
    (Imat.is_unimodular red.Size.g_reduced)

let example8 () =
  section "Example 8: the 2:3:4 aspect ratio";
  let nest = Loopart.Programs.example8 ~n:60 () in
  let cost = Partition.Cost.of_nest nest in
  Format.printf "cumulative footprint polynomial (B class): %s@."
    (Mpoly.to_string cost.Partition.Cost.total_traffic);
  (match Partition.Rectangular.aspect_ratio cost with
  | Some cs ->
      Format.printf "closed-form tile proportions: %s (paper: 2:3:4)@."
        (String.concat " : " (List.map Rat.to_string (Array.to_list cs)))
  | None -> ());
  match Baselines.Abraham_hudak.partition nest ~nprocs:8 with
  | Ok ah ->
      Format.printf "Abraham-Hudak spreads: %s -> identical partition@."
        (String.concat ":"
           (List.map string_of_int (Array.to_list ah.Baselines.Abraham_hudak.spreads)))
  | Error e -> Format.printf "AH: %s@." e

let example9 () =
  section "Example 9: two uniformly intersecting classes";
  let nest = Loopart.Programs.example9 ~n:60 () in
  let cost = Partition.Cost.of_nest nest in
  List.iter
    (fun c ->
      Format.printf "class %s: cumulative %s@."
        c.Partition.Cost.cls.Uniform.array_name
        (Mpoly.to_string
           ~names:(fun k -> [| "x_i"; "x_j" |].(k))
           c.Partition.Cost.cumulative))
    cost.Partition.Cost.classes;
  let x =
    Partition.Rectangular.continuous_optimum cost ~volume:360.0
      ~extents:[| 60; 60 |]
  in
  Format.printf
    "continuous optimum: (%.2f, %.2f).@.NOTE the paper prints '4 L11 = 6 \
     L22' here, but its own Theorem 4 gives traffic 4x_i + 4x_j (square \
     optimum); exhaustive enumeration in EXPERIMENTS.md confirms squares. \
     We reproduce the methodology, not the typo.@."
    x.(0) x.(1)

let example10 () =
  section "Example 10: general G matrices";
  let nest = Loopart.Programs.example10 ~n:60 () in
  let cost = Partition.Cost.of_nest nest in
  Format.printf "%d classes found (paper: B pair, C pair, lone C, lone A)@."
    (List.length cost.Partition.Cost.classes);
  List.iter
    (fun (c : Partition.Cost.class_cost) ->
      Format.printf "  %s (%d refs): cumulative %s@."
        c.Partition.Cost.cls.Uniform.array_name
        (List.length c.Partition.Cost.cls.Uniform.refs)
        (Mpoly.to_string
           ~names:(fun k -> [| "x_i"; "x_j" |].(k))
           c.Partition.Cost.cumulative))
    cost.Partition.Cost.classes;
  let x =
    Partition.Rectangular.continuous_optimum cost ~volume:360.0
      ~extents:[| 60; 60 |]
  in
  Format.printf
    "continuous optimum (%.2f, %.2f): 2(Li+1) = %.2f vs 3(Lj+1) = %.2f \
     (paper: equal)@."
    x.(0) x.(1)
    (2.0 *. x.(0))
    (3.0 *. x.(1))

let appendix_a () =
  section "Appendix A / Figure 11: fine-grain synchronization";
  let nest = Loopart.Programs.matmul ~n:16 () in
  Format.printf "%a" Nest.pp nest;
  let cost = Partition.Cost.of_nest nest in
  let c =
    List.find
      (fun (c : Partition.Cost.class_cost) ->
        c.Partition.Cost.cls.Uniform.array_name = "C")
      cost.Partition.Cost.classes
  in
  Format.printf
    "the l$C accumulate class carries sync weight %d (modeled as a write \
     with higher communication cost)@."
    c.Partition.Cost.sync_weight

let appendix_b () =
  section "Appendix B: the classification table";
  let id = [ [ 1; 0 ]; [ 0; 1 ] ] in
  let cases =
    [
      ( "A[i,j] ~ A[i+1,j-3]",
        Affine.of_rows id [ 0; 0 ],
        Affine.of_rows id [ 1; -3 ],
        true );
      ( "A[i,j] ~ A[2i,j]",
        Affine.of_rows id [ 0; 0 ],
        Affine.of_rows [ [ 2; 0 ]; [ 0; 1 ] ] [ 0; 0 ],
        false );
      ( "A[i,j] ~ A[2i,2j]",
        Affine.of_rows id [ 0; 0 ],
        Affine.of_rows [ [ 2; 0 ]; [ 0; 2 ] ] [ 0; 0 ],
        false );
      ( "A[j,2,4] ~ A[j,3,4]",
        Affine.of_rows [ [ 0; 0; 0 ]; [ 1; 0; 0 ] ] [ 0; 2; 4 ],
        Affine.of_rows [ [ 0; 0; 0 ]; [ 1; 0; 0 ] ] [ 0; 3; 4 ],
        false );
      ( "A[2i] ~ A[2i+1]",
        Affine.of_rows [ [ 2 ]; [ 0 ] ] [ 0 ],
        Affine.of_rows [ [ 2 ]; [ 0 ] ] [ 1 ],
        false );
      ( "A[i+2,2i+4] ~ A[i+3,2i+8]",
        Affine.of_rows [ [ 1; 2 ]; [ 0; 0 ] ] [ 2; 4 ],
        Affine.of_rows [ [ 1; 2 ]; [ 0; 0 ] ] [ 3; 8 ],
        false );
    ]
  in
  List.iter
    (fun (name, a, b, expected) ->
      let got = Uniform.uniformly_intersecting a b in
      Format.printf "%-28s uniformly intersecting: %-5b (paper: %b) %s@." name
        got expected
        (if got = expected then "ok" else "MISMATCH"))
    cases

let () =
  Format.printf
    "Tour of the worked examples from 'Automatic Partitioning of Parallel \
     Loops for Cache-Coherent Multiprocessors'@.";
  example1 ();
  example2 ();
  example3 ();
  examples_4_5 ();
  example6 ();
  example7 ();
  example8 ();
  example9 ();
  example10 ();
  appendix_a ();
  appendix_b ()
