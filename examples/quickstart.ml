(* Quickstart: partition one loop nest, end to end.

   Build and run:  dune exec examples/quickstart.exe

   The program is Example 8 of the paper:

     Doall (i, 1, N) Doall (j, 1, N) Doall (k, 1, N)
       A(i,j,k) = B(i-1,j,k+1) + B(i,j+1,k) + B(i+1,j-2,k-3)

   The framework classifies the three B references into one uniformly
   intersecting set with spread (2,3,4), derives the cumulative footprint
   polynomial, and chooses tile sides in the proportions 2:3:4. *)

let () =
  (* 1. Describe the loop nest with the DSL. *)
  let nest =
    let open Loopir.Dsl in
    let i = var 0 and j = var 1 and k = var 2 in
    nest ~name:"quickstart"
      [ doall "i" 1 32; doall "j" 1 32; doall "k" 1 32 ]
      [
        write "A" [ i; j; k ];
        read "B" [ i - int 1; j; k + int 1 ];
        read "B" [ i; j + int 1; k ];
        read "B" [ i + int 1; j - int 2; k - int 3 ];
      ]
  in

  (* 2. Analyze and partition for 16 processors. *)
  let analysis = Loopart.Driver.analyze ~nprocs:16 nest in
  Format.printf "%a@." Loopart.Driver.report analysis;

  (* 3. Check the partition on the simulated cache-coherent machine. *)
  let result = Loopart.Driver.simulate analysis in
  Format.printf "--- simulation ---@.%a@." Machine.Sim.pp_result result;

  (* 4. The measured per-processor footprint should match Theorem 4's
        prediction for interior tiles. *)
  let predicted =
    analysis.Loopart.Driver.rect.Partition.Rectangular
    .predicted_misses_per_tile
  in
  let measured =
    Array.fold_left max 0 (Machine.Sim.footprints result)
  in
  Format.printf "predicted misses/tile: %d, measured (max proc): %d@."
    predicted measured
