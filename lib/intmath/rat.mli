(** Exact rational arithmetic over native integers.

    Rationals are kept in canonical form: the denominator is positive and
    [gcd num den = 1].  Operations are overflow-checked via
    {!Int_math.mul_exact}; the spaces handled by the partitioner are far
    below the 62-bit range where this matters. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] normalizes the fraction; raises [Division_by_zero] if
    [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool
val to_int_exn : t -> int
(** Raises [Invalid_argument] if the value is not an integer. *)

val floor : t -> int
val ceil : t -> int
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Infix operators, for use as [Rat.Infix.(a + b * c)]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
