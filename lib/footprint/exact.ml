open Intmath
open Matrixkit
open Loopir

let rect_tile_iterations ~lambda =
  let n = Array.length lambda in
  if Array.exists (fun l -> l < 0) lambda then
    invalid_arg "Exact.rect_tile_iterations: negative bound";
  let rec go i acc =
    if i = n then [ Array.of_list (List.rev acc) ]
    else
      List.concat_map
        (fun v -> go (i + 1) (v :: acc))
        (List.init (lambda.(i) + 1) Fun.id)
  in
  go 0 []

let pped_tile_iterations ~l =
  if not (Imat.is_square l) then
    invalid_arg "Exact.pped_tile_iterations: L must be square";
  let n = Imat.rows l in
  let lq = Qmat.of_imat l in
  match Qmat.inv lq with
  | None -> invalid_arg "Exact.pped_tile_iterations: singular L"
  | Some inv ->
      (* Bounding box of the vertices sum_{i in S} row_i. *)
      let lo = Array.make n 0 and hi = Array.make n 0 in
      let rec corners i acc =
        if i = n then [ acc ]
        else
          corners (i + 1) acc
          @ corners (i + 1) (Ivec.add acc (Imat.row l i))
      in
      List.iter
        (fun v ->
          Array.iteri
            (fun j x ->
              if x < lo.(j) then lo.(j) <- x;
              if x > hi.(j) then hi.(j) <- x)
            v)
        (corners 0 (Ivec.zero n));
      let inside p =
        let coords =
          Qmat.mul_row (Array.map Rat.of_int p) inv
        in
        Array.for_all
          (fun c -> Rat.compare c Rat.zero >= 0 && Rat.compare c Rat.one <= 0)
          coords
      in
      let out = ref [] in
      let point = Array.make n 0 in
      let rec scan i =
        if i = n then begin
          if inside point then out := Array.copy point :: !out
        end
        else
          for v = lo.(i) to hi.(i) do
            point.(i) <- v;
            scan (i + 1)
          done
      in
      scan 0;
      List.rev !out

let footprint ~iterations f =
  let seen = Hashtbl.create 1024 in
  let order = ref [] in
  List.iter
    (fun i ->
      let d = Affine.apply f i in
      let key = Array.to_list d in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        order := d :: !order
      end)
    iterations;
  List.rev !order

let footprint_size ~iterations f = List.length (footprint ~iterations f)

let cumulative_footprint_size ~iterations fs =
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun f ->
      List.iter
        (fun i -> Hashtbl.replace seen (Array.to_list (Affine.apply f i)) ())
        iterations)
    fs;
  Hashtbl.length seen

let nest_unique_elements nest =
  let bounds = Nest.bounds nest in
  let n = Array.length bounds in
  let rec iters i acc =
    if i = n then [ Array.of_list (List.rev acc) ]
    else
      let lo, hi = bounds.(i) in
      List.concat_map
        (fun off -> iters (i + 1) ((lo + off) :: acc))
        (List.init (hi - lo + 1) Fun.id)
  in
  let iterations = iters 0 [] in
  List.map
    (fun name ->
      let fs =
        List.map
          (fun (r : Reference.t) -> r.Reference.index)
          (Nest.references_to nest name)
      in
      (name, cumulative_footprint_size ~iterations fs))
    (Nest.arrays nest)
