(** Event counters collected by a simulation run. *)

type t = {
  mutable accesses : int;
  mutable reads : int;
  mutable writes : int;  (** includes accumulates *)
  mutable sync_ops : int;  (** accumulate (l$) operations, Appendix A *)
  mutable hits : int;
  mutable misses : int;
  mutable cold_misses : int;  (** first touch of the address by the proc *)
  mutable coherence_misses : int;
      (** re-fetch of a line the processor once held but lost to an
          invalidation or downgrade *)
  mutable replacement_misses : int;  (** lost to finite-cache eviction *)
  mutable invalidations : int;  (** lines invalidated in remote caches *)
  mutable upgrades : int;  (** S->M transitions without data transfer *)
  mutable writebacks : int;  (** dirty lines flushed (eviction/downgrade) *)
  mutable local_fills : int;  (** miss served by the local memory module *)
  mutable remote_fills : int;
  mutable network_messages : int;
  mutable network_hops : int;
  unique_per_proc : (int, unit) Hashtbl.t array;
      (** distinct addresses touched by each processor: the measured
          cumulative footprint *)
}

val create : nprocs:int -> t
val touched : t -> int array
(** Per-processor footprint sizes. *)

val miss_rate : t -> float
val pp : Format.formatter -> t -> unit
