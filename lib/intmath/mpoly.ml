(* A polynomial is a map from exponent vectors to non-zero rational
   coefficients.  Exponent vectors are int lists with no trailing zeros,
   so each monomial has a unique key. *)

module Mono = struct
  type t = int list

  let rec strip = function
    | [] -> []
    | e :: rest -> (
        match strip rest with [] when e = 0 -> [] | rest' -> e :: rest')

  let compare = Stdlib.compare

  let mul (a : t) (b : t) : t =
    let rec go a b =
      match (a, b) with
      | [], m | m, [] -> m
      | ea :: ra, eb :: rb -> (ea + eb) :: go ra rb
    in
    strip (go a b)

  let degree (m : t) = List.fold_left ( + ) 0 m
end

module M = Map.Make (Mono)

type t = Rat.t M.t

let zero = M.empty

let normalized_add mono c p =
  let c' =
    match M.find_opt mono p with None -> c | Some c0 -> Rat.add c0 c
  in
  if Rat.equal c' Rat.zero then M.remove mono p else M.add mono c' p

let const c = if Rat.equal c Rat.zero then zero else M.singleton [] c
let const_int n = const (Rat.of_int n)
let one = const_int 1

let var i =
  if i < 0 then invalid_arg "Mpoly.var: negative index";
  M.singleton (List.init (i + 1) (fun j -> if j = i then 1 else 0)) Rat.one

let add p q = M.fold normalized_add q p
let neg p = M.map Rat.neg p
let sub p q = add p (neg q)

let scale c p =
  if Rat.equal c Rat.zero then zero else M.map (Rat.mul c) p

let scale_int n p = scale (Rat.of_int n) p

let mul p q =
  M.fold
    (fun mp cp acc ->
      M.fold
        (fun mq cq acc -> normalized_add (Mono.mul mp mq) (Rat.mul cp cq) acc)
        q acc)
    p zero

let pow p e =
  if e < 0 then invalid_arg "Mpoly.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e asr 1)
    else go acc (mul b b) (e asr 1)
  in
  go one p e

let sum = List.fold_left add zero
let product = List.fold_left mul one
let equal p q = M.equal Rat.equal p q
let is_zero p = M.is_empty p

let degree p =
  M.fold (fun m _ acc -> Stdlib.max acc (Mono.degree m)) p (-1)

let num_vars p = M.fold (fun m _ acc -> Stdlib.max acc (List.length m)) p 0
let monomials p = M.bindings p

let coeff p mono =
  match M.find_opt (Mono.strip mono) p with None -> Rat.zero | Some c -> c

let eval_gen ~mul_coeff ~mul ~add ~zero:z ~one:o ~pow p env =
  M.fold
    (fun mono c acc ->
      let term =
        List.fold_left
          (fun (t, i) e -> (mul t (pow (env i) e), i + 1))
          (o, 0) mono
        |> fst
      in
      add acc (mul_coeff c term))
    p z

let rat_pow b e =
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (Rat.mul acc b) (Rat.mul b b) (e asr 1)
    else go acc (Rat.mul b b) (e asr 1)
  in
  go Rat.one b e

let eval p env =
  let n = num_vars p in
  if Array.length env < n then invalid_arg "Mpoly.eval: environment too short";
  eval_gen ~mul_coeff:Rat.mul ~mul:Rat.mul ~add:Rat.add ~zero:Rat.zero
    ~one:Rat.one
    ~pow:(fun b e -> rat_pow b e)
    p
    (fun i -> env.(i))

let eval_int p env = eval p (Array.map Rat.of_int env)

let eval_float p env =
  let n = num_vars p in
  if Array.length env < n then
    invalid_arg "Mpoly.eval_float: environment too short";
  eval_gen
    ~mul_coeff:(fun c x -> Rat.to_float c *. x)
    ~mul:( *. ) ~add:( +. ) ~zero:0.0 ~one:1.0
    ~pow:(fun b e -> b ** float_of_int e)
    p
    (fun i -> env.(i))

let partial i p =
  M.fold
    (fun mono c acc ->
      let e = try List.nth mono i with Failure _ -> 0 in
      if e = 0 then acc
      else
        let mono' =
          Mono.strip (List.mapi (fun j x -> if j = i then x - 1 else x) mono)
        in
        normalized_add mono' (Rat.mul c (Rat.of_int e)) acc)
    p zero

let subst i q p =
  M.fold
    (fun mono c acc ->
      let e = try List.nth mono i with Failure _ -> 0 in
      let mono' =
        Mono.strip (List.mapi (fun j x -> if j = i then 0 else x) mono)
      in
      let base = M.singleton mono' c in
      add acc (mul base (pow q e)))
    p zero

let pp ?(names = fun i -> Printf.sprintf "x%d" i) ppf p =
  if is_zero p then Format.pp_print_string ppf "0"
  else begin
    let terms = M.bindings p in
    (* Largest-degree terms first reads more naturally. *)
    let terms =
      List.sort
        (fun (m1, _) (m2, _) ->
          match compare (Mono.degree m2) (Mono.degree m1) with
          | 0 -> Mono.compare m1 m2
          | c -> c)
        terms
    in
    List.iteri
      (fun idx (mono, c) ->
        let neg = Rat.sign c < 0 in
        let c_abs = Rat.abs c in
        if idx = 0 then (if neg then Format.pp_print_string ppf "-")
        else Format.pp_print_string ppf (if neg then " - " else " + ");
        let vars =
          mono
          |> List.mapi (fun i e -> (i, e))
          |> List.filter (fun (_, e) -> e > 0)
        in
        let vars =
          List.concat_map
            (fun (i, e) ->
              if e = 1 then [ names i ]
              else [ Printf.sprintf "%s^%d" (names i) e ])
            vars
        in
        match vars with
        | [] -> Rat.pp ppf c_abs
        | _ ->
            if not (Rat.equal c_abs Rat.one) then
              Format.fprintf ppf "%a*" Rat.pp c_abs;
            Format.pp_print_string ppf (String.concat "*" vars))
      terms
  end

let to_string ?names p = Format.asprintf "%a" (pp ?names) p
