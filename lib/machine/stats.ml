type t = {
  mutable accesses : int;
  mutable reads : int;
  mutable writes : int;
  mutable sync_ops : int;
  mutable hits : int;
  mutable misses : int;
  mutable cold_misses : int;
  mutable coherence_misses : int;
  mutable replacement_misses : int;
  mutable invalidations : int;
  mutable upgrades : int;
  mutable writebacks : int;
  mutable local_fills : int;
  mutable remote_fills : int;
  mutable network_messages : int;
  mutable network_hops : int;
  unique_per_proc : (int, unit) Hashtbl.t array;
}

let create ~nprocs =
  {
    accesses = 0;
    reads = 0;
    writes = 0;
    sync_ops = 0;
    hits = 0;
    misses = 0;
    cold_misses = 0;
    coherence_misses = 0;
    replacement_misses = 0;
    invalidations = 0;
    upgrades = 0;
    writebacks = 0;
    local_fills = 0;
    remote_fills = 0;
    network_messages = 0;
    network_hops = 0;
    unique_per_proc = Array.init nprocs (fun _ -> Hashtbl.create 1024);
  }

let touched t = Array.map Hashtbl.length t.unique_per_proc

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses

let pp ppf t =
  Format.fprintf ppf
    "@[<v>accesses: %d (r %d / w %d / sync %d)@,hits: %d  misses: %d \
     (%.2f%%)@,  cold %d, coherence %d, replacement %d@,invalidations: \
     %d  upgrades: %d  writebacks: %d@,fills: local %d, remote %d@,network: \
     %d msgs, %d hops@]"
    t.accesses t.reads t.writes t.sync_ops t.hits t.misses
    (100.0 *. miss_rate t)
    t.cold_misses t.coherence_misses t.replacement_misses t.invalidations
    t.upgrades t.writebacks t.local_fills t.remote_fills t.network_messages
    t.network_hops
