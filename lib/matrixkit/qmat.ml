open Intmath

type t = { r : int; c : int; a : Rat.t array array }

let make r c f =
  if r <= 0 || c <= 0 then invalid_arg "Qmat.make: non-positive dimension";
  { r; c; a = Array.init r (fun i -> Array.init c (fun j -> f i j)) }

let of_imat m = make (Imat.rows m) (Imat.cols m) (fun i j -> Rat.of_int (Imat.get m i j))

let of_rows = function
  | [] -> invalid_arg "Qmat.of_rows: empty"
  | first :: _ as rows ->
      let c = List.length first in
      if c = 0 then invalid_arg "Qmat.of_rows: empty row";
      if not (List.for_all (fun r -> List.length r = c) rows) then
        invalid_arg "Qmat.of_rows: ragged rows";
      let a = Array.of_list (List.map Array.of_list rows) in
      { r = Array.length a; c; a }

let rows m = m.r
let cols m = m.c
let get m i j = m.a.(i).(j)
let row m i = Array.copy m.a.(i)

let identity n =
  make n n (fun i j -> if i = j then Rat.one else Rat.zero)

let transpose m = make m.c m.r (fun i j -> m.a.(j).(i))

let mul m n =
  if m.c <> n.r then invalid_arg "Qmat.mul: dimension mismatch";
  make m.r n.c (fun i j ->
      let acc = ref Rat.zero in
      for k = 0 to m.c - 1 do
        acc := Rat.add !acc (Rat.mul m.a.(i).(k) n.a.(k).(j))
      done;
      !acc)

let scale k m = make m.r m.c (fun i j -> Rat.mul k m.a.(i).(j))

let mul_row v m =
  if Array.length v <> m.r then invalid_arg "Qmat.mul_row: dimension mismatch";
  Array.init m.c (fun j ->
      let acc = ref Rat.zero in
      for i = 0 to m.r - 1 do
        acc := Rat.add !acc (Rat.mul v.(i) m.a.(i).(j))
      done;
      !acc)

let equal m n =
  m.r = n.r && m.c = n.c
  && Array.for_all2 (fun a b -> Array.for_all2 Rat.equal a b) m.a n.a

let scratch m = Array.map Array.copy m.a

(* Gaussian elimination with partial (first-non-zero) pivoting over Q.
   Returns pivot column list; mutates [a] to row echelon form and applies
   the same operations to the rows of [aug] when provided. *)
let row_echelon (a : Rat.t array array) ?(aug : Rat.t array array option) r c =
  let swap arr i j =
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  in
  let pivots = ref [] in
  let pr = ref 0 in
  for pc = 0 to c - 1 do
    if !pr < r then begin
      let piv = ref (-1) in
      (try
         for i = !pr to r - 1 do
           if Rat.sign a.(i).(pc) <> 0 then begin
             piv := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !piv >= 0 then begin
        if !piv <> !pr then begin
          swap a !piv !pr;
          (match aug with Some g -> swap g !piv !pr | None -> ())
        end;
        let inv_p = Rat.inv a.(!pr).(pc) in
        let scale_row arr i k =
          arr.(i) <- Array.map (Rat.mul k) arr.(i)
        in
        scale_row a !pr inv_p;
        (match aug with Some g -> scale_row g !pr inv_p | None -> ());
        for i = 0 to r - 1 do
          if i <> !pr && Rat.sign a.(i).(pc) <> 0 then begin
            let f = a.(i).(pc) in
            let elim arr =
              arr.(i) <-
                Array.mapi
                  (fun j x -> Rat.sub x (Rat.mul f arr.(!pr).(j)))
                  arr.(i)
            in
            elim a;
            match aug with Some g -> elim g | None -> ()
          end
        done;
        pivots := (!pr, pc) :: !pivots;
        incr pr
      end
    end
  done;
  List.rev !pivots

let rank m =
  let a = scratch m in
  List.length (row_echelon a m.r m.c)

let det m =
  if m.r <> m.c then invalid_arg "Qmat.det: not square";
  (* Triangularize tracking the product of pivots and swap signs. *)
  let a = scratch m in
  let n = m.r in
  let sign = ref 1 and d = ref Rat.one in
  (try
     for pc = 0 to n - 1 do
       let piv = ref (-1) in
       (try
          for i = pc to n - 1 do
            if Rat.sign a.(i).(pc) <> 0 then begin
              piv := i;
              raise Exit
            end
          done
        with Exit -> ());
       if !piv = -1 then begin
         d := Rat.zero;
         raise Exit
       end;
       if !piv <> pc then begin
         let t = a.(!piv) in
         a.(!piv) <- a.(pc);
         a.(pc) <- t;
         sign := - !sign
       end;
       d := Rat.mul !d a.(pc).(pc);
       for i = pc + 1 to n - 1 do
         if Rat.sign a.(i).(pc) <> 0 then begin
           let f = Rat.div a.(i).(pc) a.(pc).(pc) in
           a.(i) <-
             Array.mapi (fun j x -> Rat.sub x (Rat.mul f a.(pc).(j))) a.(i)
         end
       done
     done
   with Exit -> ());
  if Rat.equal !d Rat.zero then Rat.zero
  else if !sign < 0 then Rat.neg !d
  else !d

let inv m =
  if m.r <> m.c then invalid_arg "Qmat.inv: not square";
  let n = m.r in
  let a = scratch m in
  let aug = (identity n).a |> Array.map Array.copy in
  let pivots = row_echelon a ~aug n n in
  if List.length pivots < n then None
  else Some { r = n; c = n; a = aug }

let solve_left m b =
  (* x * m = b  <=>  m^t * x^t = b^t: solve the transposed column system by
     reducing the augmented matrix [m^t | b^t]. *)
  if Array.length b <> m.c then
    invalid_arg "Qmat.solve_left: dimension mismatch";
  let mt = transpose m in
  let r = mt.r and c = mt.c in
  let a = scratch mt in
  let aug = Array.init r (fun i -> [| b.(i) |]) in
  let pivots = row_echelon a ~aug r c in
  (* Consistency: any zero row of [a] must have zero in [aug]. *)
  let x = Array.make c Rat.zero in
  List.iter (fun (pr, pc) -> x.(pc) <- aug.(pr).(0)) pivots;
  let consistent = ref true in
  for i = 0 to r - 1 do
    let row_zero = Array.for_all (fun v -> Rat.sign v = 0) a.(i) in
    if row_zero && Rat.sign aug.(i).(0) <> 0 then consistent := false
  done;
  if !consistent then Some x else None

let is_integer m =
  Array.for_all (fun row -> Array.for_all Rat.is_integer row) m.a

let to_imat_exn m = Imat.make m.r m.c (fun i j -> Rat.to_int_exn m.a.(i).(j))

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i row ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "[%s]"
        (String.concat " "
           (List.map Rat.to_string (Array.to_list row))))
    m.a;
  Format.fprintf ppf "@]"
