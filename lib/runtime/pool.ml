exception Aborted

(* Spin with capped exponential backoff: on an oversubscribed host
   (more domains than cores) a pure spin waits out whole scheduling
   quanta, so after a bounded number of relaxes we yield, then sleep
   increasingly long - capped so a waiter still polls often enough for
   abort flags and watchdog checks to stay responsive. *)
let backoff ?yielded spins =
  if spins < 64 then Domain.cpu_relax ()
  else begin
    (match yielded with Some r -> incr r | None -> ());
    if spins < 512 then Unix.sleepf 0.0 (* sched_yield: give up the quantum *)
    else
      let k = min ((spins - 512) / 64) 5 in
      Unix.sleepf (0.000_05 *. float_of_int (1 lsl k))
  end

module Barrier = struct
  type b = {
    parties : int;
    count : int Atomic.t;
    phase : bool Atomic.t;
    abort : bool Atomic.t;
  }

  let create parties =
    {
      parties;
      count = Atomic.make parties;
      phase = Atomic.make false;
      abort = Atomic.make false;
    }

  let wait ?yielded b ~sense =
    let my = not !sense in
    sense := my;
    if Atomic.get b.abort then raise Aborted;
    if Atomic.fetch_and_add b.count (-1) = 1 then begin
      (* Last arrival: reset the count and flip the phase to release. *)
      Atomic.set b.count b.parties;
      Atomic.set b.phase my
    end
    else begin
      let spins = ref 0 in
      while Atomic.get b.phase <> my && not (Atomic.get b.abort) do
        backoff ?yielded !spins;
        incr spins
      done;
      if Atomic.get b.phase <> my then raise Aborted
    end
end

type job = int -> Barrier.b -> unit

type t = {
  n : int;
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable epoch : int;
  mutable job : (job * Barrier.b) option;
  mutable remaining : int;
  mutable stop : bool;
  mutable first_exn : exn option;
  mutable domains : unit Domain.t array;
}

let worker t p =
  let my_epoch = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while t.epoch = !my_epoch && not t.stop do
      Condition.wait t.work t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      my_epoch := t.epoch;
      let f, barrier = Option.get t.job in
      Mutex.unlock t.mutex;
      (try f p barrier with
      | Aborted -> ()
      | exn ->
          (* Release siblings parked at the barrier, then record the
             first real failure for [run] to re-raise. *)
          Atomic.set barrier.Barrier.abort true;
          Mutex.lock t.mutex;
          if t.first_exn = None then t.first_exn <- Some exn;
          Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
  done

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one domain";
  let t =
    {
      n;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      job = None;
      remaining = 0;
      stop = false;
      first_exn = None;
      domains = [||];
    }
  in
  t.domains <- Array.init n (fun p -> Domain.spawn (fun () -> worker t p));
  t

let size t = t.n

let run t f =
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.run: pool is shut down"
  end;
  t.job <- Some (f, Barrier.create t.n);
  t.epoch <- t.epoch + 1;
  t.remaining <- t.n;
  t.first_exn <- None;
  Condition.broadcast t.work;
  while t.remaining > 0 do
    Condition.wait t.finished t.mutex
  done;
  let exn = t.first_exn in
  t.job <- None;
  t.first_exn <- None;
  Mutex.unlock t.mutex;
  match exn with None -> () | Some e -> raise e

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains
  end
  else Mutex.unlock t.mutex

let with_pool n f =
  let t = create n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

module Counter = struct
  type c = { total : int; pos : int Atomic.t }

  let create ~total =
    if total < 0 then invalid_arg "Pool.Counter.create: total < 0";
    { total; pos = Atomic.make 0 }

  let rec next c ~chunk =
    let pos = Atomic.get c.pos in
    if pos >= c.total then None
    else
      let remaining = c.total - pos in
      let k = min remaining (max 1 (chunk ~remaining)) in
      if Atomic.compare_and_set c.pos pos (pos + k) then Some (pos, pos + k)
      else next c ~chunk

  let reset c = Atomic.set c.pos 0
end

module Deques = struct
  type queue = {
    length : int;
    mutable head : int;  (** next index the owner pops *)
    mutable tail : int;  (** one past the last pending index *)
    lock : Mutex.t;
  }

  type d = queue array

  let create ~lengths =
    Array.map
      (fun len ->
        if len < 0 then invalid_arg "Pool.Deques.create: negative length";
        { length = len; head = 0; tail = len; lock = Mutex.create () })
      lengths

  let reset d =
    Array.iter
      (fun q ->
        Mutex.lock q.lock;
        q.head <- 0;
        q.tail <- q.length;
        Mutex.unlock q.lock)
      d

  let take_front q chunk =
    Mutex.lock q.lock;
    let r =
      if q.head >= q.tail then None
      else begin
        let lo = q.head in
        let hi = min q.tail (lo + chunk) in
        q.head <- hi;
        Some (lo, hi)
      end
    in
    Mutex.unlock q.lock;
    r

  let take_back q chunk =
    Mutex.lock q.lock;
    let r =
      if q.head >= q.tail then None
      else begin
        let hi = q.tail in
        let lo = max q.head (hi - chunk) in
        q.tail <- lo;
        Some (lo, hi)
      end
    in
    Mutex.unlock q.lock;
    r

  let pop d ~me ~chunk =
    if chunk < 1 then invalid_arg "Pool.Deques.pop: chunk < 1";
    match take_front d.(me) chunk with
    | Some (lo, hi) -> Some (me, lo, hi)
    | None ->
        (* Steal from the back of the fullest victim so chunks keep
           coming off the far end of large queues. *)
        let n = Array.length d in
        let best = ref (-1) and best_load = ref 0 in
        for i = 0 to n - 1 do
          let q = d.(i) in
          let load = q.tail - q.head in
          if i <> me && load > !best_load then begin
            best := i;
            best_load := load
          end
        done;
        if !best < 0 then None
        else
          (* The victim may drain between the scan and the steal; fall
             back to any non-empty queue before giving up. *)
          let rec attempt victim tried =
            match take_back d.(victim) chunk with
            | Some (lo, hi) -> Some (victim, lo, hi)
            | None ->
                let next = (victim + 1) mod n in
                if tried >= n then None
                else if next = me then attempt ((next + 1) mod n) (tried + 1)
                else attempt next (tried + 1)
          in
          attempt !best 0
end
