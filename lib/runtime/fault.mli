(** Deterministic fault injection for the resilient runtime.

    A {!plan} is a list of {!injection}s, each naming a site - a domain,
    an outer sequential step, and the n-th tile the domain claims within
    that step - and an {!action} to perform there.  Plans are plain data:
    the resilient executor ({!Resilient}) interprets the actions, so the
    production paths ({!Pool.run}, {!Exec}) never see them and pay
    nothing when no plan is installed.

    Each injection fires {e once}: the first time a claim matches its
    site it is consumed.  This models transient faults and keeps
    retry-based recovery deterministic - the retried attempt re-reaches
    the site and finds the injection spent.  Plans are replayable from
    their string syntax (the [--fault-plan] flag):

    {v crash               crash whichever domain claims a tile first
    crash@d1            crash domain 1 at its first claim of step 1
    stall:250@s2        the first claimer of step 2 stalls for 250 ms
    corrupt@d2s1c3      domain 2 corrupts its 4th claimed tile of step 1
    crash;crash         two one-shot crashes (fires on two attempts) v}

    A site with an explicit [dD] marker fires only on that domain; a
    site without one fires on {e any} domain (still exactly once).  The
    wildcard is what keeps CI plans deterministic: with work-stealing,
    which domain claims which tile is a race, but {e some} domain
    claiming the n-th tile of a step is not. *)

type action =
  | Crash  (** the domain raises mid-step, as if its worker died *)
  | Stall of int
      (** the domain goes silent for this many milliseconds - the
          straggler the watchdog must detect *)
  | Corrupt
      (** the domain scribbles a NaN into one of its tile's write
          addresses and then raises, modelling a detected machine check:
          recovery must re-execute the tile to restore the value *)

type injection = {
  action : action;
  domain : int option;  (** 0-based domain index; [None] = any domain *)
  step : int;  (** 1-based outer sequential step (default 1) *)
  claim : int;  (** 0-based tile-claim ordinal within the step (default 0) *)
}

type plan
(** A set of one-shot injections plus their consumed/armed state. *)

val none : plan
(** The empty plan: {!fire} never returns an action. *)

val make : injection list -> plan
(** Raises [Invalid_argument] on negative sites or stall durations. *)

val is_empty : plan -> bool

val injections : plan -> injection list

val fire : plan -> domain:int -> step:int -> claim:int -> (int * action) option
(** Consume and return the first still-armed injection matching the
    site, if any, as [(entry, action)] where [entry] indexes the plan's
    injection list - the stable identity a fired fault is reported
    under.  Thread-safe and one-shot {e per entry, globally}: the
    armed-flag CAS admits exactly one caller per entry, across
    concurrent claims, retried attempts, and degrade re-partitions (so
    a wildcard site re-reached after the domain count halves cannot
    double-count). *)

val reset : plan -> unit
(** Re-arm every injection (for reusing one plan across runs). *)

val action_to_string : action -> string

val to_string : plan -> string
(** Replayable [--fault-plan] syntax, [";"]-separated. *)

val of_string : string -> (plan, string) result
(** Parse the syntax above: [ACTION\[@\[dD\]\[sS\]\[cC\]\]] where ACTION
    is [crash], [stall:MS] or [corrupt]; an omitted [dD] means any
    domain, omitted step defaults to 1, omitted claim to 0. *)

val pp : Format.formatter -> plan -> unit
