(** The multicore loop-nest interpreter: executes partitioned [Doall]
    nests over real shared operands on a {!Pool} of OCaml domains.

    Each affine reference [(G, a)] is compiled once into a closed-form
    row-major index function [c + m . i] via {!Machine.Layout.frame}, so
    the per-iteration work is exactly the address arithmetic plus the
    loads/stores the partitioned loop would perform on the real machine:
    reads are summed, [Write] stores the sum, and [Accumulate] (the
    paper's [l$] references) adds it in place.

    A nest's optional [Doseq] loop (Figure 9) becomes real re-execution:
    the pool's sense-reversing barrier separates the outer steps without
    respawning domains, which is where steady-state coherence traffic
    appears on actual hardware. *)

open Loopir
open Matrixkit

type compiled

type cref = { c : int; m : int array }
(** A compiled affine reference: the flat element address at iteration
    [i] is [c + m . i].  [m.(k)] is therefore the {e compile-time
    constant} address delta of one step along loop axis [k] - the
    strength-reduction fact {!Kernel} builds its incremental-address
    loops on. *)

val compile : ?bigarray:bool -> Nest.t -> compiled
(** Build the layout and index functions.  With [bigarray] the operand
    space is one [Bigarray.Array1] of float64 (off the OCaml heap, so
    domains share it with no GC write barriers); the default is a plain
    [float array]. *)

val nest : compiled -> Nest.t
val layout : compiled -> Machine.Layout.t
val total_elements : compiled -> int
val is_bigarray : compiled -> bool

val reads : compiled -> cref array
(** The compiled read references, in body order. *)

val writes : compiled -> (cref * bool) array
(** The compiled write-like references in body order, each flagged
    [true] when it accumulates.  Together with {!reads} this is the
    whole body semantics: the loads are summed, [+. 1.0] is applied,
    and the result is stored (or added) through every write. *)

val address : compiled -> Reference.t -> Ivec.t -> int
(** The flat element address the compiled reference touches at an
    iteration.  Partial application compiles the reference once, so
    validation loops should apply it to the reference first. *)

(** {2 Raw storage access}

    The resilient executor ({!Resilient}) drives tiles itself instead of
    going through {!measure}/{!time}, so it needs the operand buffer and
    the per-point body as first-class values. *)

type storage

val alloc : compiled -> storage
(** Fresh operands with the deterministic initial values every execution
    path (including {!sequential}) starts from. *)

val exec_point : compiled -> storage -> Ivec.t -> unit
(** The loop body at one iteration point.  Partial application to the
    storage compiles the dispatch once. *)

val checksum : storage -> float
val to_float_array : storage -> float array

val view :
  storage ->
  [ `Flat of float array
  | `Big of (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ]
(** The underlying buffer, for backends ({!Kernel}) that emit their own
    specialized loops over it. *)

val poke : storage -> int -> float -> unit
(** Overwrite one element - the corruption the [Corrupt] fault injects. *)

val plain_write_addresses : compiled -> Ivec.t -> int list
(** Addresses stored through non-accumulate writes at an iteration (the
    safe targets for an injected corruption: re-executing the iteration
    restores them). *)

val reexecution_safe : compiled -> bool
(** Whether tiles of this nest are idempotent: no iteration of the Doall
    body reads an address the body writes, and no write accumulates.
    Exactly then a partially executed or duplicated tile can be re-run
    (by any domain, any number of times) without changing the final
    buffer - the precondition for tile-level crash recovery. *)

type work =
  | Static of Ivec.t array array
      (** per-domain iteration arrays, fixed at compile time (the
          schedules of {!Partition.Codegen} / {!Partition.Scheduling}) *)
  | Tiled of { tiles : Ivec.t array array; owners : int array }
      (** the same compile-time partition with tile boundaries kept:
          tile id -> points, tile id -> owning domain (the shape of
          {!Resilient.partitioned}).  Executes exactly like [Static]
          work over the concatenation of each owner's tiles, but a
          traced run records one claim-to-completion span per tile *)
  | Dynamic of { points : Ivec.t array; chunk : remaining:int -> int }
      (** self-scheduling over the lexicographic iteration stream via a
          shared {!Pool.Counter}: chunk [fun ~remaining:_ -> 1] is
          cyclic, a constant is block-cyclic, [ceil remaining/P] is
          guided self-scheduling *)
  | Steal of { queues : Ivec.t array array; chunk : int }
      (** per-domain queues (normally the tiled assignment) drained
          front-first by their owners with back-stealing *)

val static_of_assignment : Partition.Scheduling.assignment -> work
val queues_of_assignment : Partition.Scheduling.assignment -> chunk:int -> work

val steps_of_nest : ?override:int -> Nest.t -> int
(** The outer sequential trip count: [override], else the nest's
    [Doseq] extent, else 1. *)

type instrumented = {
  footprints : int array;  (** distinct elements touched per domain *)
  iterations : int array;
  distinct_total : int;
  exact : bool;  (** footprints counted exactly (vs Bloom estimate) *)
  checksum : float;
  buffer : float array;  (** final operand values, for value checks *)
}

val measure :
  Pool.t -> compiled -> work -> steps:int -> mode:Measure.mode -> instrumented
(** One instrumented (untimed) execution on fresh operands. *)

val time :
  ?trace:Trace.t ->
  Pool.t ->
  compiled ->
  work ->
  steps:int ->
  repeats:int ->
  float * float array * int array
(** [(wall, per_domain_seconds, per_domain_iterations)] of the fastest
    of [repeats] uninstrumented executions (minimum-of-N wall-clock,
    all timestamps on {!Mclock}).  A live [trace] records barrier
    waits, steps, and tile/chunk claims of {e every} repeat. *)

val run :
  ?trace:Trace.t ->
  Pool.t ->
  compiled ->
  work ->
  steps:int ->
  repeats:int ->
  mode:Measure.mode ->
  Measure.raw
(** {!time} + {!measure} combined into a {!Measure.raw}.  The timed
    pass is traced; the instrumented pass only feeds the trace's
    elements-touched counter from its per-domain footprints. *)

val sequential : compiled -> steps:int -> float array
(** Reference execution: every iteration in lexicographic order on the
    calling domain, over fresh operands; returns the final buffer.  The
    ground truth for {!Validate}'s determinism check. *)
