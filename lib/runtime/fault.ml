type action = Crash | Stall of int | Corrupt

type injection = {
  action : action;
  domain : int option;
  step : int;
  claim : int;
}

type plan = { injections : injection array; armed : bool Atomic.t array }

let validate (i : injection) =
  (match i.domain with
  | Some d when d < 0 -> invalid_arg "Fault.make: negative domain"
  | Some _ | None -> ());
  if i.step < 1 then invalid_arg "Fault.make: step < 1";
  if i.claim < 0 then invalid_arg "Fault.make: negative claim";
  match i.action with
  | Stall ms when ms < 0 -> invalid_arg "Fault.make: negative stall"
  | Stall _ | Crash | Corrupt -> ()

let make injections =
  List.iter validate injections;
  let injections = Array.of_list injections in
  {
    injections;
    armed = Array.map (fun _ -> Atomic.make true) injections;
  }

let none = make []
let is_empty p = Array.length p.injections = 0
let injections p = Array.to_list p.injections

(* The CAS on [armed.(k)] is what makes every plan entry one-shot
   globally - across concurrent claimers, across retried attempts, and
   across degrade re-partitions.  The latter matters for wildcard
   sites: when the domain count halves, claim ordinals are re-dealt and
   a site like [crash@s1c0] is reached again by the smaller pool, but
   its entry is already consumed, so it cannot double-fire.  The
   returned entry index is the identity {!Report.Injected} carries and
   the fuzz oracle's <= 1-hit-per-entry assertion checks. *)
let fire p ~domain ~step ~claim =
  let found = ref None in
  Array.iteri
    (fun k (i : injection) ->
      if
        !found = None
        && (match i.domain with None -> true | Some d -> d = domain)
        && i.step = step && i.claim = claim
        && Atomic.compare_and_set p.armed.(k) true false
      then found := Some (k, i.action))
    p.injections;
  !found

let reset p = Array.iter (fun a -> Atomic.set a true) p.armed

let action_to_string = function
  | Crash -> "crash"
  | Stall ms -> Printf.sprintf "stall:%d" ms
  | Corrupt -> "corrupt"

let injection_to_string (i : injection) =
  Printf.sprintf "%s@%ss%dc%d"
    (action_to_string i.action)
    (match i.domain with None -> "" | Some d -> Printf.sprintf "d%d" d)
    i.step i.claim

let to_string p =
  String.concat ";" (List.map injection_to_string (injections p))

let pp ppf p = Format.pp_print_string ppf (to_string p)

(* Parsing: ACTION[@dD[sS][cC]].  Hand-rolled so a malformed plan string
   yields a one-line message, never an exception. *)

let parse_action s =
  match String.split_on_char ':' s with
  | [ "crash" ] -> Ok Crash
  | [ "corrupt" ] -> Ok Corrupt
  | [ "stall"; ms ] -> (
      match int_of_string_opt ms with
      | Some ms when ms >= 0 -> Ok (Stall ms)
      | Some _ | None -> Error (Printf.sprintf "bad stall duration %S" ms))
  | _ -> Error (Printf.sprintf "unknown action %S (crash | stall:MS | corrupt)" s)

(* The site part is a concatenation of dN, sN, cN markers. *)
let parse_site s =
  let n = String.length s in
  let domain = ref None and step = ref 1 and claim = ref 0 in
  let error = ref None in
  let pos = ref 0 in
  while !error = None && !pos < n do
    let key = s.[!pos] in
    let start = !pos + 1 in
    let stop = ref start in
    while
      !stop < n && (match s.[!stop] with '0' .. '9' -> true | _ -> false)
    do
      incr stop
    done;
    (match
       if !stop = start then None
       else int_of_string_opt (String.sub s start (!stop - start))
     with
    | None -> error := Some (Printf.sprintf "bad site %S (want dD[sS][cC])" s)
    | Some v -> (
        match key with
        | 'd' -> domain := Some v
        | 's' -> step := v
        | 'c' -> claim := v
        | _ -> error := Some (Printf.sprintf "bad site key %C in %S" key s)));
    pos := !stop
  done;
  match !error with
  | Some e -> Error e
  | None -> Ok (!domain, !step, !claim)

let parse_injection s =
  let action_s, site_s =
    match String.index_opt s '@' with
    | None -> (s, "")
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match parse_action action_s with
  | Error e -> Error e
  | Ok action -> (
      match parse_site site_s with
      | Error e -> Error e
      | Ok (domain, step, claim) ->
          if step < 1 then Error (Printf.sprintf "step must be >= 1 in %S" s)
          else Ok { action; domain; step; claim })

let of_string s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ';' (String.trim s))
  in
  let rec go acc = function
    | [] -> Ok (make (List.rev acc))
    | p :: rest -> (
        match parse_injection (String.trim p) with
        | Ok i -> go (i :: acc) rest
        | Error e -> Error e)
  in
  go [] parts
