open Intmath
open Matrixkit

type t = Rect of int array | Pped of Imat.t

let rect sizes =
  if Array.length sizes = 0 then invalid_arg "Tile.rect: empty";
  if Array.exists (fun s -> s < 1) sizes then
    invalid_arg "Tile.rect: sizes must be >= 1";
  Rect (Array.copy sizes)

let pped l =
  if not (Imat.is_square l) then invalid_arg "Tile.pped: L must be square";
  if Imat.det l = 0 then invalid_arg "Tile.pped: singular L";
  Pped l

let nesting = function Rect s -> Array.length s | Pped l -> Imat.rows l

let lambda = function
  | Rect s -> Array.map (fun x -> x - 1) s
  | Pped _ -> invalid_arg "Tile.lambda: not a rectangular tile"

let l_matrix = function
  | Rect s ->
      Qmat.make (Array.length s) (Array.length s) (fun i j ->
          if i = j then Rat.of_int s.(i) else Rat.zero)
  | Pped l -> Qmat.of_imat l

let volume t = Rat.abs (Qmat.det (l_matrix t))

(* Half-open tile coordinates: the partition of the iteration space into
   translated copies of the tile assigns point [i] to the integer vector
   [floor(i * L^-1)]. *)
let tile_coords t (point : Ivec.t) =
  match t with
  | Rect s ->
      if Array.length point <> Array.length s then
        invalid_arg "Tile.tile_coords: dimension mismatch";
      Array.mapi (fun k x -> Int_math.floor_div x s.(k)) point
  | Pped l -> (
      match Qmat.inv (Qmat.of_imat l) with
      | None -> assert false (* checked at construction *)
      | Some inv ->
          let coords = Qmat.mul_row (Array.map Rat.of_int point) inv in
          Array.map Rat.floor coords)

let contains t point =
  Array.for_all (fun c -> c = 0) (tile_coords t point)

let iterations t =
  match t with
  | Rect s ->
      let n = Array.length s in
      let rec go k acc =
        if k = n then [ Array.of_list (List.rev acc) ]
        else
          List.concat_map (fun v -> go (k + 1) (v :: acc)) (List.init s.(k) Fun.id)
      in
      go 0 []
  | Pped l ->
      (* Scan the bounding box of the vertex set and keep half-open
         members. *)
      let n = Imat.rows l in
      let lo = Array.make n 0 and hi = Array.make n 0 in
      let rec corners k acc =
        if k = n then [ acc ] else corners (k + 1) acc @ corners (k + 1) (Ivec.add acc (Imat.row l k))
      in
      List.iter
        (fun v ->
          Array.iteri
            (fun j x ->
              if x < lo.(j) then lo.(j) <- x;
              if x > hi.(j) then hi.(j) <- x)
            v)
        (corners 0 (Ivec.zero n));
      let out = ref [] in
      let point = Array.make n 0 in
      let rec scan k =
        if k = n then begin
          if contains t point then out := Array.copy point :: !out
        end
        else
          for v = lo.(k) to hi.(k) do
            point.(k) <- v;
            scan (k + 1)
          done
      in
      scan 0;
      List.rev !out

let equal a b =
  match (a, b) with
  | Rect x, Rect y -> Array.length x = Array.length y && Array.for_all2 ( = ) x y
  | Pped x, Pped y -> Imat.equal x y
  | Rect _, Pped _ | Pped _, Rect _ -> false

let pp ppf = function
  | Rect s ->
      Format.fprintf ppf "rect[%s]"
        (String.concat "x" (List.map string_of_int (Array.to_list s)))
  | Pped l -> Format.fprintf ppf "pped@,%a" Imat.pp l

let to_string t = Format.asprintf "%a" pp t
