(** Footprint-size computations (Sections 3.4-3.8 of the paper).

    Two families of engines are provided.

    {b Rectangular tiles} (Section 3.7).  A rectangular tile is given by
    its bound vector [lambda]; the tile contains the iterations
    [0 <= i_k <= lambda_k], hence [prod (lambda_k + 1)] points.  The
    engines accept any [G]: zero columns are dropped (Example 1), a
    maximal independent column subset replaces a column-deficient [G]
    (Section 3.4.1), zero rows (loop indices the reference ignores) are
    eliminated, and rank-deficient rows (projections such as [A[i+j]])
    are handled by a zonotope-volume / lattice-index estimate with exact
    enumeration as ground truth for small tiles (Section 3.8).

    {b Hyperparallelepiped tiles} (Sections 3.4-3.6).  A general tile is
    given by its [L] matrix (rows are the tile edge vectors, Definition 2);
    sizes follow Equation 2 and Theorem 2 and require the (column-reduced)
    [G] to have full row rank.

    The [*_poly] variants return the size symbolically as a polynomial in
    the variables [x_k = lambda_k + 1] (one per loop dimension); these
    drive the optimizer and reproduce the paper's printed cost
    expressions, e.g. Example 8's [x0*x1*x2 + 2*x1*x2 + 3*x0*x2 + 4*x0*x1]. *)

open Intmath
open Matrixkit

exception Unsupported of string
(** Raised when a parallelepiped engine meets a [G] outside its domain
    (rank-deficient rows after column reduction). *)

val theorem1_applies : Imat.t -> bool
(** Sufficient condition for [S(LG)] to coincide with the footprint:
    [G] unimodular (Theorem 1). *)

(** {1 Rectangular tiles} *)

val rect_single : lambda:int array -> g:Imat.t -> int
(** Exact-or-estimated number of distinct data elements accessed through
    one reference [(G, _)] by the tile [0..lambda] (offset irrelevant).
    Exact whenever the reduced [G] has independent rows (Theorem 5 /
    Proposition 3); otherwise exact by enumeration up to an internal
    budget, then estimated. *)

val rect_cumulative :
  exact:bool -> lambda:int array -> g:Imat.t -> spread:Ivec.t -> int
(** Cumulative footprint of a uniformly intersecting class over a
    rectangular tile.  With [exact:true] and a full-row-rank reduced [G],
    uses Lemma 3's exact union size (falling back to [2 * single] for
    non-intersecting translates); with [exact:true] and a rank-deficient
    reduced [G] (projections, dependent rows) the union is enumerated
    exactly up to an internal budget - the Theorem 4 linearization is
    unusable there for degenerate tiles (a trip-count-1 tile with zero
    spread must equal the single footprint).  With [exact:false], always
    Theorem 4's linearized form. *)

val rect_single_poly : nesting:int -> g:Imat.t -> Mpoly.t
(** Symbolic footprint size in [x_k = lambda_k + 1]. *)

val rect_cumulative_poly :
  nesting:int -> g:Imat.t -> spread:Ivec.t -> Mpoly.t
(** Symbolic Theorem 4: [single + sum_i |u_i| * d(single)/dx_i] where
    [u] solves [u * G' = spread'] on the reduced matrix.  For square
    nonsingular reduced [G] this is exactly the paper's formula. *)

val rect_traffic_poly : nesting:int -> g:Imat.t -> spread:Ivec.t -> Mpoly.t
(** The communication part only: [cumulative - single] (the terms that
    survive when [|det L|] is pinned by load balancing; cf. Figure 9's
    discussion). *)

val lattice_spread : g:Imat.t -> offsets:Ivec.t list -> Rat.t array option
(** The spread measured in {e lattice coordinates}: write each offset in
    the basis of the reduced [G]'s rows and take per-coordinate
    [max - min].  [None] when the reduced [G] is not square nonsingular.

    Definition 8 takes max-min in the {e data} space and only then maps
    to lattice coordinates; when [G] is skewed and the offsets mix signs,
    that can under-measure the true translation (e.g. [G = [[1,1],[0,1]]]
    with offsets [(0,0)] and [(2,-2)]: the data spread [(2,2)] has
    coordinates [(2,0)] but the actual translation is [(2,-4)]).  The
    lattice-coordinate spread bounds every pairwise translation and
    coincides with the paper's value on all of its examples. *)

val rect_cumulative_poly_class :
  nesting:int -> g:Imat.t -> offsets:Ivec.t list -> Mpoly.t
(** Theorem 4 with the lattice-coordinate spread when available (falling
    back to the Definition 8 spread otherwise) - the engine the cost
    model uses. *)

(** {1 Hyperparallelepiped tiles} *)

val pped_single : l:Qmat.t -> g:Imat.t -> Rat.t
(** Equation 2: [|det (L G')|] on the column-reduced [G'].  Raises
    {!Unsupported} if the reduced [G] has dependent rows. *)

val pped_cumulative : l:Qmat.t -> g:Imat.t -> spread:Ivec.t -> Rat.t
(** Theorem 2: [|det LG| + sum_i |det LG_{i->spread}|]. *)

val pped_cumulative_float :
  l:float array array -> g:Imat.t -> spread:Ivec.t -> float
(** Float variant used by the numerical tile optimizer. *)

val pped_terms_symbolic :
  nesting:int -> g:Imat.t -> spread:Ivec.t -> Mpoly.t list
(** Theorem 2 fully symbolically: the determinants [det LG] and
    [det LG_{i->spread}] as polynomials in the [nesting^2] entries of a
    generic tile matrix [L] (polynomial variable [i*l + j] is [L_ij];
    print with {!Matrixkit.Pmat.entry_names}).  The theorem's value is
    the sum of absolute values of these at any concrete [L] - these are
    the expressions Example 9 displays.  Raises {!Unsupported} like the
    other parallelepiped engines. *)

val float_det : float array array -> float
(** Determinant by partial-pivot LU; exposed for the optimizer. *)

(** {1 Reduction diagnostics} *)

type reduction = {
  kept_cols : int list;  (** maximal independent columns (3.4.1) *)
  kept_rows : int list;  (** non-zero rows of the column-reduced G *)
  g_reduced : Imat.t;  (** [G[kept_rows][kept_cols]] *)
  spread_reduced : Ivec.t;
  full_row_rank : bool;
      (** true when the reduced matrix is square nonsingular, i.e. the
          reference is one-to-one on the kept loop dimensions *)
}

val reduce : g:Imat.t -> spread:Ivec.t -> reduction
(** The common reduction pipeline, exposed for tests and reports. *)
