type t = { r : int; c : int; a : int array array }

let make r c f =
  if r <= 0 || c <= 0 then invalid_arg "Imat.make: non-positive dimension";
  { r; c; a = Array.init r (fun i -> Array.init c (fun j -> f i j)) }

let of_rows = function
  | [] -> invalid_arg "Imat.of_rows: empty"
  | first :: _ as rows ->
      let c = List.length first in
      if c = 0 then invalid_arg "Imat.of_rows: empty row";
      if not (List.for_all (fun r -> List.length r = c) rows) then
        invalid_arg "Imat.of_rows: ragged rows";
      let a = Array.of_list (List.map Array.of_list rows) in
      { r = Array.length a; c; a }

let of_array a =
  if Array.length a = 0 then invalid_arg "Imat.of_array: empty";
  let c = Array.length a.(0) in
  if c = 0 then invalid_arg "Imat.of_array: empty row";
  if not (Array.for_all (fun row -> Array.length row = c) a) then
    invalid_arg "Imat.of_array: ragged rows";
  { r = Array.length a; c; a = Array.map Array.copy a }

let to_rows m = Array.to_list (Array.map Array.to_list m.a)
let rows m = m.r
let cols m = m.c
let get m i j = m.a.(i).(j)
let row m i = Array.copy m.a.(i)
let col m j = Array.init m.r (fun i -> m.a.(i).(j))
let row_list m = List.init m.r (row m)
let identity n = make n n (fun i j -> if i = j then 1 else 0)
let zero r c = make r c (fun _ _ -> 0)

let diag d =
  let n = Array.length d in
  make n n (fun i j -> if i = j then d.(i) else 0)

let is_square m = m.r = m.c

let equal m n =
  m.r = n.r && m.c = n.c
  && Array.for_all2 (fun a b -> Array.for_all2 ( = ) a b) m.a n.a

let transpose m = make m.c m.r (fun i j -> m.a.(j).(i))
let neg m = make m.r m.c (fun i j -> -m.a.(i).(j))

let check_same_dims m n name =
  if m.r <> n.r || m.c <> n.c then
    invalid_arg (Printf.sprintf "Imat.%s: dimension mismatch" name)

let add m n =
  check_same_dims m n "add";
  make m.r m.c (fun i j -> m.a.(i).(j) + n.a.(i).(j))

let sub m n =
  check_same_dims m n "sub";
  make m.r m.c (fun i j -> m.a.(i).(j) - n.a.(i).(j))

let mul m n =
  if m.c <> n.r then invalid_arg "Imat.mul: dimension mismatch";
  make m.r n.c (fun i j ->
      let acc = ref 0 in
      for k = 0 to m.c - 1 do
        acc := !acc + (m.a.(i).(k) * n.a.(k).(j))
      done;
      !acc)

let scale k m = make m.r m.c (fun i j -> k * m.a.(i).(j))

let mul_row v m =
  if Array.length v <> m.r then invalid_arg "Imat.mul_row: dimension mismatch";
  Array.init m.c (fun j ->
      let acc = ref 0 in
      for i = 0 to m.r - 1 do
        acc := !acc + (v.(i) * m.a.(i).(j))
      done;
      !acc)

let map f m = make m.r m.c (fun i j -> f m.a.(i).(j))

let replace_row m i v =
  if Array.length v <> m.c then
    invalid_arg "Imat.replace_row: dimension mismatch";
  if i < 0 || i >= m.r then invalid_arg "Imat.replace_row: bad row index";
  make m.r m.c (fun i' j -> if i' = i then v.(j) else m.a.(i').(j))

let select_cols m idxs =
  if idxs = [] then invalid_arg "Imat.select_cols: empty selection";
  let idxs = Array.of_list idxs in
  make m.r (Array.length idxs) (fun i j -> m.a.(i).(idxs.(j)))

let select_rows m idxs =
  if idxs = [] then invalid_arg "Imat.select_rows: empty selection";
  let idxs = Array.of_list idxs in
  make (Array.length idxs) m.c (fun i j -> m.a.(idxs.(i)).(j))

(* Fraction-free (Bareiss) elimination on a scratch copy.  Returns the
   number of pivots and, for square inputs, leaves the determinant in the
   bottom-right pivot.  [sign] tracks row swaps. *)
let bareiss (a : int array array) r c =
  let sign = ref 1 in
  let prev = ref 1 in
  let pr = ref 0 in
  let pivots = ref 0 in
  let pc = ref 0 in
  while !pr < r && !pc < c do
    (* Find a pivot in column !pc at or below row !pr. *)
    let piv = ref (-1) in
    (try
       for i = !pr to r - 1 do
         if a.(i).(!pc) <> 0 then begin
           piv := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !piv = -1 then incr pc
    else begin
      if !piv <> !pr then begin
        let tmp = a.(!piv) in
        a.(!piv) <- a.(!pr);
        a.(!pr) <- tmp;
        sign := - !sign
      end;
      let p = a.(!pr).(!pc) in
      for i = !pr + 1 to r - 1 do
        for j = !pc + 1 to c - 1 do
          a.(i).(j) <-
            ((a.(i).(j) * p) - (a.(i).(!pc) * a.(!pr).(j))) / !prev
        done;
        a.(i).(!pc) <- 0
      done;
      prev := p;
      incr pivots;
      incr pr;
      incr pc
    end
  done;
  (!pivots, !sign)

let scratch m = Array.map Array.copy m.a

let det m =
  if not (is_square m) then invalid_arg "Imat.det: not square";
  let a = scratch m in
  let pivots, sign = bareiss a m.r m.c in
  if pivots < m.r then 0 else sign * a.(m.r - 1).(m.c - 1)

let rank m =
  let a = scratch m in
  let pivots, _ = bareiss a m.r m.c in
  pivots

let is_unimodular m = is_square m && abs (det m) = 1

(* Greedy from the left: add a column whenever it increases the rank. *)
let max_independent_cols m =
  let acc = ref [] in
  let current_rank = ref 0 in
  for j = 0 to m.c - 1 do
    let cand = List.rev (j :: List.rev !acc) in
    let r = rank (select_cols m cand) in
    if r > !current_rank then begin
      acc := cand;
      current_rank := r
    end
  done;
  !acc

let max_independent_rows m =
  List.map Fun.id (max_independent_cols (transpose m))

let combinations n k =
  let rec go start k =
    if k = 0 then [ [] ]
    else
      List.concat
        (List.init (n - start - k + 1) (fun off ->
             let i = start + off in
             List.map (fun rest -> i :: rest) (go (i + 1) (k - 1))))
  in
  if k > n then [] else go 0 k

let gcd_maximal_minors m =
  let k = min m.r m.c in
  let row_sets = combinations m.r k and col_sets = combinations m.c k in
  List.fold_left
    (fun acc rs ->
      List.fold_left
        (fun acc cs ->
          Intmath.Int_math.gcd acc (det (select_cols (select_rows m rs) cs)))
        acc col_sets)
    0 row_sets

let has_zero_col m =
  let rec col_zero j i = i >= m.r || (m.a.(i).(j) = 0 && col_zero j (i + 1)) in
  let rec go j = j < m.c && (col_zero j 0 || go (j + 1)) in
  go 0

let drop_zero_cols m =
  let keep =
    List.filter
      (fun j -> Array.exists (fun row -> row.(j) <> 0) m.a)
      (List.init m.c Fun.id)
  in
  if keep = [] then invalid_arg "Imat.drop_zero_cols: all columns are zero";
  (select_cols m keep, keep)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i row ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "[%s]"
        (String.concat " " (List.map string_of_int (Array.to_list row))))
    m.a;
  Format.fprintf ppf "@]"

let to_string m = Format.asprintf "%a" pp m
