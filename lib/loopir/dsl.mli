(** Combinator DSL for building loop nests.

    Example — the paper's Example 2:
    {[
      let open Loopir.Dsl in
      let i = var 0 and j = var 1 in
      nest ~name:"example2"
        [ doall "i" 101 200; doall "j" 1 100 ]
        [
          write "A" [ i; j ];
          read "B" [ i + j; i - j - int 1 ];
          read "B" [ i + j + int 4; i - j + int 3 ];
        ]
    ]}

    Subscript expressions are affine: variables may be scaled by integer
    constants and added; multiplying two variables raises
    [Invalid_argument]. *)

type expr
(** An affine expression in the loop indices. *)

val var : int -> expr
(** [var k] is the [k]-th loop index (outermost is 0). *)

val int : int -> expr
val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : int -> expr -> expr
(** Constant scaling, e.g. [2 * var 0]. *)

val neg : expr -> expr

type ref_spec

val read : string -> expr list -> ref_spec
val write : string -> expr list -> ref_spec
val accumulate : string -> expr list -> ref_spec

val doall : string -> int -> int -> Nest.loop
val doseq : string -> int -> int -> Nest.loop

val nest :
  ?name:string -> ?seq:Nest.loop -> Nest.loop list -> ref_spec list -> Nest.t
(** Builds the nest, inferring [l] from the loop list and converting each
    subscript list into the [(G, a)] form. *)

val affine_of_exprs : nesting:int -> expr list -> Affine.t
(** Expose the conversion for tests. *)

val reference_of_spec : nesting:int -> ref_spec -> Reference.t
(** Convert one reference spec (used by the parser, which builds strided
    nests before normalization). *)
