open Loopir
open Partition
open Machine

type verdict = {
  nest_name : string;
  nprocs : int;
  policy : string;
  sim_footprints : int array;
  measured_footprints : int array;
  footprints_agree : bool;
  predicted_per_tile : int option;
  measured_max : int;
  write_races : (string * int) list;
  shared_accumulates : (string * int) list;
  reduction_arrays : string list;
  race_free : bool;
  deterministic : bool;
  values_match : bool option;
}

type elem_state = {
  array_name : string;
  mutable writer : int;  (** first writing processor *)
  mutable multi : bool;  (** written by more than one processor *)
  mutable plain : bool;  (** some write was a plain [Write] *)
}

(* One Doall pass over the assignment, classifying every element reached
   through a write-like reference. *)
let scan_writes compiled nest (assignment : Scheduling.assignment) =
  let written : (int, elem_state) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun (r : Reference.t) ->
      if Reference.is_write_like r then begin
        let addr = Exec.address compiled r in
        let plain = r.Reference.kind <> Reference.Accumulate in
        Array.iteri
          (fun p points ->
            List.iter
              (fun point ->
                let a = addr point in
                match Hashtbl.find_opt written a with
                | None ->
                    Hashtbl.add written a
                      {
                        array_name = r.Reference.array_name;
                        writer = p;
                        multi = false;
                        plain;
                      }
                | Some e ->
                    e.plain <- e.plain || plain;
                    if e.writer <> p then e.multi <- true)
              points)
          assignment
      end)
    nest.Nest.body;
  written

let cross_read_after_write compiled nest written
    (assignment : Scheduling.assignment) =
  List.exists
    (fun (r : Reference.t) ->
      (not (Reference.is_write_like r))
      &&
      let addr = Exec.address compiled r in
      let racy = ref false in
      Array.iteri
        (fun p points ->
          if not !racy then
            List.iter
              (fun point ->
                match Hashtbl.find_opt written (addr point) with
                | Some e when e.multi || e.writer <> p -> racy := true
                | Some _ | None -> ())
              points)
        assignment;
      !racy)
    nest.Nest.body

let bump tbl name =
  Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))

let per_array_counts written =
  let races = Hashtbl.create 7 and shared = Hashtbl.create 7 in
  Hashtbl.iter
    (fun _ e ->
      if e.multi then
        if e.plain then bump races e.array_name else bump shared e.array_name)
    written;
  let to_list tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  (to_list races, to_list shared)

let reduction_arrays (cost : Cost.t) =
  List.filter_map
    (fun (c : Cost.class_cost) ->
      if c.Cost.writes && c.Cost.null_dims <> [] then
        Some c.Cost.cls.Footprint.Uniform.array_name
      else None)
    cost.Cost.classes
  |> List.sort_uniq compare

let buffers_equal a b =
  Array.length a = Array.length b
  && (try
        Array.iteri
          (fun i x -> if x <> b.(i) then raise Exit)
          a;
        true
      with Exit -> false)

let with_pool_opt pool nprocs f =
  match pool with
  | Some p ->
      if Pool.size p <> nprocs then
        invalid_arg "Validate: pool size <> assignment width";
      f p
  | None -> Pool.with_pool nprocs f

let check_assignment ?pool ?(policy = "static") ?predicted_per_tile nest
    (assignment : Scheduling.assignment) =
  let nprocs = Array.length assignment in
  if nprocs < 1 then invalid_arg "Validate: empty assignment";
  let compiled = Exec.compile nest in
  let cost = Cost.of_nest nest in
  let written = scan_writes compiled nest assignment in
  let write_races, shared_accumulates = per_array_counts written in
  let race_free = write_races = [] in
  let deterministic =
    race_free
    && shared_accumulates = []
    && not (cross_read_after_write compiled nest written assignment)
  in
  (* Footprints are per-Doall quantities: one outer step on both sides
     keeps the comparison exact and cheap (re-execution touches no new
     elements). *)
  let sim =
    Sim.run_assignment nest ~per_proc:assignment
      { Sim.default with Sim.seq_steps = Some 1 }
  in
  let sim_footprints = Sim.footprints sim in
  with_pool_opt pool nprocs (fun pool ->
      let inst =
        Exec.measure pool compiled
          (Exec.static_of_assignment assignment)
          ~steps:1 ~mode:Measure.Auto
      in
      let measured_footprints = inst.Exec.footprints in
      let footprints_agree =
        if inst.Exec.exact then measured_footprints = sim_footprints
        else
          Array.for_all2
            (fun a b ->
              let a = float_of_int a and b = float_of_int b in
              Float.abs (a -. b) <= 0.02 *. Float.max 1.0 b)
            measured_footprints sim_footprints
      in
      let values_match =
        if deterministic then
          Some (buffers_equal inst.Exec.buffer (Exec.sequential compiled ~steps:1))
        else None
      in
      {
        nest_name = nest.Nest.name;
        nprocs;
        policy;
        sim_footprints;
        measured_footprints;
        footprints_agree;
        predicted_per_tile;
        measured_max = Array.fold_left max 0 measured_footprints;
        write_races;
        shared_accumulates;
        reduction_arrays = reduction_arrays cost;
        race_free;
        deterministic;
        values_match;
      })

let check_schedule ?pool (schedule : Codegen.schedule) =
  let nest = schedule.Codegen.nest in
  let cost = Cost.of_nest nest in
  check_assignment ?pool ~policy:"tiled"
    ~predicted_per_tile:(Cost.misses_per_tile cost schedule.Codegen.tile)
    nest
    (Scheduling.of_schedule schedule)

let ok v =
  v.race_free && v.footprints_agree
  && match v.values_match with Some false -> false | Some true | None -> true

let pp ppf v =
  Format.fprintf ppf "@[<v>validation of %s (%s, %d procs):@," v.nest_name
    v.policy v.nprocs;
  Format.fprintf ppf "  runtime footprints = simulator footprints: %b@,"
    v.footprints_agree;
  (match v.predicted_per_tile with
  | Some predicted ->
      Format.fprintf ppf "  model predicted %d per tile; measured max %d@,"
        predicted v.measured_max
  | None -> Format.fprintf ppf "  measured max footprint %d@," v.measured_max);
  (match v.write_races with
  | [] -> Format.fprintf ppf "  write races: none@,"
  | races ->
      Format.fprintf ppf "  WRITE RACES:%s@,"
        (String.concat ""
           (List.map
              (fun (a, n) -> Printf.sprintf " %s(%d elements)" a n)
              races)));
  (match v.shared_accumulates with
  | [] -> ()
  | shared ->
      Format.fprintf ppf "  contended atomic accumulates:%s%s@,"
        (String.concat ""
           (List.map
              (fun (a, n) -> Printf.sprintf " %s(%d elements)" a n)
              shared))
        (match v.reduction_arrays with
        | [] -> ""
        | rs -> " - predicted by cost classes " ^ String.concat "," rs));
  (match v.values_match with
  | Some b -> Format.fprintf ppf "  deterministic: values match sequential: %b@," b
  | None -> Format.fprintf ppf "  nondeterministic order (by design): value check skipped@,");
  Format.fprintf ppf "  verdict: %s@]" (if ok v then "OK" else "FAILED")
