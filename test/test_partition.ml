(* Tests for tiles, the cost model, the rectangular and parallelepiped
   optimizers (Examples 2, 3, 8, 9, 10), code generation and data
   placement. *)

open Intmath
open Matrixkit
open Loopir
open Partition

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Tile                                                                *)
(* ------------------------------------------------------------------ *)

let test_tile_rect () =
  let t = Tile.rect [| 4; 5 |] in
  check "nesting" 2 (Tile.nesting t);
  Alcotest.(check (array int)) "lambda" [| 3; 4 |] (Tile.lambda t);
  Alcotest.check
    (Alcotest.testable Rat.pp Rat.equal)
    "volume" (Rat.of_int 20) (Tile.volume t);
  check "iterations" 20 (List.length (Tile.iterations t));
  checkb "contains origin" true (Tile.contains t [| 0; 0 |]);
  checkb "half open" false (Tile.contains t [| 4; 0 |]);
  Alcotest.(check (array int))
    "tile coords" [| 1; -1 |]
    (Tile.tile_coords t [| 5; -2 |])

let test_tile_pped () =
  let t = Tile.pped (Imat.of_rows [ [ 2; 0 ]; [ 1; 3 ] ]) in
  Alcotest.check
    (Alcotest.testable Rat.pp Rat.equal)
    "volume" (Rat.of_int 6) (Tile.volume t);
  check "iteration count = |det|" 6 (List.length (Tile.iterations t));
  checkb "rejects singular" true
    (try
       ignore (Tile.pped (Imat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
       false
     with Invalid_argument _ -> true)

let test_tile_pped_tiles_plane () =
  (* The half-open tiles must partition the plane: every point belongs to
     exactly the tile of its coordinates. *)
  let t = Tile.pped (Imat.of_rows [ [ 2; 1 ]; [ -1; 2 ] ]) in
  let count = ref 0 in
  for x = -4 to 4 do
    for y = -4 to 4 do
      let c = Tile.tile_coords t [| x; y |] in
      if Array.for_all (fun v -> v = 0) c then incr count
    done
  done;
  (* |det| = 5: each tile holds exactly 5 lattice points. *)
  check "half-open tile holds det points" 5 !count

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let ex8 = Loopart.Programs.example8 ~n:60 ()
let ex2 = Loopart.Programs.example2 ()

let test_cost_classes () =
  let cost = Cost.of_nest ex8 in
  check "two classes (A and B)" 2 (List.length cost.Cost.classes);
  Alcotest.(check string)
    "objective polynomial" "2*x0*x1*x2 + 2*x1*x2 + 3*x0*x2 + 4*x0*x1"
    (Mpoly.to_string cost.Cost.objective);
  Alcotest.(check string)
    "traffic polynomial" "2*x1*x2 + 3*x0*x2 + 4*x0*x1"
    (Mpoly.to_string cost.Cost.total_traffic)

let test_cost_misses_per_tile () =
  let cost = Cost.of_nest ex2 in
  check "column tile misses (paper: 104 + 100)" 204
    (Cost.misses_per_tile cost (Tile.rect [| 100; 1 |]));
  check "square tile misses (paper: 140 + 100)" 240
    (Cost.misses_per_tile cost (Tile.rect [| 10; 10 |]));
  check "column traffic" 4
    (Cost.traffic_per_tile cost (Tile.rect [| 100; 1 |]))

let test_cost_sync_weight () =
  let mm = Loopart.Programs.matmul ~n:8 () in
  let cost = Cost.of_nest mm in
  let c_class =
    List.find
      (fun c -> c.Cost.cls.Footprint.Uniform.array_name = "C")
      cost.Cost.classes
  in
  check "accumulate class weighted" Cost.sync_cost_factor
    c_class.Cost.sync_weight

let test_cost_line_adjusted () =
  (* relax_inplace has identity G: the contiguous loop dim is j (last
     data dimension).  Lines of 8 divide the j-dependence. *)
  let cost = Cost.of_nest (Loopart.Programs.relax_inplace ~n:33 ~steps:1 ()) in
  let plain = cost.Cost.objective in
  let adjusted = Cost.line_adjusted_objective cost ~line_size:8 in
  checkb "line_size 1 is identity" true
    (Mpoly.equal (Cost.line_adjusted_objective cost ~line_size:1) plain);
  (* At tile 16x16: plain counts elements, adjusted counts lines. *)
  let at poly x = Mpoly.eval_float poly [| float_of_int x; 16.0 |] in
  checkb "lines cheaper than elements" true (at adjusted 16 < at plain 16);
  (* Wide lines make elongating along j cheaper than elongating along i:
     adjusted cost at 8x32 beats 32x8. *)
  let at2 poly (x, y) =
    Mpoly.eval_float poly [| float_of_int x; float_of_int y |]
  in
  checkb "prefers contiguous elongation" true
    (at2 adjusted (8, 32) < at2 adjusted (32, 8))

(* ------------------------------------------------------------------ *)
(* Rectangular optimizer                                               *)
(* ------------------------------------------------------------------ *)

let test_example8_ratio () =
  let cost = Cost.of_nest ex8 in
  (match Rectangular.aspect_ratio cost with
  | None -> Alcotest.fail "closed form applies"
  | Some cs ->
      Alcotest.(check string) "2:3:4" "2, 3, 4"
        (String.concat ", " (List.map Rat.to_string (Array.to_list cs))));
  (* The continuous optimum also lands on 2:3:4. *)
  let x =
    Rectangular.continuous_optimum cost
      ~volume:(60.0 *. 60.0 *. 60.0 /. 8.0)
      ~extents:[| 60; 60; 60 |]
  in
  Alcotest.(check (float 0.05)) "x1/x0 = 3/2" 1.5 (x.(1) /. x.(0));
  Alcotest.(check (float 0.05)) "x2/x0 = 2" 2.0 (x.(2) /. x.(0))

let test_example2_partition () =
  let cost = Cost.of_nest ex2 in
  let r = Rectangular.optimize cost ~nprocs:100 in
  Alcotest.(check (array int)) "column tiles win" [| 100; 1 |] r.Rectangular.sizes;
  check "predicted misses 204" 204 r.Rectangular.predicted_misses_per_tile

let test_example10_optimum () =
  let cost = Cost.of_nest (Loopart.Programs.example10 ~n:60 ()) in
  (* Objective (beyond the fixed volume terms): 2 x0 + 3 x1; with
     x0 x1 = V the optimum satisfies 2 x0 = 3 x1. *)
  let x =
    Rectangular.continuous_optimum cost ~volume:360.0 ~extents:[| 60; 60 |]
  in
  Alcotest.(check (float 0.05))
    "2(Li+1) = 3(Lj+1)" 1.0
    (2.0 *. x.(0) /. (3.0 *. x.(1)))

let test_example9_optimum () =
  (* NOTE: the paper's text prints 4 L11 = 6 L22 here, but its own
     Theorem 4 arithmetic (and exhaustive enumeration, see
     EXPERIMENTS.md) gives traffic 4 x0 + 4 x1, i.e. square tiles. *)
  let cost = Cost.of_nest (Loopart.Programs.example9 ~n:60 ()) in
  let x =
    Rectangular.continuous_optimum cost ~volume:360.0 ~extents:[| 60; 60 |]
  in
  Alcotest.(check (float 0.05)) "square optimum" 1.0 (x.(0) /. x.(1))

let test_matmul_keeps_reduction_whole () =
  (* The writer multiplier makes splitting the k (reduction) dimension
     visibly expensive: the chosen grid must not split it. *)
  let cost = Cost.of_nest (Loopart.Programs.matmul ~n:24 ()) in
  let r = Rectangular.optimize cost ~nprocs:16 in
  check "k unsplit" 1 r.Rectangular.grid.(2);
  check "square blocks" r.Rectangular.sizes.(0) r.Rectangular.sizes.(1);
  (* And the simulator confirms: no coherence at all. *)
  let sched =
    Codegen.make (Loopart.Programs.matmul ~n:24 ()) r.Rectangular.tile
      ~nprocs:16
  in
  let sim = Machine.Sim.run sched Machine.Sim.default in
  check "zero coherence" 0 sim.Machine.Sim.stats.Machine.Stats.coherence_misses

let test_grid_feasibility () =
  let cost = Cost.of_nest ex8 in
  let r = Rectangular.optimize cost ~nprocs:8 in
  check "grid covers processors" 8
    (Array.fold_left ( * ) 1 r.Rectangular.grid);
  Array.iteri
    (fun k p ->
      checkb "tile sizes cover extents" true
        (p * r.Rectangular.sizes.(k) >= 60))
    r.Rectangular.grid;
  checkb "too many processors rejected" true
    (try
       ignore (Rectangular.optimize (Cost.of_nest ex2) ~nprocs:1_000_003);
       false
     with Invalid_argument _ -> true)

let test_optimizer_beats_naive () =
  (* The chosen tile should never be worse than trivial row/column
     partitions. *)
  List.iter
    (fun (name, nest, nprocs) ->
      let cost = Cost.of_nest nest in
      let r = Rectangular.optimize cost ~nprocs in
      let chosen = Cost.misses_per_tile cost r.Rectangular.tile in
      let extents = Nest.extents nest in
      let l = Array.length extents in
      List.iter
        (fun k ->
          let sizes =
            Array.mapi
              (fun k' n ->
                if k' = k then max 1 (Int_math.ceil_div n nprocs) else n)
              extents
          in
          if
            Array.for_all2
              (fun s n -> s <= n)
              sizes extents
            && Array.fold_left ( * ) 1
                 (Array.mapi
                    (fun k' n -> Int_math.ceil_div n sizes.(k'))
                    extents)
               >= nprocs
          then
            checkb
              (Printf.sprintf "%s: chosen <= slab along dim %d" name k)
              true
              (chosen <= Cost.misses_per_tile cost (Tile.rect sizes)))
        (List.init l Fun.id))
    [
      ("example2", ex2, 100);
      ("example8", ex8, 8);
      ("example9", Loopart.Programs.example9 ~n:60 (), 36);
    ]

(* ------------------------------------------------------------------ *)
(* Parallelepiped optimizer                                            *)
(* ------------------------------------------------------------------ *)

let test_skewed_example3 () =
  (* Example 3: parallelogram tiles along (1,3) beat rectangles. *)
  let cost = Cost.of_nest (Loopart.Programs.example3 ()) in
  match Skewed.optimize cost ~nprocs:10 with
  | None -> Alcotest.fail "engine applies to example 3"
  | Some r ->
      checkb "improves on rectangular" true r.Skewed.improves_on_rect;
      checkb "continuous cost below rect cost" true
        (r.Skewed.continuous_cost < r.Skewed.rect_cost)

let test_skewed_unsupported () =
  (* matmul has projection references: engine must decline. *)
  let cost = Cost.of_nest (Loopart.Programs.matmul ~n:8 ()) in
  checkb "returns None" true (Skewed.optimize cost ~nprocs:4 = None)

let test_skewed_volume_constraint () =
  let cost = Cost.of_nest (Loopart.Programs.example3 ~n:40 ()) in
  match Skewed.optimize cost ~nprocs:8 with
  | None -> Alcotest.fail "engine applies"
  | Some r ->
      let v = Rat.to_float (Tile.volume r.Skewed.tile) in
      let target = 40.0 *. 40.0 /. 8.0 in
      checkb "volume within 25% of target" true
        (abs_float (v -. target) /. target < 0.25)

(* ------------------------------------------------------------------ *)
(* Codegen                                                             *)
(* ------------------------------------------------------------------ *)

let test_codegen_rect () =
  let sched = Codegen.make ex2 (Tile.rect [| 100; 1 |]) ~nprocs:100 in
  check "tiles" 100 (Codegen.num_tiles sched);
  let per = Codegen.iterations_by_proc sched in
  check "procs" 100 (Array.length per);
  Array.iter (fun l -> check "balanced" 100 (List.length l)) per;
  (* Every iteration appears exactly once. *)
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 per in
  check "covers space" (Nest.iterations ex2) total;
  let mn, mx, imb = Codegen.load_balance sched in
  check "min" 100 mn;
  check "max" 100 mx;
  Alcotest.(check (float 1e-9)) "imbalance" 1.0 imb

let test_codegen_ranges () =
  let sched = Codegen.make ex2 (Tile.rect [| 30; 40 |]) ~nprocs:12 in
  let ranges = Codegen.rect_tile_ranges sched in
  check "4x3 tiles" 12 (List.length ranges);
  (* Ranges are clipped to the space. *)
  List.iter
    (fun r ->
      Array.iteri
        (fun k (lo, hi) ->
          let blo, bhi = (Nest.bounds ex2).(k) in
          checkb "clipped" true (lo >= blo && hi <= bhi && lo <= hi))
        r)
    ranges

let test_codegen_pped_partition () =
  let nest =
    let open Dsl in
    let i = var 0 and j = var 1 in
    nest ~name:"small" [ doall "i" 0 9; doall "j" 0 9 ]
      [ write "A" [ i; j ]; read "B" [ i + j; i - j ] ]
  in
  let sched =
    Codegen.make nest (Tile.pped (Imat.of_rows [ [ 5; 0 ]; [ 2; 5 ] ])) ~nprocs:4
  in
  let per = Codegen.iterations_by_proc sched in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 per in
  check "pped covers space exactly once" 100 total

let test_emit_pseudocode () =
  let sched = Codegen.make ex2 (Tile.rect [| 100; 1 |]) ~nprocs:100 in
  let s = Codegen.emit_pseudocode sched in
  checkb "mentions SPMD" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Data partitioning                                                   *)
(* ------------------------------------------------------------------ *)

let test_aligned_placement () =
  let cost = Cost.of_nest ex2 in
  let sched = Codegen.make ex2 (Tile.rect [| 100; 1 |]) ~nprocs:100 in
  let pl = Data_partition.aligned sched cost in
  let own = Codegen.owner sched in
  (* A[i,j] written by iteration (i,j): its home must be the owner. *)
  let ok = ref true in
  for i = 101 to 140 do
    for j = 1 to 40 do
      if pl.Data_partition.home "A" [| i; j |] <> own [| i; j |] then
        ok := false
    done
  done;
  checkb "A aligned with its writer" true !ok

let test_data_objective () =
  (* Symmetric offsets: a+ = max-min spread, so data and loop ratios
     coincide. *)
  let cost = Cost.of_nest (Loopart.Programs.relax_inplace ~n:33 ~steps:1 ()) in
  let loop_ratio =
    Rectangular.continuous_optimum cost ~volume:256.0 ~extents:[| 32; 32 |]
  in
  let data_ratio = Data_partition.optimal_data_ratio cost ~nprocs:4 in
  Alcotest.(check (float 0.05))
    "ratios agree for symmetric stencils"
    (loop_ratio.(0) /. loop_ratio.(1))
    (data_ratio.(0) /. data_ratio.(1));
  (* Asymmetric many-reference class: a+ exceeds the max-min spread, so
     the data objective dominates the loop objective pointwise. *)
  let nest =
    let open Dsl in
    let i = var 0 and j = var 1 in
    nest ~name:"asym"
      [ doall "i" 1 32; doall "j" 1 32 ]
      [
        write "A" [ i; j ];
        read "A" [ i - int 1; j ];
        read "A" [ i + int 1; j ];
        read "A" [ i + int 2; j ];
        read "A" [ i + int 3; j ];
      ]
  in
  let cost2 = Cost.of_nest nest in
  let dp = Data_partition.data_objective cost2 in
  let at poly = Mpoly.eval_float poly [| 8.0; 8.0 |] in
  checkb "a+ objective >= max-min objective" true
    (at dp >= at cost2.Cost.objective)

let test_round_robin_and_block () =
  let pl = Data_partition.round_robin ~nprocs:7 in
  let h = pl.Data_partition.home "A" [| 3; 4 |] in
  checkb "stable" true (h = pl.Data_partition.home "A" [| 3; 4 |]);
  checkb "in range" true (h >= 0 && h < 7);
  let br = Data_partition.block_row ~nprocs:4 ~rows:100 in
  check "row 0 -> proc 0" 0 (br.Data_partition.home "A" [| 0; 5 |]);
  check "row 99 -> proc 3" 3 (br.Data_partition.home "A" [| 99; 5 |])

(* ------------------------------------------------------------------ *)
(* Capacity blocking (Section 2.2)                                     *)
(* ------------------------------------------------------------------ *)

let test_capacity_subtile () =
  let cost = Cost.of_nest (Loopart.Programs.matmul ~n:24 ()) in
  let tile = Tile.rect [| 6; 6; 24 |] in
  checkb "does not fit in 128" false (Capacity.fits cost tile ~capacity:128);
  let sub = Capacity.subtile cost tile ~capacity:128 in
  checkb "subtile fits" true (Capacity.fits cost sub ~capacity:128);
  checkb "already-fitting tile unchanged" true
    (Tile.equal tile (Capacity.subtile cost tile ~capacity:10_000));
  checkb "impossible capacity rejected" true
    (try
       ignore (Capacity.subtile cost tile ~capacity:1);
       false
     with Invalid_argument _ -> true)

let test_capacity_blocked_order () =
  let nest = Loopart.Programs.matmul ~n:12 () in
  let cost = Cost.of_nest nest in
  let tile = (Rectangular.optimize cost ~nprocs:4).Rectangular.tile in
  let sched = Codegen.make nest tile ~nprocs:4 in
  let sub = Capacity.subtile cost tile ~capacity:64 in
  let blocked = Capacity.blocked_iterations sched ~subtile:sub in
  (* Same iterations, different order. *)
  let plain = Codegen.iterations_by_proc sched in
  Array.iteri
    (fun p l ->
      check "same count" (List.length plain.(p)) (List.length l);
      checkb "same set" true
        (List.sort compare (List.map Array.to_list l)
        = List.sort compare (List.map Array.to_list plain.(p))))
    blocked;
  (* Blocking reduces replacement misses on a small cache. *)
  let run per_proc =
    (Machine.Sim.run_assignment nest ~per_proc
       {
         Machine.Sim.default with
         Machine.Sim.geometry = Machine.Cache.Finite { sets = 16; ways = 4 };
       })
      .Machine.Sim.stats.Machine.Stats.replacement_misses
  in
  checkb "blocked replaces less" true (run blocked <= run plain)

(* ------------------------------------------------------------------ *)
(* Run-time scheduling baselines                                       *)
(* ------------------------------------------------------------------ *)

let test_scheduling_coverage () =
  let nest = Loopart.Programs.relax_inplace ~n:17 ~steps:1 () in
  let n_iters = Nest.iterations nest in
  List.iter
    (fun (name, a) ->
      check (name ^ " covers the space") n_iters (Scheduling.total a);
      check (name ^ " uses 4 procs") 4 (Array.length a))
    [
      ("cyclic", Scheduling.cyclic nest ~nprocs:4);
      ("block-cyclic", Scheduling.block_cyclic nest ~nprocs:4 ~chunk:5);
      ("gss", Scheduling.guided_self_scheduling nest ~nprocs:4);
    ]

let test_scheduling_cyclic_balance () =
  let nest = Loopart.Programs.relax_inplace ~n:17 ~steps:1 () in
  let a = Scheduling.cyclic nest ~nprocs:4 in
  check "cyclic is perfectly balanced" 64 (Scheduling.max_load a)

let test_scheduling_gss_decreasing () =
  (* GSS chunk sizes decrease: first grab is ceil(R/P). *)
  let nest = Loopart.Programs.relax_inplace ~n:17 ~steps:1 () in
  let a = Scheduling.guided_self_scheduling nest ~nprocs:4 in
  (* 256 iterations: first chunk 64 goes to proc 0; its next grab is much
     smaller, so proc 0 holds more than a fair share overall but not all. *)
  let load0 = List.length a.(0) in
  checkb "first processor gets the big first chunk" true (load0 >= 64);
  checkb "but not everything" true (load0 < 256)

let test_scheduling_locality_ordering () =
  (* Tiles beat GSS beats cyclic on total footprint for a stencil. *)
  let nest = Loopart.Programs.relax_inplace ~n:33 ~steps:2 () in
  let cost = Cost.of_nest nest in
  let tiled =
    Scheduling.of_schedule
      (Codegen.make nest (Rectangular.optimize cost ~nprocs:4).Rectangular.tile
         ~nprocs:4)
  in
  let footprint a =
    let r = Machine.Sim.run_assignment nest ~per_proc:a Machine.Sim.default in
    Array.fold_left ( + ) 0 (Machine.Sim.footprints r)
  in
  let f_tiled = footprint tiled in
  let f_gss = footprint (Scheduling.guided_self_scheduling nest ~nprocs:4) in
  let f_cyc = footprint (Scheduling.cyclic nest ~nprocs:4) in
  checkb "tiles <= gss" true (f_tiled <= f_gss);
  checkb "gss < cyclic" true (f_gss < f_cyc)

(* Property: every run-time policy enumerates each iteration exactly
   once - the right total AND no duplicates across processors. *)
let prop_scheduling_exact_cover =
  QCheck2.Test.make ~name:"run-time policies cover each iteration once"
    ~count:40
    QCheck2.Gen.(triple (int_range 6 20) (int_range 1 7) (int_range 1 9))
    (fun (n, nprocs, chunk) ->
      let nest = Loopart.Programs.relax_inplace ~n ~steps:1 () in
      let exact_cover a =
        let seen = Hashtbl.create 997 in
        let dup = ref false in
        Array.iter
          (List.iter (fun i ->
               let key = Array.to_list i in
               if Hashtbl.mem seen key then dup := true
               else Hashtbl.replace seen key ()))
          a;
        (not !dup)
        && Hashtbl.length seen = Nest.iterations nest
        && Scheduling.total a = Nest.iterations nest
        && Array.length a = nprocs
      in
      exact_cover (Scheduling.cyclic nest ~nprocs)
      && exact_cover (Scheduling.block_cyclic nest ~nprocs ~chunk)
      && exact_cover (Scheduling.guided_self_scheduling nest ~nprocs))

let test_of_schedule_matches_owner () =
  (* The tiled assignment must be exactly the owner map, list by list. *)
  let nest = Loopart.Programs.example2 ~n:30 () in
  let sched = Codegen.make nest (Tile.rect [| 7; 5 |]) ~nprocs:5 in
  let a = Scheduling.of_schedule sched in
  let own = Codegen.owner sched in
  Array.iteri
    (fun p points ->
      List.iter (fun i -> check "of_schedule agrees with owner" p (own i))
        points)
    a;
  check "and covers the space" (Nest.iterations nest) (Scheduling.total a)

let () =
  Alcotest.run "partition"
    [
      ( "tile",
        [
          Alcotest.test_case "rect" `Quick test_tile_rect;
          Alcotest.test_case "pped" `Quick test_tile_pped;
          Alcotest.test_case "pped tiles the plane" `Quick
            test_tile_pped_tiles_plane;
        ] );
      ( "cost",
        [
          Alcotest.test_case "classes and polynomials" `Quick
            test_cost_classes;
          Alcotest.test_case "misses per tile (example 2)" `Quick
            test_cost_misses_per_tile;
          Alcotest.test_case "sync weighting" `Quick test_cost_sync_weight;
          Alcotest.test_case "line-adjusted objective" `Quick
            test_cost_line_adjusted;
        ] );
      ( "rectangular",
        [
          Alcotest.test_case "example 8 ratio 2:3:4" `Quick
            test_example8_ratio;
          Alcotest.test_case "example 2 partition" `Quick
            test_example2_partition;
          Alcotest.test_case "example 10 optimum" `Quick
            test_example10_optimum;
          Alcotest.test_case "example 9 optimum" `Quick test_example9_optimum;
          Alcotest.test_case "matmul reduction kept whole" `Quick
            test_matmul_keeps_reduction_whole;
          Alcotest.test_case "grid feasibility" `Quick test_grid_feasibility;
          Alcotest.test_case "beats naive slabs" `Quick
            test_optimizer_beats_naive;
        ] );
      ( "skewed",
        [
          Alcotest.test_case "example 3 parallelogram" `Quick
            test_skewed_example3;
          Alcotest.test_case "declines projections" `Quick
            test_skewed_unsupported;
          Alcotest.test_case "volume constraint" `Quick
            test_skewed_volume_constraint;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "rect schedule" `Quick test_codegen_rect;
          Alcotest.test_case "tile ranges" `Quick test_codegen_ranges;
          Alcotest.test_case "pped schedule" `Quick
            test_codegen_pped_partition;
          Alcotest.test_case "pseudocode" `Quick test_emit_pseudocode;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "subtile" `Quick test_capacity_subtile;
          Alcotest.test_case "blocked order" `Quick
            test_capacity_blocked_order;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "coverage" `Quick test_scheduling_coverage;
          Alcotest.test_case "cyclic balance" `Quick
            test_scheduling_cyclic_balance;
          Alcotest.test_case "gss chunks" `Quick test_scheduling_gss_decreasing;
          Alcotest.test_case "locality ordering" `Quick
            test_scheduling_locality_ordering;
          Alcotest.test_case "of_schedule = owner" `Quick
            test_of_schedule_matches_owner;
          QCheck_alcotest.to_alcotest prop_scheduling_exact_cover;
        ] );
      ( "data placement",
        [
          Alcotest.test_case "aligned" `Quick test_aligned_placement;
          Alcotest.test_case "data objective (footnote 2)" `Quick
            test_data_objective;
          Alcotest.test_case "round robin / block row" `Quick
            test_round_robin_and_block;
        ] );
    ]
