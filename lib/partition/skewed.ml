open Matrixkit
open Loopir
open Footprint

type result = {
  l : Imat.t;
  tile : Tile.t;
  continuous_l : float array array;
  continuous_cost : float;
  rounded_cost : float;
  rect_cost : float;
  improves_on_rect : bool;
}

let class_index (c : Cost.class_cost) =
  let g = c.Cost.cls.Uniform.g in
  let red = Size.reduce ~g ~spread:(Uniform.spread c.Cost.cls) in
  abs (Imat.det red.Size.g_reduced)

let objective cost l =
  try
    List.fold_left
      (fun acc (c : Cost.class_cost) ->
        let g = c.Cost.cls.Uniform.g in
        let spread = Uniform.spread c.Cost.cls in
        let idx = class_index c in
        if idx = 0 then raise (Size.Unsupported "singular reduced G");
        let v = Size.pped_cumulative_float ~l ~g ~spread /. float_of_int idx in
        acc +. (float_of_int c.Cost.sync_weight *. v))
      0.0 cost.Cost.classes
  with Size.Unsupported _ -> infinity

let copy_mat m = Array.map Array.copy m

(* The tile must fit inside the iteration space: the bounding box of the
   tile (sum of |edge| per dimension) may not exceed the extents.  Without
   this constraint the solver degenerates to infinitely long, thin tiles
   along a communication-free direction. *)
let box_penalty ~extents l =
  let n = Array.length l in
  let pen = ref 0.0 in
  for k = 0 to n - 1 do
    let bbox = ref 0.0 in
    for i = 0 to n - 1 do
      bbox := !bbox +. abs_float l.(i).(k)
    done;
    let ratio = !bbox /. float_of_int extents.(k) in
    if ratio > 1.0 then pen := !pen +. ((ratio -. 1.0) ** 2.0)
  done;
  !pen

let renormalize ~volume l =
  let n = Array.length l in
  let d = abs_float (Size.float_det l) in
  if d < 1e-9 then None
  else begin
    let s = (volume /. d) ** (1.0 /. float_of_int n) in
    Some (Array.map (Array.map (fun x -> x *. s)) l)
  end

let eval cost ~volume l =
  match renormalize ~volume l with
  | None -> infinity
  | Some l' ->
      let extents = Nest.extents cost.Cost.nest in
      let base = objective cost l' in
      base *. (1.0 +. (100.0 *. box_penalty ~extents l'))

(* Golden-section over one entry of L; all evaluations renormalize the
   determinant, so the search is effectively over tile shape. *)
let refine_entry cost ~volume l i j =
  let base = l.(i).(j) in
  let width = 2.0 +. (2.0 *. abs_float base) in
  let f t =
    let m = copy_mat l in
    m.(i).(j) <- t;
    eval cost ~volume m
  in
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref (base -. width) and b = ref (base +. width) in
  let c = ref (!b -. (phi *. (!b -. !a))) in
  let d = ref (!a +. (phi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  for _ = 1 to 60 do
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (phi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (phi *. (!b -. !a));
      fd := f !d
    end
  done;
  let t = (!a +. !b) /. 2.0 in
  if f t < eval cost ~volume l -. 1e-12 then l.(i).(j) <- t

let descend cost ~volume l =
  let n = Array.length l in
  let prev = ref infinity in
  let continue = ref true in
  let rounds = ref 0 in
  while !continue && !rounds < 25 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        refine_entry cost ~volume l i j
      done
    done;
    let v = eval cost ~volume l in
    if !prev -. v < 1e-7 *. (1.0 +. abs_float v) then continue := false;
    prev := v;
    incr rounds
  done;
  !prev

let round_to_int ~volume l =
  (* Round entries; small entries snap to the nearest integer, then the
     result is checked for nonsingularity. *)
  match renormalize ~volume l with
  | None -> None
  | Some l' ->
      let n = Array.length l' in
      let m =
        Imat.make n n (fun i j -> int_of_float (Float.round l'.(i).(j)))
      in
      if Imat.det m = 0 then None else Some m

let optimize cost ~nprocs =
  let nest = cost.Cost.nest in
  let l_dim = Nest.nesting nest in
  let volume =
    float_of_int (Nest.iterations nest) /. float_of_int nprocs
  in
  (* Bail out early when some class is outside the engine's domain. *)
  if objective cost (Array.init l_dim (fun i ->
          Array.init l_dim (fun j -> if i = j then 1.0 else 0.0)))
     = infinity
  then None
  else begin
    let extents = Nest.extents nest in
    let rect_sizes =
      Rectangular.continuous_optimum cost ~volume ~extents
    in
    let diag_start =
      Array.init l_dim (fun i ->
          Array.init l_dim (fun j -> if i = j then rect_sizes.(i) else 0.0))
    in
    let skew_starts =
      (* Unit skews of the rectangular start in every off-diagonal
         direction and orientation. *)
      List.concat_map
        (fun (i, j) ->
          List.map
            (fun sgn ->
              let m = copy_mat diag_start in
              m.(i).(j) <- sgn *. rect_sizes.(i);
              m)
            [ 1.0; -1.0 ])
        (List.concat_map
           (fun i ->
             List.filter_map
               (fun j -> if i <> j then Some (i, j) else None)
               (List.init l_dim Fun.id))
           (List.init l_dim Fun.id))
    in
    let best = ref None in
    List.iter
      (fun start ->
        let l = copy_mat start in
        let v = descend cost ~volume l in
        match !best with
        | Some (_, bv) when bv <= v -> ()
        | _ -> best := Some (l, v))
      (diag_start :: skew_starts);
    match !best with
    | None -> None
    | Some (l, continuous_cost) -> (
        let l = Option.value ~default:l (renormalize ~volume l) in
        match round_to_int ~volume l with
        | None -> None
        | Some li ->
            let rounded_cost =
              objective cost
                (Array.init l_dim (fun i ->
                     Array.init l_dim (fun j ->
                         float_of_int (Imat.get li i j))))
            in
            let rect =
              objective cost
                (Array.init l_dim (fun i ->
                     Array.init l_dim (fun j ->
                         if i = j then rect_sizes.(i) else 0.0)))
            in
            Some
              {
                l = li;
                tile = Tile.pped li;
                continuous_l = l;
                continuous_cost;
                rounded_cost;
                rect_cost = rect;
                improves_on_rect = continuous_cost < rect -. 1e-6;
              })
  end

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>L =@,%a@,continuous cost: %.2f@,rounded cost: %.2f@,best \
     rectangular cost: %.2f@,parallelepiped improves: %b@]"
    Imat.pp r.l r.continuous_cost r.rounded_cost r.rect_cost
    r.improves_on_rect
