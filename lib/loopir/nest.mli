(** Loop nests in the shape of Figure 1: a (possibly empty) sequential
    outer loop around a perfect nest of [Doall] loops whose body is a set
    of affine array references.

    The framework assumes unit strides and a rectangular iteration space;
    [make] enforces both.  The optional [Doseq] outer loop is the paper's
    Figure 9 construction, used to expose steady-state coherence traffic. *)

type loop = { var : string; lower : int; upper : int }
(** Inclusive bounds; [lower <= upper]. *)

type t = private {
  name : string;
  seq : loop option;  (** optional outer sequential (time) loop *)
  loops : loop list;  (** the parallel [Doall] loops, outermost first *)
  body : Reference.t list;
}

val make :
  ?name:string -> ?seq:loop -> loop list -> Reference.t list -> t
(** Validates: at least one loop, distinct variable names, every reference's
    [G] has exactly [List.length loops] rows, bounds are non-empty. *)

val loop : string -> int -> int -> loop

val nesting : t -> int
(** Number of parallel loops [l]. *)

val vars : t -> string array
val bounds : t -> (int * int) array
val extents : t -> int array
(** Number of iterations per dimension: [upper - lower + 1]. *)

val iterations : t -> int
(** Total size of the parallel iteration space. *)

val arrays : t -> string list
(** Distinct array names, in order of first appearance. *)

val references_to : t -> string -> Reference.t list

val array_extent_hints : t -> (string * int array) list
(** For each array, a conservative bounding-box extent per dimension,
    obtained by evaluating each subscript over the corner points of the
    iteration space.  Used by the simulator to size array storage. *)

val array_bounding_boxes : t -> (string * (int array * int array)) list
(** Like {!array_extent_hints} but returning the inclusive per-dimension
    [(lo, hi)] corners of each array's accessed region. *)

val pp : Format.formatter -> t -> unit
(** Pretty-prints in the paper's Doall pseudo-code style. *)

val to_string : t -> string
