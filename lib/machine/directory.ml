module ISet = Set.Make (Int)

type entry = { mutable sharers : ISet.t; mutable owner : int option }

type t = (int, entry) Hashtbl.t

let create () : t = Hashtbl.create 4096

let entry t addr =
  match Hashtbl.find_opt t addr with
  | Some e -> e
  | None ->
      let e = { sharers = ISet.empty; owner = None } in
      Hashtbl.add t addr e;
      e

let sharers t addr =
  match Hashtbl.find_opt t addr with
  | None -> []
  | Some e -> ISet.elements e.sharers

let owner t addr =
  match Hashtbl.find_opt t addr with None -> None | Some e -> e.owner

let add_sharer t addr p =
  let e = entry t addr in
  e.sharers <- ISet.add p e.sharers

let set_owner t addr p =
  let e = entry t addr in
  e.sharers <- ISet.singleton p;
  e.owner <- Some p

let downgrade_owner t addr =
  match Hashtbl.find_opt t addr with
  | None -> ()
  | Some e -> e.owner <- None

let remove t addr p =
  match Hashtbl.find_opt t addr with
  | None -> ()
  | Some e ->
      e.sharers <- ISet.remove p e.sharers;
      if e.owner = Some p then e.owner <- None

let clear t addr =
  match Hashtbl.find_opt t addr with
  | None -> ()
  | Some e ->
      e.sharers <- ISet.empty;
      e.owner <- None
