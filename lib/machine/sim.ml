open Loopir
open Partition

type topology = Uniform_memory | Mesh2d

type config = {
  geometry : Cache.geometry;
  topology : topology;
  placement : Data_partition.placement option;
  seq_steps : int option;
  interleave : bool;
  line_size : int;
}

let default =
  {
    geometry = Cache.Infinite;
    topology = Uniform_memory;
    placement = None;
    seq_steps = None;
    interleave = true;
    line_size = 1;
  }

type result = { stats : Stats.t; addrs : Addr.t; nprocs : int; steps : int }

type loss = Lost_invalidation | Lost_eviction

type machine = {
  nprocs : int;
  caches : Cache.t array;
  dir : Directory.t;
  net : Mesh.t;
  stats : Stats.t;
  addrs : Addr.t;
  placement : Data_partition.placement option;
  loss : (int, loss) Hashtbl.t array;  (* why proc p last lost line a *)
  line_rep : (int, string * Matrixkit.Ivec.t) Hashtbl.t;
      (* representative element per cache line, for placement homes *)
}

(* Home memory module of an address: the placement map when given, the
   single monolithic module otherwise (represented as [-1]). *)
let home_of m line =
  match m.placement with
  | None -> -1
  | Some pl -> (
      match Hashtbl.find_opt m.line_rep line with
      | Some (name, point) -> pl.Data_partition.home name point
      | None ->
          (* Unit lines: the line id is the interned element address. *)
          let name, coords = Addr.element_of m.addrs line in
          pl.Data_partition.home name (Array.of_list coords))

let dist m a b =
  if a = -1 || b = -1 then if a = b then 0 else 1 else Mesh.distance m.net a b

let message m src dst =
  m.stats.Stats.network_messages <- m.stats.Stats.network_messages + 1;
  m.stats.Stats.network_hops <- m.stats.Stats.network_hops + dist m src dst

let mark_loss m p addr reason = Hashtbl.replace m.loss.(p) addr reason

let invalidate_sharers m addr ~except ~home =
  List.iter
    (fun q ->
      if q <> except then begin
        Cache.invalidate m.caches.(q) addr;
        m.stats.Stats.invalidations <- m.stats.Stats.invalidations + 1;
        mark_loss m q addr Lost_invalidation;
        message m home q;
        (* acknowledgement *)
        message m q home
      end)
    (Directory.sharers m.dir addr)

let handle_eviction m p = function
  | None -> ()
  | Some victim ->
      (* The victim is already gone from the cache; the directory still
         records whether it was dirty there. *)
      (if Directory.owner m.dir victim = Some p then begin
         m.stats.Stats.writebacks <- m.stats.Stats.writebacks + 1;
         message m p (home_of m victim)
       end);
      Directory.remove m.dir victim p;
      mark_loss m p victim Lost_eviction

let classify_miss m p addr =
  match Hashtbl.find_opt m.loss.(p) addr with
  | Some Lost_invalidation ->
      m.stats.Stats.coherence_misses <- m.stats.Stats.coherence_misses + 1
  | Some Lost_eviction ->
      m.stats.Stats.replacement_misses <- m.stats.Stats.replacement_misses + 1
  | None -> m.stats.Stats.cold_misses <- m.stats.Stats.cold_misses + 1

let fill_accounting m p home =
  if home = p then m.stats.Stats.local_fills <- m.stats.Stats.local_fills + 1
  else m.stats.Stats.remote_fills <- m.stats.Stats.remote_fills + 1

let access m p addr ~write ~sync =
  let st = m.stats in
  st.Stats.accesses <- st.Stats.accesses + 1;
  if write then st.Stats.writes <- st.Stats.writes + 1
  else st.Stats.reads <- st.Stats.reads + 1;
  if sync then st.Stats.sync_ops <- st.Stats.sync_ops + 1;
  Hashtbl.replace st.Stats.unique_per_proc.(p) addr ();
  let cache = m.caches.(p) in
  match Cache.lookup cache addr with
  | Some Cache.Modified -> st.Stats.hits <- st.Stats.hits + 1
  | Some Cache.Shared when not write -> st.Stats.hits <- st.Stats.hits + 1
  | Some Cache.Shared ->
      (* Write upgrade: no data transfer, but the directory must
         invalidate the other sharers. *)
      st.Stats.hits <- st.Stats.hits + 1;
      st.Stats.upgrades <- st.Stats.upgrades + 1;
      let home = home_of m addr in
      message m p home;
      invalidate_sharers m addr ~except:p ~home;
      Directory.set_owner m.dir addr p;
      Cache.set_state cache addr Cache.Modified;
      (* grant *)
      message m home p
  | None ->
      st.Stats.misses <- st.Stats.misses + 1;
      classify_miss m p addr;
      let home = home_of m addr in
      (* request *)
      message m p home;
      (match Directory.owner m.dir addr with
      | Some q when q <> p ->
          (* Dirty remotely: forward, owner writes back / transfers. *)
          message m home q;
          message m q p;
          st.Stats.writebacks <- st.Stats.writebacks + 1;
          if write then begin
            Cache.invalidate m.caches.(q) addr;
            st.Stats.invalidations <- st.Stats.invalidations + 1;
            mark_loss m q addr Lost_invalidation;
            Directory.clear m.dir addr
          end
          else begin
            Cache.set_state m.caches.(q) addr Cache.Shared;
            Directory.downgrade_owner m.dir addr
          end
      | Some _ | None ->
          if write then invalidate_sharers m addr ~except:p ~home;
          (* data reply *)
          message m home p);
      fill_accounting m p home;
      Hashtbl.remove m.loss.(p) addr;
      if write then begin
        Directory.set_owner m.dir addr p;
        handle_eviction m p (Cache.insert cache addr Cache.Modified)
      end
      else begin
        Directory.add_sharer m.dir addr p;
        handle_eviction m p (Cache.insert cache addr Cache.Shared)
      end

let run_assignment nest ~(per_proc : Matrixkit.Ivec.t list array) config =
  let nprocs = Array.length per_proc in
  if nprocs < 1 then invalid_arg "Sim.run_assignment: no processors";
  let net =
    match config.topology with
    | Uniform_memory -> Mesh.uniform ~nprocs
    | Mesh2d -> Mesh.mesh ~nprocs
  in
  let m =
    {
      nprocs;
      caches = Array.init nprocs (fun _ -> Cache.create config.geometry);
      dir = Directory.create ();
      net;
      stats = Stats.create ~nprocs;
      addrs = Addr.create ();
      placement = config.placement;
      loss = Array.init nprocs (fun _ -> Hashtbl.create 256);
      line_rep = Hashtbl.create 4096;
    }
  in
  if config.line_size < 1 then invalid_arg "Sim.run: line_size < 1";
  let layout =
    if config.line_size = 1 then None
    else Some (Layout.of_nest ~line_align:config.line_size nest)
  in
  let steps =
    match config.seq_steps with
    | Some n -> n
    | None -> (
        match nest.Nest.seq with
        | Some l -> l.Nest.upper - l.Nest.lower + 1
        | None -> 1)
  in
  let body =
    List.map
      (fun (r : Reference.t) ->
        ( r.Reference.array_name,
          r.Reference.index,
          Reference.is_write_like r,
          r.Reference.kind = Reference.Accumulate ))
      nest.Nest.body
  in
  let execute p (iter : Matrixkit.Ivec.t) =
    List.iter
      (fun (name, index, write, sync) ->
        let point = Affine.apply index iter in
        (* Elements are always interned (distinct-element statistics);
           the coherence unit is the cache line. *)
        ignore (Addr.id m.addrs name point);
        let line =
          match layout with
          | None -> Addr.id m.addrs name point
          | Some l ->
              let ln = Layout.line l ~line_size:config.line_size name point in
              if not (Hashtbl.mem m.line_rep ln) then
                Hashtbl.replace m.line_rep ln (name, point);
              ln
        in
        access m p line ~write ~sync)
      body
  in
  for _step = 1 to steps do
    if config.interleave then begin
      let queues = Array.map Array.of_list per_proc in
      let longest = Array.fold_left (fun acc q -> max acc (Array.length q)) 0 queues in
      for idx = 0 to longest - 1 do
        Array.iteri
          (fun p q -> if idx < Array.length q then execute p q.(idx))
          queues
      done
    end
    else
      Array.iteri (fun p iters -> List.iter (execute p) iters) per_proc
  done;
  { stats = m.stats; addrs = m.addrs; nprocs; steps }

let run (schedule : Codegen.schedule) config =
  run_assignment schedule.Codegen.nest
    ~per_proc:(Codegen.iterations_by_proc schedule)
    config

let footprints (r : result) = Stats.touched r.stats

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "@[<v>%a@,distinct elements: %d@,per-proc footprints: [%s]@]" Stats.pp
    r.stats (Addr.size r.addrs)
    (String.concat "; "
       (List.map string_of_int (Array.to_list (footprints r))))
