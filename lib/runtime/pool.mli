(** A reusable pool of OCaml 5 domains: the execution substrate that
    stands in for Alewife's processors.

    The pool spawns its domains once; {!run} dispatches a job to every
    domain and blocks until all of them finish, so a [Doseq]-wrapped
    [Doall] body (Figure 9) re-executes across outer iterations without
    respawning domains.  Jobs receive a fresh sense-reversing
    {!Barrier.t} sized to the pool, which they use to separate outer
    sequential steps (all processors must finish step [t] before any
    starts [t+1], exactly the semantics the simulator assumes).

    Two dynamic-scheduling primitives realize the run-time baselines of
    {!Partition.Scheduling} with real contention instead of a
    deterministic deal: a shared chunk {!Counter} (cyclic, block-cyclic
    and guided self-scheduling are chunk-size policies over it) and
    per-domain work-stealing {!Deques}. *)

type t

val backoff : ?yielded:int ref -> int -> unit
(** Wait-loop backoff step, parameterized by the number of failed polls
    so far: a few [Domain.cpu_relax]es, then yields, then sleeps that
    double up to a 1.6 ms cap.  The cap keeps oversubscribed waiters
    responsive: a parked domain still wakes often enough to service
    abort flags and run watchdog checks ({!Resilient}).  Reset the
    counter whenever the poll makes progress.  [yielded] is incremented
    each time the step actually gives up the CPU (yield or sleep, not a
    [cpu_relax]) - the hook {!Trace}'s backoff-yield counter is fed
    from, optional so untraced waiters pay nothing. *)

val create : int -> t
(** Spawn a pool of [n >= 1] domains.  Domains may exceed the physical
    core count; the barrier spins with exponential backoff so
    oversubscribed pools still make progress. *)

val size : t -> int

exception Aborted
(** Raised inside surviving workers when a sibling's job raised: barrier
    waits turn into [Aborted] so no worker deadlocks waiting for a dead
    participant.  {!run} re-raises the original exception. *)

module Barrier : sig
  type b

  val wait : ?yielded:int ref -> b -> sense:bool ref -> unit
  (** Sense-reversing barrier: each participant keeps a local [sense]
      ref (initially [false]) and flips it per episode.  The last
      arriving domain releases the others.  Raises {!Aborted} if the
      pool's current job was aborted by a sibling's exception.
      [yielded] counts CPU give-ups while parked (see {!backoff}). *)
end

val run : t -> (int -> Barrier.b -> unit) -> unit
(** [run t f] executes [f p barrier] on domain [p] for every
    [p < size t] and waits for all of them.  The barrier is fresh for
    this job and sized [size t].  If any [f p] raises, the remaining
    workers are released (their barrier waits raise {!Aborted}) and the
    first exception is re-raised here. *)

val shutdown : t -> unit
(** Join all domains.  The pool is unusable afterwards. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [create], apply, [shutdown] (also on exceptions). *)

module Counter : sig
  (** A shared iteration counter over [0 .. total): the self-scheduling
      device of Polychronopoulos & Kuck's GSS (the paper's reference
      [1]).  Each grab takes the next chunk atomically; the chunk-size
      policy distinguishes cyclic ([fun _ -> 1]), block-cyclic
      ([fun _ -> c]) and guided ([ceil remaining/P]) scheduling. *)

  type c

  val create : total:int -> c

  val next : c -> chunk:(remaining:int -> int) -> (int * int) option
  (** Atomically grab the next [\[lo, hi)] range, where
      [hi - lo = max 1 (chunk ~remaining)] clipped to [total].  [None]
      when the space is exhausted. *)

  val reset : c -> unit
  (** Rewind to 0 for the next sequential step (call from a single
      domain between barriers). *)
end

module Deques : sig
  (** Per-domain chunked work-stealing deques.  Each domain pops chunks
      from the front of its own queue (preserving the locality order the
      compile-time tile gave it) and steals chunks from the back of the
      fullest victim when its own queue runs dry. *)

  type d

  val create : lengths:int array -> d
  (** One deque per domain; deque [p] initially holds the indices
      [0 .. lengths.(p) - 1] of domain [p]'s preferred items. *)

  val pop : d -> me:int -> chunk:int -> (int * int * int) option
  (** [(owner, lo, hi)]: a grabbed range of indices [lo..hi-1] into
      [owner]'s item array - [owner = me] from the own front, otherwise
      stolen from a victim's back.  [None] when every queue is empty. *)

  val reset : d -> unit
  (** Refill every deque for the next sequential step. *)
end
