(** Affine index functions [g(i) = i*G + a] (Equation 1 of the paper).

    [g] maps an iteration-space point (a row vector of length [l], the loop
    nesting) to a data-space point (a row vector of length [d], the array
    dimension).  [G] is an [l x d] integer matrix and [a] an integer offset
    row vector of length [d]. *)

open Matrixkit

type t = private { g : Imat.t; offset : Ivec.t }

val make : Imat.t -> Ivec.t -> t
(** Raises [Invalid_argument] if the offset length differs from the number
    of columns of [g]. *)

val of_rows : int list list -> int list -> t
(** [of_rows g_rows offset] builds from row lists of [G]. *)

val g : t -> Imat.t
val offset : t -> Ivec.t
val nesting : t -> int
(** Number of loop indices [l] (rows of [G]). *)

val dims : t -> int
(** Array dimension [d] (columns of [G]). *)

val apply : t -> Ivec.t -> Ivec.t
(** [apply f i] is the data element [i*G + a] accessed at iteration [i]. *)

val uniformly_generated : t -> t -> bool
(** Definition 5: same [G] matrix. *)

val translate : t -> Ivec.t -> t
(** [translate f da] adds [da] to the offset. *)

val drop_constant_dims : t -> t * int list
(** Example 1's reduction: remove array dimensions whose [G]-column is all
    zero (the subscript does not depend on any loop index).  Returns the
    reduced function and the kept column indices.  If every column is zero
    (a scalar-like reference) the result keeps a single zero column so the
    shape stays well-formed. *)

val equal : t -> t -> bool
val pp : vars:string array -> Format.formatter -> t -> unit
(** Prints subscripts like [i+j+4, i-j+3] given loop-variable names. *)

val subscript_strings : vars:string array -> t -> string list
