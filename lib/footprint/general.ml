open Intmath
open Matrixkit

(* ------------------------------------------------------------------ *)
(* Two-variable closed form                                            *)
(* ------------------------------------------------------------------ *)

(* For coprime a, b > 0, group the values a*x + b*y by the residue class
   of x modulo b (classes are distinct because gcd(a,b) = 1).  Within the
   class of x0, writing x = x0 + j*b, the reachable values are
   a*x0 + b*(a*j + y) with 0 <= j <= m = (l1 - x0)/b and 0 <= y <= l2:
   m+1 intervals of length l2+1 spaced a apart, which merge into one run
   when a <= l2 + 1. *)
let count_coprime a b l1 l2 =
  let xmax = min l1 (b - 1) in
  let total = ref 0 in
  for x0 = 0 to xmax do
    let m = (l1 - x0) / b in
    let in_class =
      if a <= l2 + 1 then (a * m) + l2 + 1 else (m + 1) * (l2 + 1)
    in
    total := !total + in_class
  done;
  !total

let count_linear_form_2 ~a ~b ~l1 ~l2 =
  if l1 < 0 || l2 < 0 then invalid_arg "General.count_linear_form_2";
  match (a, b) with
  | 0, 0 -> 1
  | 0, b -> if b = 0 then 1 else l2 + 1
  | a, 0 -> if a = 0 then 1 else l1 + 1
  | a, b ->
      let a = abs a and b = abs b in
      let g = Int_math.gcd a b in
      (* Scaling by g is a bijection on values. *)
      let a = a / g and b = b / g in
      (* Summing over the smaller modulus is cheaper; the count is
         symmetric under swapping the roles of the two terms. *)
      if b <= a then count_coprime a b l1 l2 else count_coprime b a l2 l1

(* ------------------------------------------------------------------ *)
(* n-variable forms: bitset sweep with a lookup table                  *)
(* ------------------------------------------------------------------ *)

module Bitset = struct
  type t = { bits : Bytes.t; size : int }

  let create size = { bits = Bytes.make ((size + 7) / 8) '\000'; size }

  let set t i =
    let b = Char.code (Bytes.get t.bits (i lsr 3)) in
    Bytes.set t.bits (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

  let get t i = Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let count t =
    let n = ref 0 in
    for i = 0 to t.size - 1 do
      if get t i then incr n
    done;
    !n
end

let sweep_budget = 1 lsl 20

(* Canonical key: positive coefficients divided by their gcd, paired with
   their bounds, zero terms dropped, sorted.  The count is invariant
   under all of these. *)
let canonical coeffs lambda =
  let terms = ref [] in
  Array.iteri
    (fun k c -> if c <> 0 && lambda.(k) > 0 then terms := (abs c, lambda.(k)) :: !terms
      else if c <> 0 && lambda.(k) = 0 then () (* fixed variable adds offset only *))
    coeffs;
  let g = Int_math.gcd_list (List.map fst !terms) in
  let terms =
    if g > 1 then List.map (fun (c, l) -> (c / g, l)) !terms else !terms
  in
  List.sort compare terms

let table : (((int * int) list), int) Hashtbl.t = Hashtbl.create 256

let memo_stats () = Hashtbl.length table

let sweep terms =
  let range =
    List.fold_left (fun acc (c, l) -> acc + (c * l)) 0 terms
  in
  if range + 1 > sweep_budget then None
  else begin
    let set = Bitset.create (range + 1) in
    Bitset.set set 0;
    (* Fold the variables in one at a time. *)
    let current = ref set in
    List.iter
      (fun (c, l) ->
        (* dst = union over x in [0, l] of (src shifted by c*x). *)
        let src = !current in
        let dst = Bitset.create (range + 1) in
        for i = 0 to range do
          if Bitset.get src i then begin
            let x = ref 0 in
            let pos = ref i in
            while !x <= l && !pos <= range do
              Bitset.set dst !pos;
              incr x;
              pos := !pos + c
            done
          end
        done;
        current := dst)
      terms;
    Some (Bitset.count !current)
  end

let count_linear_form ~coeffs ~lambda =
  if Array.length coeffs <> Array.length lambda then
    invalid_arg "General.count_linear_form: length mismatch";
  if Array.exists (fun l -> l < 0) lambda then
    invalid_arg "General.count_linear_form: negative bound";
  let terms = canonical coeffs lambda in
  match terms with
  | [] -> 1
  | [ (_, l) ] -> l + 1
  | [ (a, l1); (b, l2) ] -> count_linear_form_2 ~a ~b ~l1 ~l2
  | _ -> (
      match Hashtbl.find_opt table terms with
      | Some n -> n
      | None -> (
          match sweep terms with
          | Some n ->
              Hashtbl.replace table terms n;
              n
          | None ->
              (* Range beyond the table budget: the asymptotic count
                 (every residue hit across the full range). *)
              let range =
                List.fold_left (fun acc (c, l) -> acc + (c * l)) 0 terms
              in
              range + 1))

(* ------------------------------------------------------------------ *)
(* Rank-1 footprints                                                   *)
(* ------------------------------------------------------------------ *)

let rect_single ~lambda ~g =
  if Array.length lambda <> Imat.rows g then
    invalid_arg "General.rect_single: lambda length must equal rows of G";
  if Imat.rank g <> 1 then None
  else begin
    (* All columns are multiples of one primitive column; distinct data
       elements correspond exactly to distinct values of that column's
       linear form. *)
    let cols = Imat.max_independent_cols g in
    match cols with
    | [ j ] ->
        let coeffs = Imat.col g j in
        Some (count_linear_form ~coeffs ~lambda)
    | _ -> None
  end
