(* Tests for the compiler IR: affine index functions, references, loop
   nests, the DSL, and the surface-syntax parser. *)

open Matrixkit
open Loopir

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Affine                                                              *)
(* ------------------------------------------------------------------ *)

let test_affine_apply () =
  (* Example 1: A(i3+2, 5, i2-1, 4) in a triple nest. *)
  let f =
    Affine.of_rows
      [ [ 0; 0; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 1; 0; 0; 0 ] ]
      [ 2; 5; -1; 4 ]
  in
  Alcotest.(check (array int))
    "apply at (7, 8, 9)" [| 11; 5; 7; 4 |]
    (Affine.apply f [| 7; 8; 9 |]);
  check "nesting" 3 (Affine.nesting f);
  check "dims" 4 (Affine.dims f)

let test_affine_drop_constant_dims () =
  let f =
    Affine.of_rows
      [ [ 0; 0; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 1; 0; 0; 0 ] ]
      [ 2; 5; -1; 4 ]
  in
  let reduced, kept = Affine.drop_constant_dims f in
  Alcotest.(check (list int)) "kept dims" [ 0; 2 ] kept;
  check "reduced dims" 2 (Affine.dims reduced);
  Alcotest.(check (array int))
    "reduced apply" [| 11; 7 |]
    (Affine.apply reduced [| 7; 8; 9 |])

let test_affine_uniformly_generated () =
  let a = Affine.of_rows [ [ 1; 0 ]; [ 0; 1 ] ] [ 0; 0 ] in
  let b = Affine.of_rows [ [ 1; 0 ]; [ 0; 1 ] ] [ 1; -3 ] in
  let c = Affine.of_rows [ [ 2; 0 ]; [ 0; 1 ] ] [ 0; 0 ] in
  checkb "same G" true (Affine.uniformly_generated a b);
  checkb "different G" false (Affine.uniformly_generated a c)

let test_affine_pp () =
  let f = Affine.of_rows [ [ 1; 1 ]; [ 1; -1 ] ] [ 4; 3 ] in
  checks "subscripts" "i+j+4, i-j+3"
    (String.concat ", " (Affine.subscript_strings ~vars:[| "i"; "j" |] f));
  let g = Affine.of_rows [ [ 2 ]; [ 0 ] ] [ 0 ] in
  checks "coefficient" "2i"
    (String.concat ", " (Affine.subscript_strings ~vars:[| "i"; "j" |] g));
  let h = Affine.of_rows [ [ 0 ]; [ 0 ] ] [ 5 ] in
  checks "constant subscript" "5"
    (String.concat ", " (Affine.subscript_strings ~vars:[| "i"; "j" |] h))

(* ------------------------------------------------------------------ *)
(* Nest                                                                *)
(* ------------------------------------------------------------------ *)

let simple_nest () =
  let open Dsl in
  let i = var 0 and j = var 1 in
  nest ~name:"t"
    [ doall "i" 1 10; doall "j" 1 20 ]
    [ write "A" [ i; j ]; read "B" [ i + j; i - j ] ]

let test_nest_basics () =
  let n = simple_nest () in
  check "nesting" 2 (Nest.nesting n);
  check "iterations" 200 (Nest.iterations n);
  Alcotest.(check (array int)) "extents" [| 10; 20 |] (Nest.extents n);
  Alcotest.(check (list string)) "arrays" [ "A"; "B" ] (Nest.arrays n);
  check "refs to B" 1 (List.length (Nest.references_to n "B"))

let test_nest_validation () =
  checkb "duplicate vars rejected" true
    (try
       ignore (Nest.make [ Nest.loop "i" 1 2; Nest.loop "i" 1 2 ] []);
       false
     with Invalid_argument _ -> true);
  checkb "empty bounds rejected" true
    (try
       ignore (Nest.loop "i" 5 4);
       false
     with Invalid_argument _ -> true);
  checkb "wrong G arity rejected" true
    (try
       let bad = Reference.read "X" (Affine.of_rows [ [ 1 ] ] [ 0 ]) in
       ignore (Nest.make [ Nest.loop "i" 1 2; Nest.loop "j" 1 2 ] [ bad ]);
       false
     with Invalid_argument _ -> true)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_nest_pp () =
  let s = Nest.to_string (simple_nest ()) in
  checkb "mentions Doall" true (contains s "Doall (i, 1, 10)");
  checkb "statement form" true (contains s "A[i, j] = B[i+j, i-j]")

let test_array_extent_hints () =
  let n = simple_nest () in
  let hints = Nest.array_extent_hints n in
  (match List.assoc_opt "B" hints with
  | None -> Alcotest.fail "B hint missing"
  | Some ext ->
      (* i+j in [2,30], i-j in [-19,9]. *)
      Alcotest.(check (array int)) "B bounding box" [| 29; 29 |] ext);
  match List.assoc_opt "A" hints with
  | None -> Alcotest.fail "A hint missing"
  | Some ext -> Alcotest.(check (array int)) "A bounding box" [| 10; 20 |] ext

(* ------------------------------------------------------------------ *)
(* DSL                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dsl_affine_conversion () =
  let f =
    let open Dsl in
    let i = var 0 and j = var 1 in
    affine_of_exprs ~nesting:2 [ (2 * i) + j - int 3; j + j ]
  in
  Alcotest.(check (array int))
    "apply" [| 4; 10 |]
    (Affine.apply f [| 1; 5 |]);
  (* coefficients collapse: j + j = 2j *)
  Alcotest.(check (array int)) "G column" [| 0; 2 |] (Imat.col (Affine.g f) 1)

let test_dsl_rejects () =
  let open Dsl in
  checkb "out-of-range var" true
    (try
       ignore (affine_of_exprs ~nesting:1 [ var 3 ]);
       false
     with Invalid_argument _ -> true);
  checkb "no subscripts" true
    (try
       ignore (affine_of_exprs ~nesting:1 []);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_example2 () =
  let src =
    "# Example 2 of the paper\n\
     doall i = 101 to 200\n\
     doall j = 1 to 100\n\
     A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3]\n"
  in
  let n = Parse.nest_of_string ~name:"ex2" src in
  check "nesting" 2 (Nest.nesting n);
  check "iterations" 10000 (Nest.iterations n);
  check "body size" 3 (List.length n.Nest.body);
  let b_refs = Nest.references_to n "B" in
  check "B refs" 2 (List.length b_refs);
  match b_refs with
  | [ r1; _ ] ->
      Alcotest.(check (array int))
        "first B offset" [| 0; -1 |]
        (Affine.offset r1.Reference.index)
  | _ -> Alcotest.fail "expected two B references"

let test_parse_coefficients () =
  let src = "doall i = 1 to 4\ndoall j = 1 to 4\nC[i,2i,i+2j-1] = D[2*j]\n" in
  let n = Parse.nest_of_string src in
  let c = List.hd (Nest.references_to n "C") in
  Alcotest.(check (array int))
    "C at (1,1)" [| 1; 2; 2 |]
    (Affine.apply c.Reference.index [| 1; 1 |]);
  checkb "C is a write" true (Reference.is_write_like c)

let test_parse_accumulate () =
  let src =
    "doall i = 1 to 4\n\
     doall j = 1 to 4\n\
     doall k = 1 to 4\n\
     l$C[i,j] = l$C[i,j] + A[i,k] + B[k,j]\n"
  in
  let n = Parse.nest_of_string src in
  let c_refs = Nest.references_to n "C" in
  check "C referenced twice" 2 (List.length c_refs);
  checkb "lhs is accumulate" true
    (List.exists
       (fun (r : Reference.t) -> r.Reference.kind = Reference.Accumulate)
       c_refs);
  checkb "rhs C is a read" true
    (List.exists
       (fun (r : Reference.t) -> r.Reference.kind = Reference.Read)
       c_refs)

let test_parse_doseq () =
  let src =
    "doseq t = 1 to 10\ndoall i = 1 to 8\nA[i] = B[i] + B[i+1]\n"
  in
  let n = Parse.nest_of_string src in
  checkb "has seq loop" true (n.Nest.seq <> None);
  check "nesting counts doalls only" 1 (Nest.nesting n)

let test_parse_negative_bounds () =
  let src = "doall i = -3 to 3\nA[i] = B[i+1]\n" in
  let n = Parse.nest_of_string src in
  Alcotest.(check (array int)) "extent" [| 7 |] (Nest.extents n)

let test_parse_errors () =
  let bad srcs =
    List.iter
      (fun src ->
        checkb
          (Printf.sprintf "rejects %S" src)
          true
          (try
             ignore (Parse.nest_of_string src);
             false
           with Parse.Parse_error _ -> true))
      srcs
  in
  bad
    [
      "A[i] = B[i]\n" (* no loops *);
      "doall i = 1 to 10\n" (* no statement *);
      "doall i = 1 to 10\nA[i] = B[q]\n" (* unknown var *);
      "doall i = 1 to 10\nA[i] + B[i]\n" (* no assignment *);
      "doall i = 1 to 10\ndoseq t = 1 to 2\nA[i] = B[i]\n"
      (* doseq must be outermost *);
    ]

let test_expr_of_string () =
  let e = Parse.expr_of_string ~vars:[| "i"; "j" |] "2*i - j + 7" in
  let f = Dsl.affine_of_exprs ~nesting:2 [ e ] in
  Alcotest.(check (array int))
    "eval" [| (2 * 3) - 4 + 7 |]
    (Affine.apply f [| 3; 4 |])

(* ------------------------------------------------------------------ *)
(* Strided loops and normalization                                     *)
(* ------------------------------------------------------------------ *)

let test_strided_values () =
  Alcotest.(check (list int))
    "step 2 values" [ 1; 3; 5; 7 ]
    (Strided.iteration_values (Strided.loop ~step:2 "i" 1 8));
  Alcotest.(check (list int))
    "step 1 values" [ 3; 4; 5 ]
    (Strided.iteration_values (Strided.loop "i" 3 5));
  checkb "step 0 rejected" true
    (try
       ignore (Strided.loop ~step:0 "i" 1 8);
       false
     with Invalid_argument _ -> true)

let strided_example () =
  (* for i = 2 to 10 step 2: A[i] = B[i+1] *)
  let body =
    [
      Reference.write "A" (Affine.of_rows [ [ 1 ] ] [ 0 ]);
      Reference.read "B" (Affine.of_rows [ [ 1 ] ] [ 1 ]);
    ]
  in
  Strided.make ~name:"s" [ Strided.loop ~step:2 "i" 2 10 ] body

let test_strided_normalize_structure () =
  let n = Strided.normalize (strided_example ()) in
  Alcotest.(check (array int)) "extent 5" [| 5 |] (Nest.extents n);
  (* The substituted reference is A[2i' + 2]: non-unimodular G. *)
  let a = List.hd (Nest.references_to n "A") in
  check "G scaled" 2 (Imat.get (Affine.g a.Reference.index) 0 0);
  Alcotest.(check (array int))
    "offset shifted" [| 2 |]
    (Affine.offset a.Reference.index)

let test_strided_normalize_preserves_elements () =
  (* The normalized nest touches exactly the same data elements. *)
  let s = strided_example () in
  let n = Strided.normalize s in
  let original =
    List.concat_map
      (fun i ->
        List.map
          (fun (r : Reference.t) ->
            (r.Reference.array_name,
             Array.to_list (Affine.apply r.Reference.index [| i |])))
          s.Strided.body)
      (Strided.iteration_values (List.hd s.Strided.loops))
  in
  let normalized =
    List.concat_map
      (fun i ->
        List.map
          (fun (r : Reference.t) ->
            (r.Reference.array_name,
             Array.to_list (Affine.apply r.Reference.index [| i |])))
          n.Nest.body)
      (List.init 5 Fun.id)
  in
  Alcotest.(check (list (pair string (list int))))
    "same accesses"
    (List.sort compare original)
    (List.sort compare normalized)

let test_strided_parse () =
  let n =
    Parse.nest_of_string "doall i = 0 to 14 step 2\nA[i] = A[i+1]\n"
  in
  (* 8 iterations, normalized to 0..7 with A[2i'] and A[2i'+1]. *)
  Alcotest.(check (array int)) "extent" [| 8 |] (Nest.extents n);
  let refs = Nest.references_to n "A" in
  check "two refs" 2 (List.length refs);
  (* A[2i'] and A[2i'+1] never intersect: two separate classes. *)
  let classes = Footprint.Uniform.classify n.Nest.body in
  check "classes split like A[2i] vs A[2i+1]" 2 (List.length classes)

let test_strided_parse_mixed () =
  let n =
    Parse.nest_of_string
      "doall i = 1 to 9 step 4\ndoall j = 0 to 5\nC[i,j] = D[j,i]\n"
  in
  Alcotest.(check (array int)) "extents" [| 3; 6 |] (Nest.extents n);
  let c = List.hd (Nest.references_to n "C") in
  (* i' = 0 -> i = 1. *)
  Alcotest.(check (array int))
    "C at origin" [| 1; 0 |]
    (Affine.apply c.Reference.index [| 0; 0 |])

let prop_strided_normalize_preserves =
  (* Normalization preserves the multiset of accessed data elements for
     random strides, bounds and subscripts. *)
  QCheck2.Test.make ~name:"normalization preserves accesses" ~count:200
    QCheck2.Gen.(
      tup6 (int_range 1 3) (int_range (-5) 5) (int_range 3 9)
        (int_range (-2) 2) (int_range (-2) 2) (int_range (-3) 3))
    (fun (step, lo, len, c1, c2, off) ->
      QCheck2.assume (c1 <> 0 || c2 <> 0);
      let hi = lo + (step * len) in
      let body =
        [ Reference.write "A" (Affine.of_rows [ [ c1 ]; [ c2 ] ] [ off ]) ]
      in
      let s =
        Strided.make ~name:"p"
          [ Strided.loop ~step "i" lo hi; Strided.loop "j" 0 4 ]
          body
      in
      let n = Strided.normalize s in
      let accesses refs loops_values =
        List.concat_map
          (fun i ->
            List.concat_map
              (fun j ->
                List.map
                  (fun (r : Reference.t) ->
                    Array.to_list (Affine.apply r.Reference.index [| i; j |]))
                  refs)
              (List.init 5 Fun.id))
          loops_values
      in
      let original =
        accesses s.Strided.body
          (Strided.iteration_values (List.hd s.Strided.loops))
      in
      let normalized =
        accesses n.Nest.body (List.init (len + 1) Fun.id)
      in
      List.sort compare original = List.sort compare normalized)

let strided_props =
  List.map QCheck_alcotest.to_alcotest [ prop_strided_normalize_preserves ]

let () =
  Alcotest.run "loopir"
    [
      ( "affine",
        [
          Alcotest.test_case "apply (Example 1)" `Quick test_affine_apply;
          Alcotest.test_case "drop constant dims" `Quick
            test_affine_drop_constant_dims;
          Alcotest.test_case "uniformly generated" `Quick
            test_affine_uniformly_generated;
          Alcotest.test_case "pretty printing" `Quick test_affine_pp;
        ] );
      ( "nest",
        [
          Alcotest.test_case "basics" `Quick test_nest_basics;
          Alcotest.test_case "validation" `Quick test_nest_validation;
          Alcotest.test_case "pretty printing" `Quick test_nest_pp;
          Alcotest.test_case "extent hints" `Quick test_array_extent_hints;
        ] );
      ( "dsl",
        [
          Alcotest.test_case "conversion" `Quick test_dsl_affine_conversion;
          Alcotest.test_case "rejections" `Quick test_dsl_rejects;
        ] );
      ( "parse",
        [
          Alcotest.test_case "example 2" `Quick test_parse_example2;
          Alcotest.test_case "coefficients" `Quick test_parse_coefficients;
          Alcotest.test_case "accumulate (fig 11)" `Quick test_parse_accumulate;
          Alcotest.test_case "doseq" `Quick test_parse_doseq;
          Alcotest.test_case "negative bounds" `Quick test_parse_negative_bounds;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "expr_of_string" `Quick test_expr_of_string;
        ] );
      ( "strided",
        [
          Alcotest.test_case "iteration values" `Quick test_strided_values;
          Alcotest.test_case "normalization structure" `Quick
            test_strided_normalize_structure;
          Alcotest.test_case "normalization preserves accesses" `Quick
            test_strided_normalize_preserves_elements;
          Alcotest.test_case "parsed step" `Quick test_strided_parse;
          Alcotest.test_case "mixed steps" `Quick test_strided_parse_mixed;
        ] );
      ("properties", strided_props);
    ]
