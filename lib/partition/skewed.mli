(** General hyperparallelepiped (parallelogram) partitioning
    (Sections 3.2-3.6).

    The objective is Theorem 2's cumulative footprint summed over classes,
    normalized per class by the lattice index [|det G'|] so that the
    volume term counts {e distinct elements} rather than the volume of the
    bounding parallelepiped (for unimodular [G] the normalization is 1 and
    the objective is exactly the paper's).  The constraint is
    [|det L| = iterations / P].

    The solver is the paper's "standard numerical methods" step:
    multi-start coordinate descent over the entries of [L] with
    determinant renormalization, seeded from the rectangular optimum and
    from unit skews of it.  The continuous solution is then rounded to an
    integer [L] suitable for code generation. *)

open Matrixkit

type result = {
  l : Imat.t;  (** integer tile matrix (rows are edge vectors) *)
  tile : Tile.t;
  continuous_l : float array array;
  continuous_cost : float;
  rounded_cost : float;
  rect_cost : float;  (** best rectangular cost, for comparison *)
  improves_on_rect : bool;
}

val objective : Cost.t -> float array array -> float
(** Normalized Theorem 2 objective at a real [L]; [infinity] when some
    class is outside the parallelepiped engine's domain. *)

val optimize : Cost.t -> nprocs:int -> result option
(** [None] when any class has rank(G) < nesting (the parallelepiped
    engine does not apply; use {!Rectangular}). *)

val pp_result : Format.formatter -> result -> unit
