open Intmath
open Loopir

type result = {
  grid : int array;
  sizes : int array;
  tile : Tile.t;
  predicted_misses_per_tile : int;
  predicted_traffic_per_tile : int;
  continuous_sizes : float array;
  continuous_cost : float;
  cost : Cost.t;
}

(* ------------------------------------------------------------------ *)
(* Continuous relaxation                                               *)
(* ------------------------------------------------------------------ *)

let golden_section f lo hi =
  (* Minimize the unimodal [f] on [lo, hi]. *)
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (phi *. (!b -. !a))) in
  let d = ref (!a +. (phi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  for _ = 1 to 80 do
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (phi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (phi *. (!b -. !a));
      fd := f !d
    end
  done;
  (!a +. !b) /. 2.0

let continuous_minimize objective ~volume ~extents =
  let l = Array.length extents in
  let n = Array.map float_of_int extents in
  (* Feasible start: x_k proportional to N_k with product = volume,
     clipped into the box and renormalized. *)
  let x = Array.make l 1.0 in
  let total = Array.fold_left ( *. ) 1.0 n in
  let scale = (volume /. total) ** (1.0 /. float_of_int l) in
  Array.iteri (fun k nk -> x.(k) <- Float.max 1.0 (Float.min nk (nk *. scale))) n;
  (* Renormalize the product to [volume] by scaling free coordinates. *)
  let renormalize () =
    (* Repeated scale-and-clip converges to a feasible product when
       [volume <= prod extents]. *)
    for _ = 1 to 20 do
      let p = Array.fold_left ( *. ) 1.0 x in
      let s = (volume /. p) ** (1.0 /. float_of_int l) in
      Array.iteri
        (fun k v -> x.(k) <- Float.max 1.0 (Float.min n.(k) (v *. s)))
        x
    done
  in
  renormalize ();
  if l >= 2 then begin
    let eval () = objective x in
    let pass () =
      for i = 0 to l - 1 do
        for j = 0 to l - 1 do
          if i <> j then begin
            let xi = x.(i) and xj = x.(j) in
            (* x_i <- x_i * s, x_j <- x_j / s keeps the product. *)
            let lo = Float.max (1.0 /. xi) (xj /. n.(j))
            and hi = Float.min (n.(i) /. xi) xj in
            if hi > lo *. (1.0 +. 1e-12) then begin
              let f s =
                x.(i) <- xi *. s;
                x.(j) <- xj /. s;
                let v = eval () in
                x.(i) <- xi;
                x.(j) <- xj;
                v
              in
              (* Search in log space for scale invariance. *)
              let g t = f (exp t) in
              let t = golden_section g (log lo) (log hi) in
              let s = exp t in
              x.(i) <- xi *. s;
              x.(j) <- xj /. s
            end
          end
        done
      done
    in
    let prev = ref infinity in
    let continue = ref true in
    let rounds = ref 0 in
    while !continue && !rounds < 60 do
      pass ();
      let v = eval () in
      if !prev -. v < 1e-9 *. (1.0 +. abs_float v) then continue := false;
      prev := v;
      incr rounds
    done
  end;
  x

let continuous_optimum cost ~volume ~extents =
  continuous_minimize (Cost.eval_objective cost) ~volume ~extents

(* ------------------------------------------------------------------ *)
(* Discrete grid search                                                *)
(* ------------------------------------------------------------------ *)

let grids nprocs extents =
  let l = Array.length extents in
  List.filter
    (fun fs -> List.for_all2 (fun p n -> p <= n) fs (Array.to_list extents))
    (Int_math.factorizations l nprocs)

let sizes_of_grid extents grid =
  Array.of_list
    (List.mapi (fun k p -> Int_math.ceil_div extents.(k) p) grid)

let optimize cost ~nprocs =
  if nprocs < 1 then invalid_arg "Rectangular.optimize: nprocs < 1";
  let nest = cost.Cost.nest in
  let extents = Nest.extents nest in
  let volume =
    float_of_int (Nest.iterations nest) /. float_of_int nprocs
  in
  let continuous_sizes = continuous_optimum cost ~volume ~extents in
  let continuous_cost = Cost.eval_objective cost continuous_sizes in
  let candidates = grids nprocs extents in
  if candidates = [] then
    invalid_arg
      (Printf.sprintf
         "Rectangular.optimize: no feasible grid of %d processors for \
          extents %s (too many processors for the iteration space)"
         nprocs
         (String.concat "x" (List.map string_of_int (Array.to_list extents))));
  let best = ref None in
  List.iter
    (fun grid ->
      let sizes = sizes_of_grid extents grid in
      let tile = Tile.rect sizes in
      let misses = Cost.misses_per_tile cost tile in
      let weighted =
        (* Use the sync-weighted objective for ranking. *)
        Cost.eval_objective cost (Array.map float_of_int sizes)
      in
      match !best with
      | Some (_, _, _, w, _) when w <= weighted -> ()
      | _ -> best := Some (grid, sizes, tile, weighted, misses))
    candidates;
  match !best with
  | None -> assert false
  | Some (grid, sizes, tile, _, misses) ->
      {
        grid = Array.of_list grid;
        sizes;
        tile;
        predicted_misses_per_tile = misses;
        predicted_traffic_per_tile = Cost.traffic_per_tile cost tile;
        continuous_sizes;
        continuous_cost;
        cost;
      }

(* ------------------------------------------------------------------ *)
(* Closed-form aspect ratios (Example 8 / Abraham-Hudak shape)         *)
(* ------------------------------------------------------------------ *)

let aspect_ratio cost =
  let l = Nest.nesting cost.Cost.nest in
  let poly = cost.Cost.objective in
  (* Expected monomials: the full product (degree l) and products missing
     exactly one variable (degree l-1).  Any other monomial breaks the
     closed form. *)
  let full = List.init l (fun _ -> 1) in
  let missing k = List.init l (fun i -> if i = k then 0 else 1) in
  let recognized mono =
    mono = full || List.exists (fun k -> mono = missing k) (List.init l Fun.id)
  in
  let monos = Mpoly.monomials poly in
  let pad m = List.init l (fun i -> try List.nth m i with _ -> 0) in
  if List.for_all (fun (m, _) -> recognized (pad m)) monos then
    Some
      (Array.init l (fun k -> Mpoly.coeff poly (missing k)))
  else None

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>grid: %s@,tile sizes: %s@,predicted misses/tile: %d@,predicted \
     traffic/tile: %d@,continuous optimum: (%s) cost %.1f@]"
    (String.concat "x" (List.map string_of_int (Array.to_list r.grid)))
    (String.concat "x" (List.map string_of_int (Array.to_list r.sizes)))
    r.predicted_misses_per_tile r.predicted_traffic_per_tile
    (String.concat ", "
       (List.map (Printf.sprintf "%.2f") (Array.to_list r.continuous_sizes)))
    r.continuous_cost
