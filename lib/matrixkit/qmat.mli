(** Dense matrices over the exact rationals {!Intmath.Rat}.

    Used wherever the framework needs exact linear solving: inverting tile
    matrices ([L = Lambda (H^-1)^t]), expressing the spread vector in the
    basis of [G]'s rows (Theorem 4's [u] coefficients), and rank
    computations behind the classification theorems. *)

open Intmath

type t

val make : int -> int -> (int -> int -> Rat.t) -> t
val of_imat : Imat.t -> t
val of_rows : Rat.t list list -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Rat.t
val row : t -> int -> Rat.t array
val identity : int -> t
val transpose : t -> t
val mul : t -> t -> t
val scale : Rat.t -> t -> t
val mul_row : Rat.t array -> t -> Rat.t array
val equal : t -> t -> bool
val det : t -> Rat.t
val rank : t -> int

val inv : t -> t option
(** Inverse of a square matrix, [None] if singular. *)

val solve_left : t -> Rat.t array -> Rat.t array option
(** [solve_left a b] finds a row vector [x] with [x * a = b], if the system
    is consistent (any solution is returned when underdetermined). *)

val is_integer : t -> bool
val to_imat_exn : t -> Imat.t
(** Raises [Invalid_argument] if any entry is non-integral. *)

val pp : Format.formatter -> t -> unit
