(** Cache-capacity blocking (the Section 2.2 remark).

    The analysis assumes caches large enough to hold a tile's footprint;
    when they are not, "the optimal loop partition aspect ratios do not
    change, rather, the size of each loop tile executed at any given time
    on the processor must be adjusted so that the data fits in the
    cache."  This module performs that adjustment: it shrinks the chosen
    tile - preserving its aspect ratio as closely as possible - until the
    cumulative footprint fits, and reorders each processor's iterations
    to walk subtile by subtile. *)

open Matrixkit

val footprint : Cost.t -> Tile.t -> int
(** Predicted per-tile working set (= {!Cost.misses_per_tile}). *)

val fits : Cost.t -> Tile.t -> capacity:int -> bool

val subtile : Cost.t -> Tile.t -> capacity:int -> Tile.t
(** The largest aspect-preserving shrink of a rectangular tile whose
    footprint fits in [capacity] elements (repeatedly halving the
    largest dimension).  Returns the tile unchanged when it already
    fits.  Raises [Invalid_argument] when even a single iteration's
    footprint exceeds the capacity, or on parallelepiped tiles. *)

val blocked_iterations :
  Codegen.schedule -> subtile:Tile.t -> Ivec.t list array
(** Each processor's iterations reordered to complete one subtile before
    starting the next (lexicographic within a subtile, subtiles in
    lexicographic order of their coordinates).  Feed to
    {!Machine.Sim.run_assignment} to observe the replacement-miss
    reduction. *)
