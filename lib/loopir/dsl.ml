open Matrixkit

(* Affine expressions are a sparse map var-index -> coefficient plus a
   constant. *)
type expr = { coeffs : (int * int) list; const : int }

let var k =
  if k < 0 then invalid_arg "Dsl.var: negative index";
  { coeffs = [ (k, 1) ]; const = 0 }

let int c = { coeffs = []; const = c }

let merge_coeffs a b =
  let tbl = Hashtbl.create 8 in
  let bump (k, c) =
    let cur = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
    Hashtbl.replace tbl k (cur + c)
  in
  List.iter bump a;
  List.iter bump b;
  Hashtbl.fold (fun k c acc -> if c = 0 then acc else (k, c) :: acc) tbl []
  |> List.sort compare

let ( + ) a b =
  { coeffs = merge_coeffs a.coeffs b.coeffs; const = Stdlib.( + ) a.const b.const }

let neg a =
  {
    coeffs = List.map (fun (k, c) -> (k, Stdlib.( ~- ) c)) a.coeffs;
    const = Stdlib.( ~- ) a.const;
  }

let ( - ) a b = a + neg b

let ( * ) k a =
  {
    coeffs =
      List.filter_map
        (fun (i, c) ->
          let c' = Stdlib.( * ) k c in
          if c' = 0 then None else Some (i, c'))
        a.coeffs;
    const = Stdlib.( * ) k a.const;
  }

type ref_spec = { array_name : string; kind : Reference.kind; subs : expr list }

let read array_name subs = { array_name; kind = Reference.Read; subs }
let write array_name subs = { array_name; kind = Reference.Write; subs }

let accumulate array_name subs =
  { array_name; kind = Reference.Accumulate; subs }

let doall = Nest.loop
let doseq = Nest.loop

let affine_of_exprs ~nesting subs =
  if subs = [] then invalid_arg "Dsl: reference with no subscripts";
  let d = List.length subs in
  let g =
    Imat.make nesting d (fun i j ->
        let e = List.nth subs j in
        Option.value ~default:0 (List.assoc_opt i e.coeffs))
  in
  (* Reject subscripts mentioning out-of-range variables. *)
  List.iter
    (fun e ->
      List.iter
        (fun (k, _) ->
          if k >= nesting then
            invalid_arg
              (Printf.sprintf "Dsl: subscript uses var %d but nesting is %d" k
                 nesting))
        e.coeffs)
    subs;
  let offset = Array.of_list (List.map (fun e -> e.const) subs) in
  Affine.make g offset

let reference_of_spec ~nesting s =
  {
    Reference.array_name = s.array_name;
    kind = s.kind;
    index = affine_of_exprs ~nesting s.subs;
  }

let nest ?name ?seq loops specs =
  let nesting = List.length loops in
  Nest.make ?name ?seq loops (List.map (reference_of_spec ~nesting) specs)
