(** Closing the loop between the analytic model, the deterministic
    simulator and the real multicore runtime.

    For a partitioned nest this module checks, on one assignment:

    - {b write-race freedom}: in a [Doall] pass, every element reached
      through a plain [Write] reference is written by at most one
      processor.  Contended [Accumulate] ([l$]) elements are legal - the
      paper's Appendix A makes them atomic - but are reported, together
      with the {!Partition.Cost} classes that predict them (written
      classes whose [G] has a null row, i.e. tiled reduction
      dimensions).
    - {b footprint agreement}: the distinct elements each domain touches
      in the real execution equal what {!Machine.Sim} counts for the
      same assignment, and both sit against the Theorem 2/4 prediction.
    - {b determinism / values}: when no element written by one processor
      is read or written by another, the parallel execution must produce
      bit-identical operands to the sequential reference run, and we
      verify that it does. *)

open Loopir
open Partition

type verdict = {
  nest_name : string;
  nprocs : int;
  policy : string;
  sim_footprints : int array;  (** {!Machine.Sim} distinct elements/proc *)
  measured_footprints : int array;  (** runtime distinct elements/domain *)
  footprints_agree : bool;  (** exact equality, domain by domain *)
  predicted_per_tile : int option;
      (** Theorem 2/4 cumulative footprint, when the assignment came
          from a tile the model can predict *)
  measured_max : int;
  write_races : (string * int) list;
      (** array name -> elements written by >1 proc through plain
          [Write] references; non-empty means the partition is unsound *)
  shared_accumulates : (string * int) list;
      (** array name -> elements accumulated by >1 proc (legal, atomic) *)
  reduction_arrays : string list;
      (** arrays whose cost class predicts multi-writer contention
          (written class with a tiled null dimension) *)
  race_free : bool;  (** [write_races = []] *)
  deterministic : bool;
      (** additionally no cross-processor read-after-write: parallel
          values must equal the sequential reference run *)
  values_match : bool option;
      (** [Some] iff [deterministic]: the bit-exact comparison result *)
}

val check_schedule : ?pool:Pool.t -> Codegen.schedule -> verdict
(** Validate the compile-time tiled assignment of a schedule.  A pool
    sized to the schedule's processor count is created (and shut down)
    here unless one is supplied. *)

val check_assignment :
  ?pool:Pool.t ->
  ?policy:string ->
  ?predicted_per_tile:int ->
  Nest.t ->
  Scheduling.assignment ->
  verdict
(** Validate an arbitrary per-processor assignment (e.g. the run-time
    scheduling baselines). *)

val ok : verdict -> bool
(** Sound and model-consistent: race-free, footprints agree with the
    simulator, and values match whenever determinism requires them to. *)

val pp : Format.formatter -> verdict -> unit
