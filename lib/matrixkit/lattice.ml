type bounded = { basis : Imat.t; bounds : int array }

let make basis bounds =
  if Imat.rank basis <> Imat.rows basis then
    invalid_arg "Lattice.make: basis rows are dependent";
  if Array.length bounds <> Imat.rows basis then
    invalid_arg "Lattice.make: bounds/basis mismatch";
  if Array.exists (fun l -> l < 0) bounds then
    invalid_arg "Lattice.make: negative bound";
  { basis; bounds }

let count { bounds; _ } =
  Array.fold_left (fun acc l -> Intmath.Int_math.mul_exact acc (l + 1)) 1 bounds

let points { basis; bounds } =
  let n = Imat.rows basis in
  let rec go i coeff =
    if i = n then [ Imat.mul_row (Array.of_list (List.rev coeff)) basis ]
    else
      List.concat_map
        (fun u -> go (i + 1) (u :: coeff))
        (List.init (bounds.(i) + 1) Fun.id)
  in
  go 0 []

let coords_of_translation { basis; _ } t = Hnf.solve_left_int basis t

let within_bounds bounds u =
  Array.for_all2 (fun l ui -> abs ui <= l) bounds u

let intersects_translate l t =
  match coords_of_translation l t with
  | None -> false
  | Some u -> within_bounds l.bounds u

let union_size_translate l t =
  let total = count l in
  match coords_of_translation l t with
  | Some u when within_bounds l.bounds u ->
      let overlap = ref 1 in
      Array.iteri
        (fun i li ->
          overlap := Intmath.Int_math.mul_exact !overlap (li + 1 - abs u.(i)))
        l.bounds;
      (2 * total) - !overlap
  | Some _ | None -> 2 * total

let union_size_approx l t =
  let total = count l in
  match coords_of_translation l t with
  | Some u when within_bounds l.bounds u ->
      let n = Array.length u in
      let extra = ref 0 in
      for i = 0 to n - 1 do
        let p = ref (abs u.(i)) in
        for j = 0 to n - 1 do
          if j <> i then p := !p * (l.bounds.(j) + 1)
        done;
        extra := !extra + !p
      done;
      total + !extra
  | Some _ | None -> 2 * total
