open Matrixkit
open Loopir

type result = {
  shrunk : Gen.case;
  violation : Oracle.violation;
  evals : int;
  steps : int;
}

(* Rebuild a case from mutated parts; ill-formed candidates (e.g. an
   empty body) are simply not proposed. *)
let rebuild (c : Gen.case) ?seq loops refs tile nprocs =
  try
    Some (Gen.build ~seed:c.seed ~id:c.id ?seq loops refs ~tile ~nprocs)
  with Invalid_argument _ -> None

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let drop_index a n =
  Array.of_list (drop_nth (Array.to_list a) n)

let set_ref (r : Reference.t) g offset =
  let aff = Affine.make g offset in
  match r.kind with
  | Reference.Read -> Reference.read r.array_name aff
  | Reference.Write -> Reference.write r.array_name aff
  | Reference.Accumulate -> Reference.accumulate r.array_name aff

let candidates (c : Gen.case) =
  let nest = c.nest in
  let loops = nest.Nest.loops in
  let refs = nest.Nest.body in
  let seq = nest.Nest.seq in
  let depth = List.length loops in
  let nrefs = List.length refs in
  let acc = ref [] in
  let push cand = match cand with Some x -> acc := x :: !acc | None -> () in
  let same ?(seq = seq) ?(loops = loops) ?(refs = refs) ?(tile = c.tile)
      ?(nprocs = c.nprocs) () =
    rebuild c ?seq loops refs tile nprocs
  in
  (* Drop the sequential loop. *)
  if seq <> None then push (same ~seq:None ());
  (* Drop one reference. *)
  if nrefs > 1 then
    for r = 0 to nrefs - 1 do
      push (same ~refs:(drop_nth refs r) ())
    done;
  (* Drop a whole loop dimension: remove loop k, row k of every G, tile
     entry k. *)
  if depth > 1 then
    for k = 0 to depth - 1 do
      let keep = List.filter (fun i -> i <> k) (List.init depth Fun.id) in
      let refs' =
        List.map
          (fun (r : Reference.t) ->
            set_ref r
              (Imat.select_rows (Affine.g r.index) keep)
              (Affine.offset r.index))
          refs
      in
      push (same ~loops:(drop_nth loops k) ~refs:refs' ~tile:(drop_index c.tile k) ())
    done;
  (* Shrink extents: halve, and all the way to trip count 1.  The tile
     size is clipped so the candidate stays well-formed. *)
  List.iteri
    (fun k (lp : Nest.loop) ->
      let extent = lp.upper - lp.lower + 1 in
      let with_extent e =
        let loops' =
          List.mapi
            (fun i l -> if i = k then { l with Nest.upper = l.Nest.lower + e - 1 } else l)
            loops
        in
        let tile' = Array.copy c.tile in
        tile'.(k) <- min tile'.(k) e;
        same ~loops:loops' ~tile:tile' ()
      in
      if extent > 1 then begin
        push (with_extent 1);
        if extent > 2 then push (with_extent (extent / 2))
      end;
      if lp.lower <> 0 then
        push
          (same
             ~loops:
               (List.mapi
                  (fun i (l : Nest.loop) ->
                    if i = k then Nest.loop l.var 0 (l.upper - l.lower) else l)
                  loops)
             ()))
    loops;
  (* Shorten the sequential loop to its minimum of 2 steps. *)
  (match seq with
  | Some l when l.Nest.upper - l.Nest.lower + 1 > 2 ->
      push (same ~seq:(Some (Nest.loop l.var l.lower (l.lower + 1))) ())
  | _ -> ());
  (* Shrink tile sizes. *)
  Array.iteri
    (fun k t ->
      if t > 1 then begin
        let tile' = Array.copy c.tile in
        tile'.(k) <- 1;
        push (same ~tile:tile' ());
        if t > 2 then begin
          let tile'' = Array.copy c.tile in
          tile''.(k) <- t / 2;
          push (same ~tile:tile'' ())
        end
      end)
    c.tile;
  (* Shrink the processor count. *)
  if c.nprocs > 1 then begin
    push (same ~nprocs:1 ());
    if c.nprocs > 2 then push (same ~nprocs:(c.nprocs / 2) ())
  end;
  (* Zero or halve G entries and offset components, one at a time. *)
  List.iteri
    (fun r (rf : Reference.t) ->
      let g = Affine.g rf.index and off = Affine.offset rf.index in
      let with_ref rf' = same ~refs:(List.mapi (fun i x -> if i = r then rf' else x) refs) () in
      for i = 0 to Imat.rows g - 1 do
        for j = 0 to Imat.cols g - 1 do
          let e = Imat.get g i j in
          if e <> 0 then begin
            let set v = Imat.make (Imat.rows g) (Imat.cols g) (fun i' j' ->
                if i' = i && j' = j then v else Imat.get g i' j')
            in
            push (with_ref (set_ref rf (set 0) off));
            if abs e >= 2 then push (with_ref (set_ref rf (set (e / 2)) off))
          end
        done
      done;
      Array.iteri
        (fun j o ->
          if o <> 0 then begin
            let off' = Array.copy off in
            off'.(j) <- 0;
            push (with_ref (set_ref rf g off'));
            if abs o >= 2 then begin
              let off'' = Array.copy off in
              off''.(j) <- o / 2;
              push (with_ref (set_ref rf g off''))
            end
          end)
        off)
    refs;
  List.rev !acc

let minimize ~fails ~budget case violation =
  let evals = ref 0 in
  let steps = ref 0 in
  let current = ref case in
  let current_v = ref violation in
  let improved = ref true in
  while !improved && !evals < budget do
    improved := false;
    let w = Gen.weight !current in
    let rec try_cands = function
      | [] -> ()
      | cand :: rest ->
          if !evals >= budget then ()
          else if Gen.weight cand >= w then try_cands rest
          else begin
            incr evals;
            match fails cand with
            | Some v ->
                current := cand;
                current_v := v;
                incr steps;
                improved := true
            | None -> try_cands rest
          end
    in
    try_cands (candidates !current)
  done;
  { shrunk = !current; violation = !current_v; evals = !evals; steps = !steps }
