(** Low-overhead execution tracing for the runtime: what each domain
    actually did, when, with per-domain counters - the observability
    layer the end-of-run aggregates of {!Measure} and {!Report} cannot
    provide.

    A recorder is created once per traced run, sized to the domain
    count.  Each domain owns a preallocated ring buffer of completed
    spans plus a fixed-depth span stack and a padded counter block, so
    recording never takes a lock, never contends with another domain's
    cache lines (guard padding like {!Measure}'s), and never allocates
    beyond the boxed float the clock read returns.  With the
    {!disabled} recorder every probe is a single immediate branch and
    allocates nothing - the claim path of an untraced run is unchanged.

    All span edges come from {!Mclock}, the runtime's single monotonic
    clock: spans can never have negative durations, and trace
    timestamps are directly comparable with the runtime's own timings.

    Spans record tile claim-to-completion ([Tile]) with the body
    execution nested inside ([Exec]), barrier and gate waits
    ([Barrier]), dynamic-scheduling chunk claims ([Chunk]), orphan
    re-execution during crash recovery ([Reexec]), and whole-step
    sweeps ([Step]); instants mark steals ([Steal]) and watchdog probes
    ([Watchdog]).  Counters tally tiles run, steals, backoff yields,
    distinct elements touched (fed from {!Measure} footprints), and
    faults injected/detected.

    The result exports as Chrome [trace_event] JSON ([chrome://tracing]
    or Perfetto load it directly) and as a compact {!summary} that
    {!Report} embeds. *)

type kind =
  | Tile  (** one tile, claim to completion; arg = tile id *)
  | Exec  (** the tile body proper, nested inside [Tile] *)
  | Barrier  (** waiting at a step barrier or the resilient gate *)
  | Chunk  (** one dynamic-scheduling chunk claim; arg = start index *)
  | Steal  (** instant: a chunk or tile taken from another domain *)
  | Watchdog  (** instant: a watchdog deadline check ran its scan *)
  | Reexec  (** re-execution of an orphaned tile; arg = tile id *)
  | Step  (** one outer sequential step's compute sweep; arg = step *)

val kind_name : kind -> string

type counter =
  | Tiles_run
  | Steals
  | Backoff_yields
  | Elements_touched
  | Faults_injected
  | Faults_detected

val counter_name : counter -> string

type t

val disabled : t
(** The inert recorder: every probe returns immediately, records
    nothing, allocates nothing.  The default everywhere a [?trace]
    parameter is optional. *)

val create : ?capacity:int -> domains:int -> unit -> t
(** An enabled recorder for domains [0 .. domains - 1], each with room
    for [capacity] (default 65536) completed spans.  When a domain
    overflows its ring the oldest spans are overwritten and counted as
    dropped ({!summary}). *)

val enabled : t -> bool

(** {2 Recording (hot path)}

    All of these are no-ops on a disabled recorder and on out-of-range
    domains.  Spans nest per domain in stack discipline: every
    {!begin_span} is closed by the matching {!end_span}, which records
    the completed span.  Nesting deeper than an internal limit (32) is
    timed as zero-duration rather than corrupting the stack. *)

val begin_span : t -> int -> kind -> arg:int -> unit
val end_span : t -> int -> unit

val instant : t -> int -> kind -> arg:int -> unit
(** A zero-duration event (steal, watchdog probe). *)

val incr : t -> int -> counter -> unit
val add : t -> int -> counter -> int -> unit

val depth : t -> int -> int
(** Current span-stack depth of a domain (0 on disabled recorders). *)

val unwind : t -> int -> depth:int -> unit
(** Discard unclosed spans above [depth] without recording them: the
    exception-path cleanup that keeps a crashed domain's trace
    well-formed. *)

(** {2 Export (cold path)} *)

type event = {
  domain : int;
  kind : kind;
  t0 : float;  (** seconds on {!Mclock}, relative to recorder creation *)
  dur : float;  (** seconds; 0 for instants *)
  arg : int;
}

val events : t -> event list
(** Every recorded span, oldest first per domain (domains
    concatenated).  Overwritten (dropped) spans are absent. *)

val to_chrome_json : t -> string
(** The whole trace as Chrome [trace_event] JSON: an object with a
    [traceEvents] array of ["ph": "X"] complete events, [ts]/[dur] in
    microseconds, [pid] 0, [tid] = domain. *)

type summary = {
  domains : int;
  events : int;  (** spans currently held (dropped excluded) *)
  dropped : int;
  tiles_run : int;
  steals : int;
  backoff_yields : int;
  elements_touched : int;
  faults_injected : int;
  faults_detected : int;
  busy_seconds : (string * float) list;
      (** per span kind, total recorded duration summed over domains;
          kinds with no spans omitted *)
}

val summary : t -> summary

val counters : t -> int -> counter -> int
(** Read one domain's counter (0 on disabled recorders). *)

val pp_summary : Format.formatter -> summary -> unit

val summary_json : summary -> string
(** The summary as one JSON object (embedded by {!Report.to_json}). *)
