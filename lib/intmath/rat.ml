type t = { num : int; den : int }

let make num den =
  if den = 0 then raise Division_by_zero;
  if num = 0 then { num = 0; den = 1 }
  else
    let s = if den < 0 then -1 else 1 in
    let g = Int_math.gcd num den in
    { num = s * num / g; den = s * den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den

let add a b =
  let g = Int_math.gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  let num =
    Int_math.add_exact
      (Int_math.mul_exact a.num db)
      (Int_math.mul_exact b.num da)
  in
  make num (Int_math.mul_exact a.den db)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  (* Cross-cancel before multiplying to delay overflow. *)
  let g1 = Int_math.gcd a.num b.den and g2 = Int_math.gcd b.num a.den in
  make
    (Int_math.mul_exact (a.num / g1) (b.num / g2))
    (Int_math.mul_exact (a.den / g2) (b.den / g1))

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }
let equal a b = a.num = b.num && a.den = b.den
let sign a = compare a.num 0

let compare a b =
  (* Exact comparison via cross multiplication with cancellation. *)
  sign (sub a b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer a = a.den = 1

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Rat.to_int_exn: not an integer";
  a.num

let floor a = Int_math.floor_div a.num a.den
let ceil a = Int_math.ceil_div a.num a.den
let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
