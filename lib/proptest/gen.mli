(** Random affine loop-nest generation for the differential fuzzer.

    A {!case} is everything one oracle run needs: a nest (depth 1-3, small
    rectangular bounds, 1-4 references with random [(G, a)] index
    functions), a rectangular tile shape and a processor count.  The [G]
    matrices deliberately cover the paper's awkward corners: singular and
    dependent-column matrices, zero rows (reduction-style references),
    rank-1 projections like [A[i+j]], and non-unimodular skews - plus
    reuse of an earlier reference's [G] with a fresh offset so that
    uniformly intersecting classes with non-trivial spreads actually
    occur.  Extents and tile sizes may be 1, so degenerate trip-count-1
    dimensions are generated routinely. *)

open Loopir

type case = {
  seed : int;  (** run seed the case belongs to *)
  id : int;  (** case index within the run *)
  nest : Nest.t;
  tile : int array;  (** tile iterations per dimension, [1 <= t_k <= N_k] *)
  nprocs : int;  (** 1..4 *)
}

val generate : seed:int -> id:int -> case
(** Deterministic: depends only on [seed] and [id]. *)

val build :
  seed:int ->
  id:int ->
  ?seq:Nest.loop ->
  Nest.loop list ->
  Reference.t list ->
  tile:int array ->
  nprocs:int ->
  case
(** Re-assemble a case from parts (the shrinker's constructor).  Raises
    [Invalid_argument] on ill-formed parts, like {!Nest.make}. *)

val weight : case -> int
(** A strictly positive size measure the shrinker decreases: iteration
    count, reference count, matrix/offset magnitudes, tile volume,
    processor count.  Every shrink candidate must lower it, which bounds
    the shrink loop. *)

val pp : Format.formatter -> case -> unit
val to_string : case -> string
