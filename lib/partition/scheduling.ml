open Matrixkit
open Loopir

type assignment = Ivec.t list array

let of_schedule = Codegen.iterations_by_proc

let lex_iterations nest =
  let bounds = Nest.bounds nest in
  let n = Array.length bounds in
  let out = ref [] in
  let point = Array.make n 0 in
  let rec scan k =
    if k = n then out := Array.copy point :: !out
    else
      let lo, hi = bounds.(k) in
      for v = lo to hi do
        point.(k) <- v;
        scan (k + 1)
      done
  in
  scan 0;
  List.rev !out

let dealt nest ~nprocs ~chunk_of =
  (* Deal consecutive chunks to processors round-robin; [chunk_of
     remaining] gives the next chunk size. *)
  if nprocs < 1 then invalid_arg "Scheduling: nprocs < 1";
  let iters = Array.of_list (lex_iterations nest) in
  let total = Array.length iters in
  let out = Array.make nprocs [] in
  let pos = ref 0 and p = ref 0 in
  while !pos < total do
    let c = max 1 (chunk_of (total - !pos)) in
    let c = min c (total - !pos) in
    for k = !pos to !pos + c - 1 do
      out.(!p) <- iters.(k) :: out.(!p)
    done;
    pos := !pos + c;
    p := (!p + 1) mod nprocs
  done;
  Array.map List.rev out

let cyclic nest ~nprocs = dealt nest ~nprocs ~chunk_of:(fun _ -> 1)

let block_cyclic nest ~nprocs ~chunk =
  if chunk < 1 then invalid_arg "Scheduling.block_cyclic: chunk < 1";
  dealt nest ~nprocs ~chunk_of:(fun _ -> chunk)

let guided_self_scheduling nest ~nprocs =
  dealt nest ~nprocs ~chunk_of:(fun remaining ->
      Intmath.Int_math.ceil_div remaining nprocs)

let total a = Array.fold_left (fun acc l -> acc + List.length l) 0 a
let max_load a = Array.fold_left (fun acc l -> max acc (List.length l)) 0 a
