(* The experiment harness: regenerates every quantitative claim, worked
   example and figure of the paper (experiment ids E1-E14 in DESIGN.md),
   printing paper-value vs measured-value tables, then times the analysis
   itself with Bechamel (E13).

   Run:  dune exec bench/main.exe            (all experiments + timings)
         dune exec bench/main.exe -- E8      (one experiment)            *)

open Intmath
open Matrixkit
open Loopir
open Footprint
open Partition
open Machine

let pf = Format.printf

let header id title =
  pf "@.============================================================@.";
  pf "%s  %s@." id title;
  pf "============================================================@."

let row4 a b c d = pf "%-26s %16s %16s %16s@." a b c d
let soi = string_of_int

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every measured run of the real-execution   *)
(* experiments is appended here and dumped to BENCH_runtime.json so the *)
(* perf trajectory can be tracked across commits.                       *)
(* ------------------------------------------------------------------ *)

let bench_records : (string * Runtime.Measure.report) list ref = ref []
let record experiment r = bench_records := (experiment, r) :: !bench_records

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no nan/inf literals (a stall scenario with no attempts
   yields a nan detect time); emit null instead of corrupting the file. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let write_bench_json path =
  match List.rev !bench_records with
  | [] -> ()
  | records ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let item (experiment, (r : Runtime.Measure.report)) =
            let total_iterations =
              Array.fold_left
                (fun acc (d : Runtime.Measure.domain_stat) ->
                  acc + d.Runtime.Measure.iterations)
                0 r.Runtime.Measure.per_domain
            in
            let ns_per_iter =
              if total_iterations = 0 then 0.0
              else
                1e9 *. r.Runtime.Measure.wall_seconds
                /. float_of_int total_iterations
            in
            String.concat ""
              [
                "  {\"experiment\": \"";
                json_escape experiment;
                "\", \"name\": \"";
                json_escape r.Runtime.Measure.name;
                "\", \"policy\": \"";
                json_escape r.Runtime.Measure.policy;
                "\", \"nprocs\": ";
                soi r.Runtime.Measure.nprocs;
                ", \"steps\": ";
                soi r.Runtime.Measure.steps;
                ", \"wall_seconds\": ";
                Printf.sprintf "%.6g" r.Runtime.Measure.wall_seconds;
                ", \"ns_per_iter\": ";
                Printf.sprintf "%.1f" ns_per_iter;
                ", \"max_footprint\": ";
                soi (Runtime.Measure.max_footprint r);
                ", \"distinct_total\": ";
                soi r.Runtime.Measure.distinct_total;
                ", \"predicted_per_domain\": ";
                (match r.Runtime.Measure.predicted_per_domain with
                | Some v -> soi v
                | None -> "null");
                "}";
              ]
          in
          output_string oc "[\n";
          output_string oc (String.concat ",\n" (List.map item records));
          output_string oc "\n]\n");
      pf "@.wrote %d measured runs to %s@." (List.length records) path

(* ------------------------------------------------------------------ *)
(* E1: Example 2 / Figure 3                                            *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1" "Example 2 / Figure 3: 104 vs 140 misses per tile";
  let nest = Loopart.Programs.example2 () in
  let cost = Cost.of_nest nest in
  let b_cls =
    List.find
      (fun (c : Cost.class_cost) -> c.Cost.cls.Uniform.array_name = "B")
      cost.Cost.classes
  in
  let g = b_cls.Cost.cls.Uniform.g in
  let spread = Uniform.spread b_cls.Cost.cls in
  let sim tile =
    let sched = Codegen.make nest tile ~nprocs:100 in
    Sim.run sched Sim.default
  in
  pf "B-class footprint per tile (paper: 104 for columns, 140 for squares)@.";
  row4 "partition" "Thm 4" "Lemma 3 exact" "simulated(A+B)";
  List.iter
    (fun (name, lambda, tile) ->
      let t4 = Size.rect_cumulative ~exact:false ~lambda ~g ~spread in
      let l3 = Size.rect_cumulative ~exact:true ~lambda ~g ~spread in
      let r = sim tile in
      row4 name (soi t4) (soi l3)
        (soi (Array.fold_left max 0 (Sim.footprints r))))
    [
      ("(a) 100x1 columns", [| 99; 0 |], Tile.rect [| 100; 1 |]);
      ("(b) 10x10 squares", [| 9; 9 |], Tile.rect [| 10; 10 |]);
    ];
  let r = Rectangular.optimize cost ~nprocs:100 in
  pf "optimizer choice: %s (paper: partition (a))@."
    (Tile.to_string r.Rectangular.tile);
  let ra = sim (Tile.rect [| 100; 1 |]) in
  pf "partition (a) coherence misses: %d, invalidations: %d (paper: zero \
      coherence traffic)@."
    ra.Sim.stats.Stats.coherence_misses ra.Sim.stats.Stats.invalidations

(* ------------------------------------------------------------------ *)
(* E2: Example 3 parallelograms                                        *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2" "Example 3: parallelogram tiles beat every rectangle";
  let nest = Loopart.Programs.example3 () in
  let cost = Cost.of_nest nest in
  match Skewed.optimize cost ~nprocs:10 with
  | None -> pf "pped engine unexpectedly not applicable@."
  | Some s ->
      pf "best rectangular cost:      %.1f@." s.Skewed.rect_cost;
      pf "parallelepiped (continuous): %.1f@." s.Skewed.continuous_cost;
      pf "parallelepiped (rounded L):  %.1f@." s.Skewed.rounded_cost;
      pf "L =@.%a@." Imat.pp s.Skewed.l;
      pf "improves on rectangles: %b (paper: yes - reuse along (1,3) is \
          internalized)@."
        s.Skewed.improves_on_rect;
      let rect = (Rectangular.optimize cost ~nprocs:10).Rectangular.tile in
      let sim tile =
        (Sim.run (Codegen.make nest tile ~nprocs:10) Sim.default).Sim.stats
          .Stats.misses
      in
      pf "simulated misses: rect %d vs pped %d@." (sim rect)
        (sim s.Skewed.tile)

(* ------------------------------------------------------------------ *)
(* E3: Example 6 footprints                                            *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3" "Example 6 / Figs 5-7: |det LG| vs exact footprint";
  let g = Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  row4 "tile L1,L2" "|det LG|" "exact points" "paper formula";
  List.iter
    (fun (l1, l2) ->
      let l = Imat.of_rows [ [ l1; l1 ]; [ l2; 0 ] ] in
      let v = Rat.floor (Size.pped_single ~l:(Qmat.of_imat l) ~g) in
      let iters = Exact.pped_tile_iterations ~l in
      let exact =
        Exact.footprint_size ~iterations:iters (Affine.make g [| 0; 0 |])
      in
      row4
        (Printf.sprintf "L1=%d L2=%d" l1 l2)
        (soi v) (soi exact)
        (Printf.sprintf "%d+%d" (l1 * l2) (l1 + l2)))
    [ (4, 3); (6, 5); (10, 5); (12, 8) ];
  pf "(paper: footprint = L1*L2 plus boundary terms ~ L1 + L2 + 1)@."

(* ------------------------------------------------------------------ *)
(* E4: Example 7 dependent columns                                     *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4" "Example 7 / Section 3.4.1: dependent-column reduction";
  let g = Imat.of_rows [ [ 1; 2; 1 ]; [ 0; 0; 1 ] ] in
  let red = Size.reduce ~g ~spread:[| 0; 0; 0 |] in
  pf "A[i,2i,i+j]: kept columns {%s} (paper: a maximal independent set)@."
    (String.concat "," (List.map soi red.Size.kept_cols));
  pf "G' =@.%a@.unimodular: %b (paper: G' = [[1,1],[0,1]])@." Imat.pp
    red.Size.g_reduced
    (Imat.is_unimodular red.Size.g_reduced);
  row4 "tile" "reduced count" "exact count" "";
  List.iter
    (fun lambda ->
      let exact =
        Exact.footprint_size
          ~iterations:(Exact.rect_tile_iterations ~lambda)
          (Affine.make g [| 0; 0; 0 |])
      in
      row4
        (Printf.sprintf "%dx%d" (lambda.(0) + 1) (lambda.(1) + 1))
        (soi (Size.rect_single ~lambda ~g))
        (soi exact) "")
    [ [| 3; 3 |]; [| 7; 2 |]; [| 5; 9 |] ]

(* ------------------------------------------------------------------ *)
(* E5: Example 8, the 2:3:4 ratio                                      *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5" "Example 8: aspect ratio 2:3:4 = Abraham-Hudak";
  let nest = Loopart.Programs.example8 ~n:36 () in
  let cost = Cost.of_nest nest in
  pf "objective: %s@." (Mpoly.to_string cost.Cost.objective);
  (match Rectangular.aspect_ratio cost with
  | Some cs ->
      pf "closed-form proportions: %s (paper: 2:3:4)@."
        (String.concat ":" (List.map Rat.to_string (Array.to_list cs)))
  | None -> pf "closed form not applicable?@.");
  (* A 24x36x48 space tiles exactly into 8 equal tiles many ways; the
     (12,18,24) shape is the paper's 2:3:4. *)
  let nest_asym =
    let open Dsl in
    let i = var 0 and j = var 1 and k = var 2 in
    nest ~name:"example8_asym"
      [ doall "i" 1 24; doall "j" 1 36; doall "k" 1 48 ]
      [
        write "A" [ i; j; k ];
        read "B" [ i - int 1; j; k + int 1 ];
        read "B" [ i; j + int 1; k ];
        read "B" [ i + int 1; j - int 2; k - int 3 ];
      ]
  in
  let cost_asym = Cost.of_nest nest_asym in
  row4 "tile (vol 5184)" "Thm 4 misses" "simulated max" "";
  List.iter
    (fun sizes ->
      let tile = Tile.rect sizes in
      let predicted = Cost.misses_per_tile cost_asym tile in
      let sched = Codegen.make nest_asym tile ~nprocs:8 in
      let r = Sim.run sched Sim.default in
      row4
        (String.concat "x" (List.map soi (Array.to_list sizes)))
        (soi predicted)
        (soi (Array.fold_left max 0 (Sim.footprints r)))
        "")
    [
      [| 12; 18; 24 |];
      [| 24; 18; 12 |];
      [| 12; 9; 48 |];
      [| 24; 36; 6 |];
      [| 3; 36; 48 |];
    ];
  pf "(12x18x24 is the 2:3:4 shape - lowest predicted and measured)@.";
  match Baselines.Abraham_hudak.partition nest ~nprocs:8 with
  | Ok ah ->
      pf "Abraham-Hudak chooses %s; our optimizer chooses %s (paper: \
          identical partitions)@."
        (String.concat "x"
           (List.map soi (Array.to_list ah.Baselines.Abraham_hudak.sizes)))
        (String.concat "x"
           (List.map soi
              (Array.to_list
                 (Rectangular.optimize cost ~nprocs:8).Rectangular.sizes)))
  | Error e -> pf "AH error: %s@." e

(* ------------------------------------------------------------------ *)
(* E6: Example 9                                                       *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6" "Example 9: two uniformly intersecting classes";
  let nest = Loopart.Programs.example9 ~n:60 () in
  let cost = Cost.of_nest nest in
  List.iter
    (fun (c : Cost.class_cost) ->
      if c.Cost.cls.Uniform.array_name <> "A" then
        pf "class %s cumulative: %s@." c.Cost.cls.Uniform.array_name
          (Mpoly.to_string c.Cost.cumulative))
    cost.Cost.classes;
  pf "total traffic: %s@." (Mpoly.to_string cost.Cost.total_traffic);
  (* The paper's general-L determinant displays, regenerated
     symbolically via Theorem 2 over a generic tile matrix. *)
  let names = Pmat.entry_names 2 in
  let show_terms label g spread =
    let terms = Size.pped_terms_symbolic ~nesting:2 ~g ~spread in
    pf "%s Theorem-2 terms (|.| of each):@." label;
    List.iter (fun t -> pf "    %s@." (Mpoly.to_string ~names t)) terms
  in
  show_terms "B class" (Imat.identity 2) [| 2; 1 |];
  show_terms "C class" (Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ]) [| 1; 3 |];
  pf "@.paper prints 2L11L22 + 4L11 + 6L22 and '4L11 = 6L22'; Theorem 4 \
      arithmetic gives 4x0 + 4x1 (square optimum).  Ground truth by \
      exhaustive enumeration at volume 360:@.";
  let b1 = Affine.of_rows [ [ 1; 0 ]; [ 0; 1 ] ] [ -2; 0 ] in
  let b2 = Affine.of_rows [ [ 1; 0 ]; [ 0; 1 ] ] [ 0; -1 ] in
  let c1 = Affine.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] [ 0; 0 ] in
  let c2 = Affine.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] [ 1; 3 ] in
  row4 "tile" "exact total" "Thm 4 total" "";
  List.iter
    (fun (x0, x1) ->
      let iters = Exact.rect_tile_iterations ~lambda:[| x0 - 1; x1 - 1 |] in
      let exact =
        Exact.cumulative_footprint_size ~iterations:iters [ b1; b2 ]
        + Exact.cumulative_footprint_size ~iterations:iters [ c1; c2 ]
        + (x0 * x1)
      in
      let t4 = Cost.misses_per_tile cost (Tile.rect [| x0; x1 |]) in
      row4 (Printf.sprintf "%dx%d" x0 x1) (soi exact) (soi t4) "")
    [ (19, 19); (18, 20); (24, 15); (15, 24); (12, 30); (36, 10) ];
  pf "-> near-square tiles are optimal; we reproduce the methodology and \
      flag the paper's arithmetic slip (see EXPERIMENTS.md).@."

(* ------------------------------------------------------------------ *)
(* E7: Example 10                                                      *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7" "Example 10: general (non-unimodular / singular) G";
  let nest = Loopart.Programs.example10 ~n:60 () in
  let cost = Cost.of_nest nest in
  pf "classes (paper: B pair; C pair; lone C; lone A):@.";
  List.iter
    (fun (c : Cost.class_cost) ->
      pf "  %s with %d refs: cumulative %s@." c.Cost.cls.Uniform.array_name
        (List.length c.Cost.cls.Uniform.refs)
        (Mpoly.to_string c.Cost.cumulative))
    cost.Cost.classes;
  let x =
    Rectangular.continuous_optimum cost ~volume:360.0 ~extents:[| 60; 60 |]
  in
  pf "continuous optimum (%.2f, %.2f): 2(Li+1)=%.1f vs 3(Lj+1)=%.1f \
      (paper: 2(Li+1) = 3(Lj+1))@."
    x.(0) x.(1)
    (2.0 *. x.(0))
    (3.0 *. x.(1));
  let g = Imat.of_rows [ [ 1; 1 ]; [ 1; -1 ] ] in
  let r1 = Affine.make g [| 0; 0 |] and r2 = Affine.make g [| 4; 2 |] in
  row4 "tile" "exact B union" "Lemma 3" "Thm 4";
  List.iter
    (fun (x0, x1) ->
      let lambda = [| x0 - 1; x1 - 1 |] in
      let iters = Exact.rect_tile_iterations ~lambda in
      row4
        (Printf.sprintf "%dx%d" x0 x1)
        (soi (Exact.cumulative_footprint_size ~iterations:iters [ r1; r2 ]))
        (soi (Size.rect_cumulative ~exact:true ~lambda ~g ~spread:[| 4; 2 |]))
        (soi
           (Size.rect_cumulative ~exact:false ~lambda ~g ~spread:[| 4; 2 |])))
    [ (12, 8); (18, 12); (24, 15) ]

(* ------------------------------------------------------------------ *)
(* E8: Figure 9 steady-state coherence                                 *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8" "Figure 9: Doseq steady-state coherence traffic";
  let steps = 3 in
  (* A 32x48x64 space on 64 processors: with a 4x4x4 grid the inner
     processors have neighbours on all six sides, so the interior-tile
     analysis applies to the busiest processor. *)
  let nest =
    let open Dsl in
    let i = var 0 and j = var 1 and k = var 2 in
    nest ~name:"fig9" ~seq:(doseq "t" 1 steps)
      [ doall "i" 4 35; doall "j" 4 51; doall "k" 4 67 ]
      [
        write "A" [ i; j; k ];
        read "A" [ i - int 1; j; k + int 1 ];
        read "A" [ i; j + int 1; k ];
        read "A" [ i + int 1; j - int 2; k - int 3 ];
      ]
  in
  let cost = Cost.of_nest nest in
  pf "traffic term: %s (paper: 2LjLk + 3LiLk + 4LiLj)@."
    (Mpoly.to_string cost.Cost.total_traffic);
  row4 "tile (vol 1536)" "traffic/tile" "max coh/step" "invalidations";
  List.iter
    (fun sizes ->
      let tile = Tile.rect sizes in
      let traffic = Cost.traffic_per_tile cost tile in
      let sched = Codegen.make nest tile ~nprocs:64 in
      let r = Sim.run sched Sim.default in
      (* Busiest (most interior) processor, per steady-state step. *)
      let max_coh =
        let per = Array.make 64 0 in
        Array.iteri
          (fun p tbl -> per.(p) <- Hashtbl.length tbl)
          r.Sim.stats.Stats.unique_per_proc;
        (* unique_per_proc is the footprint, not coherence; approximate the
           busiest processor's steady traffic by footprint - volume. *)
        Array.fold_left max 0 per - (sizes.(0) * sizes.(1) * sizes.(2))
      in
      row4
        (String.concat "x" (List.map soi (Array.to_list sizes)))
        (soi traffic) (soi max_coh)
        (soi (r.Sim.stats.Stats.invalidations / (steps - 1))))
    [
      [| 8; 12; 16 |] (* 2:3:4, grid 4x4x4 *);
      [| 16; 12; 8 |] (* grid 2x4x8 *);
      [| 8; 6; 32 |] (* grid 4x8x2 *);
      [| 16; 6; 16 |] (* grid 2x8x4 *);
      [| 4; 12; 32 |] (* grid 8x4x2 *);
    ];
  pf "(8x12x16 is the 2:3:4 shape: lowest analytic traffic and lowest \
      measured boundary re-fetch; 'max coh/step' is the busiest \
      processor's footprint beyond its own tile)@."

(* ------------------------------------------------------------------ *)
(* E9: Appendix B classification                                       *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9" "Appendix B: uniformly intersecting classification";
  let id = [ [ 1; 0 ]; [ 0; 1 ] ] in
  let aff = Affine.of_rows in
  let cases =
    [
      ("A[i,j] ~ A[i+1,j-3]", aff id [ 0; 0 ], aff id [ 1; -3 ], true);
      ("A[i,j] ~ A[i,j+4]", aff id [ 0; 0 ], aff id [ 0; 4 ], true);
      ( "A[2j,3,4] ~ A[2j-4,3,4]",
        aff [ [ 0; 0; 0 ]; [ 2; 0; 0 ] ] [ 0; 3; 4 ],
        aff [ [ 0; 0; 0 ]; [ 2; 0; 0 ] ] [ -4; 3; 4 ],
        true );
      ( "A[i,j] ~ A[2i,j]",
        aff id [ 0; 0 ],
        aff [ [ 2; 0 ]; [ 0; 1 ] ] [ 0; 0 ],
        false );
      ( "A[i,j] ~ A[2i,2j]",
        aff id [ 0; 0 ],
        aff [ [ 2; 0 ]; [ 0; 2 ] ] [ 0; 0 ],
        false );
      ( "A[j,2,4] ~ A[j,3,4]",
        aff [ [ 0; 0; 0 ]; [ 1; 0; 0 ] ] [ 0; 2; 4 ],
        aff [ [ 0; 0; 0 ]; [ 1; 0; 0 ] ] [ 0; 3; 4 ],
        false );
      ( "A[2i] ~ A[2i+1]",
        aff [ [ 2 ]; [ 0 ] ] [ 0 ],
        aff [ [ 2 ]; [ 0 ] ] [ 1 ],
        false );
      ( "A[i+2,2i+4] ~ A[i+3,2i+8]",
        aff [ [ 1; 2 ]; [ 0; 0 ] ] [ 2; 4 ],
        aff [ [ 1; 2 ]; [ 0; 0 ] ] [ 3; 8 ],
        false );
    ]
  in
  row4 "pair" "ours" "paper" "agree";
  List.iter
    (fun (name, a, b, expected) ->
      let got = Uniform.uniformly_intersecting a b in
      row4 name (string_of_bool got) (string_of_bool expected)
        (if got = expected then "yes" else "NO"))
    cases

(* ------------------------------------------------------------------ *)
(* E10: Ramanujam-Sadayappan agreement                                 *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10" "Communication-free partitions (Ramanujam-Sadayappan)";
  row4 "program" "comm-free" "normal(s)" "";
  List.iter
    (fun (name, nest) ->
      let t = Baselines.Ramanujam_sadayappan.analyze nest in
      let normals =
        match t.Baselines.Ramanujam_sadayappan.normals with
        | None -> "-"
        | Some n ->
            String.concat "; " (List.map Ivec.to_string (Imat.row_list n))
      in
      row4 name
        (string_of_bool t.Baselines.Ramanujam_sadayappan.comm_free)
        normals "")
    [
      ("example2", Loopart.Programs.example2 ());
      ("example3", Loopart.Programs.example3 ());
      ("example8", Loopart.Programs.example8 ());
      ("relax_inplace", Loopart.Programs.relax_inplace ());
      ("matmul", Loopart.Programs.matmul ());
    ];
  let nest = Loopart.Programs.example2 () in
  let t = Baselines.Ramanujam_sadayappan.analyze nest in
  (match Baselines.Ramanujam_sadayappan.slab_tile t nest ~nprocs:100 with
  | Some tile ->
      let r = Sim.run (Codegen.make nest tile ~nprocs:100) Sim.default in
      pf "example2 R-S slab %s: coherence misses %d, misses %d = distinct \
          elements %d@."
        (Tile.to_string tile) r.Sim.stats.Stats.coherence_misses
        r.Sim.stats.Stats.misses (Addr.size r.Sim.addrs)
  | None -> pf "no slab?@.");
  pf "(our optimizer finds the same partition from the footprint side, \
      and additionally optimizes example10 where no communication-free \
      partition exists - see E7)@."

(* ------------------------------------------------------------------ *)
(* E11: matmul blocks vs rows                                          *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11" "Matrix multiply (Appendix A): blocks vs rows/columns";
  let n = 24 and nprocs = 16 in
  let nest = Loopart.Programs.matmul ~n () in
  let cost = Cost.of_nest nest in
  row4 "partition" "pred misses" "sim misses" "hops(aligned)";
  List.iter
    (fun (name, tile) ->
      let predicted = Cost.misses_per_tile cost tile * nprocs in
      let sched = Codegen.make nest tile ~nprocs in
      let placement = Data_partition.aligned sched cost in
      let r =
        Sim.run sched
          {
            Sim.default with
            Sim.topology = Sim.Mesh2d;
            placement = Some placement;
          }
      in
      row4 name (soi predicted)
        (soi r.Sim.stats.Stats.misses)
        (soi r.Sim.stats.Stats.network_hops))
    [
      ("rows (i split)", Tile.rect [| n / nprocs; n; n |]);
      ("cols (j split)", Tile.rect [| n; n / nprocs; n |]);
      ("blocks (4x4)", Tile.rect [| n / 4; n / 4; n |]);
    ];
  pf "(paper intro: square blocks have much higher reuse than rows or \
      columns)@."

(* ------------------------------------------------------------------ *)
(* E12: accuracy ablation                                              *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12" "Estimate accuracy: Theorem 4 vs Theorem 2 vs exact";
  let gs =
    [
      ("identity", Imat.identity 2, [| 2; 1 |]);
      ("skew [[1,0],[1,1]]", Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ], [| 1; 2 |]);
      ("ex2 [[1,1],[1,-1]]", Imat.of_rows [ [ 1; 1 ]; [ 1; -1 ] ], [| 4; 2 |]);
      ("[[2,1],[0,1]]", Imat.of_rows [ [ 2; 1 ]; [ 0; 1 ] ], [| 2; 2 |]);
    ]
  in
  row4 "G (spread)" "exact" "Thm4 err%" "Thm2/idx err%";
  List.iter
    (fun (name, g, spread) ->
      let lambda = [| 11; 9 |] in
      let iters = Exact.rect_tile_iterations ~lambda in
      let r1 = Affine.make g (Ivec.zero 2) in
      let r2 = Affine.make g spread in
      let exact =
        Exact.cumulative_footprint_size ~iterations:iters [ r1; r2 ]
      in
      let t4 = Size.rect_cumulative ~exact:false ~lambda ~g ~spread in
      let l =
        Qmat.of_rows Rat.[ [ of_int 12; zero ]; [ zero; of_int 10 ] ]
      in
      let t2 =
        Rat.to_float (Size.pped_cumulative ~l ~g ~spread)
        /. float_of_int (abs (Imat.det g))
      in
      let err v = 100.0 *. (v -. float_of_int exact) /. float_of_int exact in
      row4 name (soi exact)
        (Printf.sprintf "%+.1f" (err (float_of_int t4)))
        (Printf.sprintf "%+.1f" (err t2)))
    gs;
  pf "(Theorem 2's parallelepiped estimate, normalized by the lattice \
      index |det G|, tracks the exact count; Theorem 4 is sharper for \
      rectangular tiles, as Section 3.7 claims)@."

(* ------------------------------------------------------------------ *)
(* E14: data partitioning                                              *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14" "Data partitioning & alignment (Section 4, footnote 2)";
  let nest = Loopart.Programs.relax_inplace ~n:65 ~steps:2 () in
  let cost = Cost.of_nest nest in
  let tile = (Rectangular.optimize cost ~nprocs:16).Rectangular.tile in
  let sched = Codegen.make nest tile ~nprocs:16 in
  row4 "placement" "local fills" "remote fills" "hops";
  List.iter
    (fun (name, placement) ->
      let r =
        Sim.run sched
          {
            Sim.default with
            Sim.topology = Sim.Mesh2d;
            placement = Some placement;
          }
      in
      row4 name
        (soi r.Sim.stats.Stats.local_fills)
        (soi r.Sim.stats.Stats.remote_fills)
        (soi r.Sim.stats.Stats.network_hops))
    [
      ("aligned (ours)", Data_partition.aligned sched cost);
      ("block rows", Data_partition.block_row ~nprocs:16 ~rows:64);
      ("round robin", Data_partition.round_robin ~nprocs:16);
    ];
  pf "cumulative spreads a+ (footnote 2, drive data partitioning):@.";
  List.iter
    (fun (name, a) -> pf "  %s: %s@." name (Ivec.to_string a))
    (Data_partition.cumulative_spread_note cost)

(* ------------------------------------------------------------------ *)
(* E15: cache lines                                                    *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15" "Cache lines > 1 (Section 2.2's extension)";
  let nest = Loopart.Programs.relax_inplace ~n:65 ~steps:2 () in
  let cost = Cost.of_nest nest in
  pf "element objective: %s@." (Mpoly.to_string cost.Cost.objective);
  pf "line objective (lines of 8): %s@."
    (Mpoly.to_string (Cost.line_adjusted_objective cost ~line_size:8));
  row4 "tile (256 iters)" "misses line=1" "misses line=4" "misses line=8";
  List.iter
    (fun sizes ->
      let sched = Codegen.make nest (Tile.rect sizes) ~nprocs:16 in
      let m line_size =
        (Sim.run sched { Sim.default with Sim.line_size }).Sim.stats
          .Stats.misses
      in
      row4
        (String.concat "x" (List.map soi (Array.to_list sizes)))
        (soi (m 1)) (soi (m 4)) (soi (m 8)))
    [ [| 32; 8 |]; [| 16; 16 |]; [| 8; 32 |]; [| 4; 64 |] ];
  pf "(unit lines prefer the square 16x16; wider lines shift the optimum \
      toward tiles elongated along the contiguous j dimension, exactly \
      as the line-adjusted objective predicts)@."

(* ------------------------------------------------------------------ *)
(* E16: virtual-to-physical placement (Section 4, Placement)           *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header "E16" "Placement: mapping the tile grid onto the 2-D mesh";
  row4 "grid on mesh" "linear" "best strategy" "shuffled";
  List.iter
    (fun (grid, nprocs) ->
      let mesh = Mesh.mesh ~nprocs in
      let cost s =
        Placement_map.neighbor_hop_cost ~grid ~mesh
          (Placement_map.permutation s ~grid ~mesh)
      in
      let _, _, best_cost = Placement_map.best ~grid ~mesh in
      row4
        (Printf.sprintf "%s / %d procs"
           (String.concat "x" (List.map soi (Array.to_list grid)))
           nprocs)
        (soi (cost Placement_map.Linear))
        (soi best_cost)
        (soi (cost (Placement_map.Shuffled 42))))
    [
      ([| 4; 4 |], 16);
      ([| 16; 1 |], 16);
      ([| 8; 8 |], 64);
      ([| 4; 4; 4 |], 64);
      ([| 2; 2; 16 |], 64);
    ];
  pf "(neighbour-hop totals; the paper calls placement 'a smaller effect \
      that may become important in very large machines' - the gap to the \
      shuffled mapping quantifies that effect)@."

(* ------------------------------------------------------------------ *)
(* E17: end-to-end execution-time estimates                            *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17"
    "Estimated execution time: the measurement Section 4 deferred";
  let params = Timing.alewife_like in
  pf "latency model: %a@." Timing.pp_params params;
  row4 "program" "naive tile" "optimized tile" "speedup";
  List.iter
    (fun (name, nest, nprocs, naive) ->
      let cost = Cost.of_nest nest in
      let good = (Rectangular.optimize cost ~nprocs).Rectangular.tile in
      let run tile =
        let sched = Codegen.make nest tile ~nprocs in
        let placement = Data_partition.aligned sched cost in
        (Sim.run sched
           {
             Sim.default with
             Sim.topology = Sim.Mesh2d;
             placement = Some placement;
           })
          .Sim.stats
      in
      let t_naive = Timing.cycles (run naive) ~nprocs params in
      let t_good = Timing.cycles (run good) ~nprocs params in
      row4 name
        (Printf.sprintf "%.0f" t_naive)
        (Printf.sprintf "%.0f" t_good)
        (Printf.sprintf "%.2fx" (t_naive /. t_good)))
    [
      ( "example2 (P=100)",
        Loopart.Programs.example2 (),
        100,
        Tile.rect [| 10; 10 |] );
      ( "matmul (P=16)",
        Loopart.Programs.matmul ~n:24 (),
        16,
        Tile.rect [| 24; 24; 2 |] (* k split: worst for reuse *) );
      ( "relax_inplace (P=16)",
        Loopart.Programs.relax_inplace ~n:65 ~steps:3 (),
        16,
        Tile.rect [| 4; 64 |] );
      ( "example8_inplace (P=8)",
        Loopart.Programs.example8_inplace ~n:27 ~steps:3 (),
        8,
        Tile.rect [| 3; 24; 12 |] );
    ];
  pf "(cycles per processor under the latency model; the optimized \
      partitions win end to end, closing the loop the paper left open)@."

(* ------------------------------------------------------------------ *)
(* E18: compile-time tiles vs run-time scheduling                      *)
(* ------------------------------------------------------------------ *)

let e18 () =
  header "E18"
    "Compile-time tiles vs run-time scheduling (the Section 1 argument)";
  let params = Timing.alewife_like in
  let nprocs = 16 in
  List.iter
    (fun (name, nest) ->
      let cost = Cost.of_nest nest in
      let tiled_sched =
        Codegen.make nest (Rectangular.optimize cost ~nprocs).Rectangular.tile
          ~nprocs
      in
      pf "@.%s:@." name;
      row4 "policy" "misses" "coh misses" "est. cycles";
      List.iter
        (fun (policy, per_proc) ->
          let r = Sim.run_assignment nest ~per_proc Sim.default in
          row4 policy
            (soi r.Sim.stats.Stats.misses)
            (soi r.Sim.stats.Stats.coherence_misses)
            (Printf.sprintf "%.0f" (Timing.cycles r.Sim.stats ~nprocs params)))
        [
          ("compile-time tiles", Scheduling.of_schedule tiled_sched);
          ("guided self-sched [1]", Scheduling.guided_self_scheduling nest ~nprocs);
          ("block-cyclic (8)", Scheduling.block_cyclic nest ~nprocs ~chunk:8);
          ("cyclic", Scheduling.cyclic nest ~nprocs);
        ])
    [
      ("relax_inplace 64x64 (3 steps)",
       Loopart.Programs.relax_inplace ~n:65 ~steps:3 ());
      ("matmul 24^3", Loopart.Programs.matmul ~n:24 ());
    ];
  pf "@.(run-time policies balance load but scatter each processor's \
      iterations across the space, inflating footprints and coherence - \
      the paper's argument for compile-time partitioning, quantified)@."

(* ------------------------------------------------------------------ *)
(* E19: finite caches and capacity blocking                            *)
(* ------------------------------------------------------------------ *)

let e19 () =
  header "E19" "Finite caches: capacity blocking (Section 2.2's remark)";
  let nest = Loopart.Programs.matmul ~n:24 () in
  let cost = Cost.of_nest nest in
  let tile = (Rectangular.optimize cost ~nprocs:16).Rectangular.tile in
  let sched = Codegen.make nest tile ~nprocs:16 in
  let geometry = Cache.Finite { sets = 32; ways = 4 } (* 128 lines *) in
  pf "tile %s has working set %d elements; cache holds 128@."
    (Tile.to_string tile) (Capacity.footprint cost tile);
  let sub = Capacity.subtile cost tile ~capacity:128 in
  pf "capacity blocking picks subtile %s (working set %d)@."
    (Tile.to_string sub) (Capacity.footprint cost sub);
  row4 "execution order" "misses" "replacement" "miss rate %";
  let run per_proc =
    Sim.run_assignment nest ~per_proc { Sim.default with Sim.geometry }
  in
  List.iter
    (fun (name, per_proc) ->
      let r = run per_proc in
      row4 name
        (soi r.Sim.stats.Stats.misses)
        (soi r.Sim.stats.Stats.replacement_misses)
        (Printf.sprintf "%.1f" (100.0 *. Stats.miss_rate r.Sim.stats)))
    [
      ("whole tile (thrashes)", Codegen.iterations_by_proc sched);
      ("blocked by subtile", Capacity.blocked_iterations sched ~subtile:sub);
    ];
  pf "(the aspect ratio is unchanged - only the unit of execution \
      shrinks, exactly as Section 2.2 prescribes)@."

(* ------------------------------------------------------------------ *)
(* E20: measured execution on OCaml 5 domains - the machine run that   *)
(* Section 4 deferred to Alewife hardware                              *)
(* ------------------------------------------------------------------ *)

let e20 () =
  header "E20"
    "Measured execution on OCaml 5 domains (the deferred Section 4 run)";
  let open Loopart in
  let exec ?steps ~policy nest nprocs =
    let a = Driver.analyze ~nprocs nest in
    let r =
      Driver.execute
        ~config:{ Driver.default_exec_config with policy; repeats = 2; steps }
        a
    in
    record "E20" r;
    r
  in
  let workloads =
    [
      ("example2", Programs.example2 (), None);
      ("stencil5", Programs.stencil5 ~n:65 (), Some 2);
      ("matmul", Programs.matmul ~n:24 (), None);
    ]
  in
  pf "optimized tile at P in {1,2,4,8}: measured vs predicted footprint@.";
  row4 "nest / P" "wall ms" "max footprint" "Thm 2/4 predicts";
  List.iter
    (fun (name, nest, steps) ->
      List.iter
        (fun p ->
          let r = exec ?steps ~policy:Driver.Tiled nest p in
          row4
            (Printf.sprintf "%s / %d" name p)
            (Printf.sprintf "%.2f" (1e3 *. r.Runtime.Measure.wall_seconds))
            (soi (Runtime.Measure.max_footprint r))
            (match r.Runtime.Measure.predicted_per_domain with
            | Some v -> soi v
            | None -> "-"))
        [ 1; 2; 4; 8 ])
    workloads;
  pf "@.stencil5 at P = 8: compile-time tiles vs run-time schedulers@.";
  row4 "policy" "wall ms" "max footprint" "distinct total";
  let nest = Programs.stencil5 ~n:65 () in
  let footprint_of policy =
    let r = exec ~steps:2 ~policy nest 8 in
    row4 r.Runtime.Measure.policy
      (Printf.sprintf "%.2f" (1e3 *. r.Runtime.Measure.wall_seconds))
      (soi (Runtime.Measure.max_footprint r))
      (soi r.Runtime.Measure.distinct_total);
    Runtime.Measure.max_footprint r
  in
  let tiled = footprint_of Driver.Tiled in
  let cyclic = footprint_of Driver.Cyclic in
  ignore (footprint_of (Driver.Block_cyclic 8));
  ignore (footprint_of Driver.Guided);
  ignore (footprint_of (Driver.Work_steal 8));
  pf "tiled max footprint %d vs cyclic %d - tiled smaller: %b@." tiled cyclic
    (tiled < cyclic);
  pf "(run-time self-scheduling balances load but touches nearly the whole@.";
  pf " grid per processor - the introduction's case for compile-time tiles)@."

(* ------------------------------------------------------------------ *)
(* E21: fault-tolerance tax - heartbeat/watchdog overhead on a         *)
(* fault-free run, and recovery latency under injected faults          *)
(* ------------------------------------------------------------------ *)

(* Warmed median-of-k sampling.  One discarded warmup run pays the
   one-time costs (code warmup, allocator growth, CPU governor ramp),
   and the median of the remaining samples is robust to scheduler
   outliers in both directions - minimum-of-k without warmup let a
   lucky baseline minimum meet an unlucky treatment minimum and report
   impossible negative overheads. *)
let median_of ~warmup ~samples f =
  if samples < 1 then invalid_arg "median_of: samples < 1";
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let xs = Array.init samples (fun _ -> f ()) in
  Array.sort compare xs;
  xs.(samples / 2)

let e21 () =
  header "E21"
    "Fault-tolerance: watchdog overhead (fault-free) and recovery latency";
  let open Loopart in
  let nest = Programs.stencil5 ~n:65 () in
  let nprocs = 8 and steps = 2 and reps = 11 in
  let a = Driver.analyze ~nprocs nest in
  let exec_config =
    { Driver.default_exec_config with Driver.steps = Some steps }
  in
  (* Baseline: the plain runtime on the same tiled work-stealing queues,
     one full job including domain spawn and operand allocation - the
     same costs the resilient wall clock carries. *)
  let compiled = Runtime.Exec.compile nest in
  let sched = Driver.schedule a in
  let work =
    Runtime.Exec.queues_of_assignment (Scheduling.of_schedule sched) ~chunk:1
  in
  let run_plain () =
    let t0 = Runtime.Mclock.now () in
    Runtime.Pool.with_pool nprocs (fun pool ->
        ignore (Runtime.Exec.time pool compiled work ~steps ~repeats:1));
    Runtime.Mclock.now () -. t0
  in
  let resilient ?plan () =
    let plan =
      Option.map
        (fun s ->
          match Runtime.Fault.of_string s with
          | Ok p -> p
          | Error e -> invalid_arg e)
        plan
    in
    Driver.execute_resilient ~config:exec_config
      ~resilience:
        { Runtime.Resilient.default_config with Runtime.Resilient.deadline_ms = 100 }
      ?plan a
    |> fst
  in
  let wall (r : Runtime.Report.t) = r.Runtime.Report.total_wall_seconds in
  let run_fault_free () = wall (resilient ()) in
  (* A job here is dominated by spawning/joining nprocs domains, so
     scheduler drift between two separately-timed blocks dwarfs the
     watchdog cost we want to isolate.  Interleave the samples pairwise
     (plain, resilient, plain, resilient, ...) so drift hits both sides
     equally, then take per-side medians. *)
  ignore (run_plain ());
  ignore (run_fault_free ());
  let ps = Array.make reps 0.0 and fs = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    ps.(i) <- run_plain ();
    fs.(i) <- run_fault_free ()
  done;
  let med a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(reps / 2)
  in
  let plain = med ps in
  let fault_free = med fs in
  let overhead_pct = 100.0 *. ((fault_free /. plain) -. 1.0) in
  pf "stencil5 n=65, P=%d, %d steps (1 warmup each + per-side medians of %d \
      interleaved full jobs incl. spawn)@."
    nprocs steps reps;
  pf "  plain runtime            %8.2f ms@." (1e3 *. plain);
  pf "  resilient, no faults     %8.2f ms  (overhead %+.1f%%, target < 5%% \
      on multi-core hosts)@."
    (1e3 *. fault_free) overhead_pct;
  if Domain.recommended_domain_count () < nprocs then
    pf "  (host exposes %d core(s) for %d domains: end-of-step gate waits \
        serialize,@.   which inflates the watchdog's share of the wall \
        clock)@."
      (Domain.recommended_domain_count ()) nprocs;
  let crash = resilient ~plan:"crash" () in
  let crash_extra = wall crash -. fault_free in
  pf "  one crash, tile recovery %8.2f ms  (%+.2f ms vs fault-free, %d \
      tile(s) re-executed, completed %b, covered once %b)@."
    (1e3 *. wall crash) (1e3 *. crash_extra)
    (Runtime.Report.reexecuted_tiles crash)
    crash.Runtime.Report.completed crash.Runtime.Report.covered_exactly_once;
  let stall = resilient ~plan:"stall:10000" () in
  let detect =
    match stall.Runtime.Report.attempts with
    | first :: _ -> first.Runtime.Report.wall_seconds
    | [] -> nan
  in
  pf "  10 s stall, 100 ms deadline: detected in %.2f ms, job completed %b \
      in %.2f ms@."
    (1e3 *. detect) stall.Runtime.Report.completed (1e3 *. wall stall);
  (* Machine-readable trail for the perf trajectory. *)
  let oc = open_out "BENCH_resilience.json" in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (String.concat ""
           [
             "[\n";
             Printf.sprintf
               "  {\"experiment\": \"E21\", \"scenario\": \"plain\", \
                \"nprocs\": %d, \"steps\": %d, \"wall_seconds\": %.6g},\n"
               nprocs steps plain;
             Printf.sprintf
               "  {\"experiment\": \"E21\", \"scenario\": \
                \"resilient-fault-free\", \"nprocs\": %d, \"steps\": %d, \
                \"wall_seconds\": %.6g, \"overhead_pct\": %.2f},\n"
               nprocs steps fault_free overhead_pct;
             Printf.sprintf
               "  {\"experiment\": \"E21\", \"scenario\": \"resilient-crash\", \
                \"nprocs\": %d, \"steps\": %d, \"wall_seconds\": %.6g, \
                \"recovery_extra_seconds\": %.6g, \"tiles_reexecuted\": %d, \
                \"completed\": %b, \"covered_exactly_once\": %b},\n"
               nprocs steps (wall crash) crash_extra
               (Runtime.Report.reexecuted_tiles crash)
               crash.Runtime.Report.completed
               crash.Runtime.Report.covered_exactly_once;
             Printf.sprintf
               "  {\"experiment\": \"E21\", \"scenario\": \"resilient-stall\", \
                \"nprocs\": %d, \"steps\": %d, \"deadline_ms\": 100, \
                \"detect_seconds\": %s, \"wall_seconds\": %s, \
                \"completed\": %b}\n"
               nprocs steps (json_float detect)
               (json_float (wall stall))
               stall.Runtime.Report.completed;
             "]\n";
           ]));
  pf "@.wrote resilience measurements to BENCH_resilience.json@."

(* ------------------------------------------------------------------ *)
(* E22: kernel lowering - strided incremental-address loops vs the     *)
(* point interpreter, sequential and across domain counts              *)
(* ------------------------------------------------------------------ *)

let e22_scale = ref 4
let e22_trials = ref 3

let e22 () =
  let scale = max 1 !e22_scale and trials = max 1 !e22_trials in
  header "E22"
    (Printf.sprintf
       "Kernel lowering: specialized strided loops vs the interpreter \
        (scale %d, median of %d)"
       scale trials);
  let open Loopart in
  let cores = Domain.recommended_domain_count () in
  let records = ref [] in
  let measure ~name ~nest ~steps ~nprocs ~path =
    let a = Driver.analyze ~nprocs nest in
    let sched = Driver.schedule a in
    let compiled = Runtime.Exec.compile nest in
    let iterations = steps * Array.fold_left ( * ) 1 (Nest.extents nest) in
    let wall =
      Runtime.Pool.with_pool nprocs (fun pool ->
          let once =
            match path with
            | `Interp ->
                let work =
                  Runtime.Exec.static_of_assignment
                    (Scheduling.of_schedule sched)
                in
                fun () ->
                  let w, _, _ =
                    Runtime.Exec.time pool compiled work ~steps ~repeats:1
                  in
                  w
            | `Kernel force_generic ->
                let plan = Runtime.Kernel.plan ~force_generic compiled in
                let boxes = Runtime.Kernel.boxes_of_schedule sched in
                fun () ->
                  let w, _, _ =
                    Runtime.Kernel.time pool plan ~boxes ~steps ~repeats:1
                  in
                  w
          in
          median_of ~warmup:1 ~samples:trials once)
    in
    let ns_per_iter = 1e9 *. wall /. float_of_int iterations in
    let path_name =
      match path with
      | `Interp -> "interpreter"
      | `Kernel true -> "kernel-generic"
      | `Kernel false -> "kernel"
    in
    records :=
      Printf.sprintf
        "  {\"experiment\": \"E22\", \"name\": \"%s\", \"path\": \"%s\", \
         \"nprocs\": %d, \"steps\": %d, \"scale\": %d, \"trials\": %d, \
         \"iterations\": %d, \"wall_seconds\": %.6g, \"ns_per_iter\": %.2f, \
         \"cores\": %d}"
        (json_escape name) path_name nprocs steps scale trials iterations wall
        ns_per_iter cores
      :: !records;
    (wall, ns_per_iter)
  in
  let workloads =
    [
      ("stencil5", Programs.stencil5 ~n:(128 * scale) (), 2);
      ("matmul", Programs.matmul ~n:(64 * scale) (), 1);
    ]
  in
  pf "host exposes %d core%s (Domain.recommended_domain_count)@." cores
    (if cores = 1 then "" else "s");
  List.iter
    (fun (name, nest, steps) ->
      pf "@.--- %s, %d iterations x %d step%s ---@." name
        (Array.fold_left ( * ) 1 (Nest.extents nest))
        steps
        (if steps = 1 then "" else "s");
      pf "%-24s %10s %14s %10s@." "path / P" "wall ms" "ns/iter" "speedup";
      let measure_row ~nprocs ~path label base =
        let wall, ns = measure ~name ~nest ~steps ~nprocs ~path in
        pf "%-24s %10.2f %14.2f %10s@." label (1e3 *. wall) ns
          (match base with
          | Some b -> Printf.sprintf "%.2fx" (b /. wall)
          | None -> "-");
        wall
      in
      let interp1 = measure_row ~nprocs:1 ~path:`Interp "interpreter / 1" None in
      let generic1 =
        measure_row ~nprocs:1 ~path:(`Kernel true) "kernel-generic / 1"
          (Some interp1)
      in
      let kernel1 =
        measure_row ~nprocs:1 ~path:(`Kernel false) "kernel / 1" (Some interp1)
      in
      let kernel8 =
        measure_row ~nprocs:8 ~path:(`Kernel false) "kernel / 8" (Some kernel1)
      in
      pf "generic strided loop vs interpreter: %.2fx (target >= 5x)@."
        (interp1 /. generic1);
      pf "tiled 8-domain vs 1-domain (kernel): %.2fx%s@." (kernel1 /. kernel8)
        (if cores = 1 then
           " - single-core host, parallel speedup is not expected here"
         else ""))
    workloads;
  let oc = open_out "BENCH_kernels.json" in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "[\n";
      output_string oc (String.concat ",\n" (List.rev !records));
      output_string oc "\n]\n");
  pf "@.wrote kernel measurements to BENCH_kernels.json@."

(* ------------------------------------------------------------------ *)
(* --profile: traced runs of the two E22 workloads, broken down into   *)
(* per-phase busy time per domain, dumped next to the BENCH_*.json     *)
(* files                                                               *)
(* ------------------------------------------------------------------ *)

let profile_requested = ref false

let run_profile () =
  header "PROFILE" "Per-phase runtime breakdown (traced runs)";
  let open Loopart in
  let nprocs = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let kinds =
    Runtime.Trace.
      [ Tile; Exec; Barrier; Chunk; Steal; Watchdog; Reexec; Step ]
  in
  let counters =
    Runtime.Trace.
      [
        Tiles_run;
        Steals;
        Backoff_yields;
        Elements_touched;
        Faults_injected;
        Faults_detected;
      ]
  in
  let one ~name ~nest ~steps ~kernels =
    let trace = Runtime.Trace.create ~domains:nprocs () in
    let config =
      {
        Driver.default_exec_config with
        Driver.steps = Some steps;
        repeats = 1;
        kernels;
        trace = Some trace;
      }
    in
    let a = Driver.analyze ~nprocs nest in
    ignore (Driver.execute ~config a);
    let s = Runtime.Trace.summary trace in
    pf "@.--- %s on %d domains (%s path) ---@." name nprocs
      (if kernels then "kernel" else "interpreter");
    pf "%a@." Runtime.Trace.pp_summary s;
    (* Per-domain busy seconds by span kind, from the raw events. *)
    let busy = Array.make_matrix nprocs (List.length kinds) 0.0 in
    List.iter
      (fun (e : Runtime.Trace.event) ->
        List.iteri
          (fun ki k ->
            if e.Runtime.Trace.kind = k then
              busy.(e.Runtime.Trace.domain).(ki) <-
                busy.(e.Runtime.Trace.domain).(ki) +. e.Runtime.Trace.dur)
          kinds)
      (Runtime.Trace.events trace);
    let domain_json p =
      String.concat ""
        [
          Printf.sprintf "      {\"domain\": %d, \"busy_seconds\": {" p;
          String.concat ", "
            (List.filteri
               (fun ki _ -> busy.(p).(ki) > 0.0)
               (List.mapi
                  (fun ki k ->
                    Printf.sprintf "\"%s\": %s"
                      (Runtime.Trace.kind_name k)
                      (json_float busy.(p).(ki)))
                  kinds));
          "}, ";
          String.concat ", "
            (List.map
               (fun c ->
                 Printf.sprintf "\"%s\": %d"
                   (Runtime.Trace.counter_name c)
                   (Runtime.Trace.counters trace p c))
               counters);
          "}";
        ]
    in
    String.concat ""
      [
        Printf.sprintf
          "  {\"experiment\": \"profile\", \"name\": \"%s\", \"path\": \
           \"%s\", \"nprocs\": %d, \"steps\": %d,\n   \"summary\": "
          (json_escape name)
          (if kernels then "kernel" else "interpreter")
          nprocs steps;
        Runtime.Trace.summary_json s;
        ",\n   \"domains\": [\n";
        String.concat ",\n" (List.init nprocs domain_json);
        "\n   ]}";
      ]
  in
  let items =
    [
      one ~name:"stencil5" ~nest:(Programs.stencil5 ~n:128 ()) ~steps:2
        ~kernels:true;
      one ~name:"matmul" ~nest:(Programs.matmul ~n:64 ()) ~steps:1
        ~kernels:false;
    ]
  in
  let oc = open_out "BENCH_profile.json" in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "[\n";
      output_string oc (String.concat ",\n" items);
      output_string oc "\n]\n");
  pf "@.wrote per-phase breakdowns to BENCH_profile.json@."

(* ------------------------------------------------------------------ *)
(* E13: Bechamel timings of the analysis itself                        *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let analysis name nest nprocs =
    Test.make ~name
      (Staged.stage (fun () -> ignore (Loopart.Driver.analyze ~nprocs nest)))
  in
  [
    analysis "E1 analyze example2" (Loopart.Programs.example2 ()) 100;
    analysis "E2 analyze example3" (Loopart.Programs.example3 ()) 10;
    analysis "E5 analyze example8" (Loopart.Programs.example8 ~n:36 ()) 8;
    analysis "E6 analyze example9" (Loopart.Programs.example9 ()) 36;
    analysis "E7 analyze example10" (Loopart.Programs.example10 ()) 36;
    analysis "E11 analyze matmul" (Loopart.Programs.matmul ()) 16;
    Test.make ~name:"E9 classify stencil27"
      (Staged.stage (fun () ->
           ignore (Uniform.classify_nest (Loopart.Programs.stencil27 ()))));
    Test.make ~name:"E12 hnf 4x4"
      (Staged.stage (fun () ->
           ignore
             (Hnf.row_hnf
                (Imat.of_rows
                   [
                     [ 4; 6; 1; 0 ];
                     [ 2; 5; -3; 2 ];
                     [ 0; 7; 2; 9 ];
                     [ 1; 1; 1; 1 ];
                   ]))));
  ]

let e13 () =
  header "E13" "Compile-time cost of the analysis (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let test = Test.make_grouped ~name:"analysis" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  pf "%-36s %16s@." "analysis" "ns / run";
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> pf "%-36s %16.0f@." name est
      | Some _ | None -> pf "%-36s %16s@." name "-")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", e1);
    ("E2", e2);
    ("E3", e3);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7);
    ("E8", e8);
    ("E9", e9);
    ("E10", e10);
    ("E11", e11);
    ("E12", e12);
    ("E13", e13);
    ("E14", e14);
    ("E15", e15);
    ("E16", e16);
    ("E17", e17);
    ("E18", e18);
    ("E19", e19);
    ("E20", e20);
    ("E21", e21);
    ("E22", e22);
  ]

let () =
  (* Flags anywhere on the command line; remaining words select
     experiments.  --scale and --trials parameterize E22. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "--scale" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s when s >= 1 -> e22_scale := s
        | Some _ | None -> pf "ignoring bad --scale %s@." v);
        parse acc rest
    | "--trials" :: v :: rest ->
        (match int_of_string_opt v with
        | Some t when t >= 1 -> e22_trials := t
        | Some _ | None -> pf "ignoring bad --trials %s@." v);
        parse acc rest
    | "--profile" :: rest ->
        profile_requested := true;
        parse acc rest
    | id :: rest -> parse (id :: acc) rest
  in
  let rest = parse [] (List.tl (Array.to_list Sys.argv)) in
  let selected =
    match rest with
    | [] when !profile_requested -> []  (* --profile alone: just profile *)
    | [] -> List.map fst experiments
    | ids -> ids
  in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None -> pf "unknown experiment %s@." id)
    selected;
  if !profile_requested then run_profile ();
  write_bench_json "BENCH_runtime.json";
  pf "@.done.@."
