(** Address interning: maps (array, element) pairs to dense integer
    addresses and back.

    The simulator models caches and directories keyed by address; arrays
    may have negative or sparse index ranges (subscripts like [i-j-1]), so
    a dense pre-allocation is impractical.  Addresses are handed out in
    first-touch order, deterministically for a fixed access sequence.
    Cache lines are one element long, as assumed in Section 2.2. *)

open Matrixkit

type t

val create : unit -> t

val id : t -> string -> Ivec.t -> int
(** Intern (array, element); stable across repeated calls. *)

val element_of : t -> int -> string * int list
(** Reverse lookup (array name, element coordinates). *)

val size : t -> int
(** Number of distinct elements seen so far. *)
