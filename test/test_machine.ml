(* Tests for the cache-coherent multiprocessor substrate: address
   interning, caches, directory, mesh, and the MSI simulator's agreement
   with the analytical footprint model. *)

open Partition
open Machine

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Addr                                                                *)
(* ------------------------------------------------------------------ *)

let test_addr_interning () =
  let t = Addr.create () in
  let a = Addr.id t "A" [| 1; 2 |] in
  let b = Addr.id t "A" [| 1; 3 |] in
  let a' = Addr.id t "A" [| 1; 2 |] in
  check "stable" a a';
  checkb "distinct" true (a <> b);
  checkb "array name matters" true (a <> Addr.id t "B" [| 1; 2 |]);
  check "size" 3 (Addr.size t);
  Alcotest.(check (pair string (list int)))
    "reverse" ("A", [ 1; 2 ])
    (Addr.element_of t a)

let test_addr_growth () =
  let t = Addr.create () in
  for i = 0 to 9999 do
    ignore (Addr.id t "X" [| i |])
  done;
  check "10k elements" 10000 (Addr.size t);
  Alcotest.(check (pair string (list int)))
    "reverse after growth" ("X", [ 9999 ])
    (Addr.element_of t 9999)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_infinite_cache () =
  let c = Cache.create Cache.Infinite in
  checkb "empty" true (Cache.lookup c 42 = None);
  ignore (Cache.insert c 42 Cache.Shared);
  checkb "present" true (Cache.lookup c 42 = Some Cache.Shared);
  Cache.set_state c 42 Cache.Modified;
  checkb "state change" true (Cache.lookup c 42 = Some Cache.Modified);
  Cache.invalidate c 42;
  checkb "gone" true (Cache.lookup c 42 = None)

let test_finite_cache_lru () =
  (* One set, two ways: the third insert evicts the least recent. *)
  let c = Cache.create (Cache.Finite { sets = 1; ways = 2 }) in
  checkb "no victim 1" true (Cache.insert c 1 Cache.Shared = None);
  checkb "no victim 2" true (Cache.insert c 2 Cache.Shared = None);
  (* Touch 1 so 2 becomes LRU. *)
  ignore (Cache.lookup c 1);
  (match Cache.insert c 3 Cache.Shared with
  | Some v -> check "evicts 2" 2 v
  | None -> Alcotest.fail "expected eviction");
  checkb "1 survives" true (Cache.resident c 1);
  checkb "3 present" true (Cache.resident c 3);
  check "occupancy" 2 (Cache.occupancy c)

let test_finite_cache_sets () =
  (* Two sets: even and odd addresses do not conflict. *)
  let c = Cache.create (Cache.Finite { sets = 2; ways = 1 }) in
  ignore (Cache.insert c 2 Cache.Shared);
  ignore (Cache.insert c 3 Cache.Shared);
  checkb "both resident" true (Cache.resident c 2 && Cache.resident c 3);
  (match Cache.insert c 4 Cache.Shared with
  | Some v -> check "same-set eviction" 2 v
  | None -> Alcotest.fail "expected eviction")

(* ------------------------------------------------------------------ *)
(* Directory                                                           *)
(* ------------------------------------------------------------------ *)

let test_directory () =
  let d = Directory.create () in
  Alcotest.(check (list int)) "empty" [] (Directory.sharers d 7);
  Directory.add_sharer d 7 1;
  Directory.add_sharer d 7 3;
  Alcotest.(check (list int)) "two sharers" [ 1; 3 ] (Directory.sharers d 7);
  Directory.set_owner d 7 2;
  Alcotest.(check (list int)) "owner displaces" [ 2 ] (Directory.sharers d 7);
  Alcotest.(check (option int)) "owner" (Some 2) (Directory.owner d 7);
  Directory.downgrade_owner d 7;
  Alcotest.(check (option int)) "downgraded" None (Directory.owner d 7);
  Alcotest.(check (list int)) "still sharing" [ 2 ] (Directory.sharers d 7);
  Directory.remove d 7 2;
  Alcotest.(check (list int)) "removed" [] (Directory.sharers d 7)

(* ------------------------------------------------------------------ *)
(* Mesh                                                                *)
(* ------------------------------------------------------------------ *)

let test_mesh_distance () =
  let m = Mesh.mesh ~nprocs:16 in
  check "self" 0 (Mesh.distance m 5 5);
  (* 4x4 grid: 0 at (0,0), 15 at (3,3). *)
  check "corner to corner" 6 (Mesh.distance m 0 15);
  check "symmetric" (Mesh.distance m 3 12) (Mesh.distance m 12 3);
  let u = Mesh.uniform ~nprocs:16 in
  check "uniform distance" 1 (Mesh.distance u 0 15);
  checkb "is_uniform" true (Mesh.is_uniform u)

let test_mesh_triangle_inequality () =
  let m = Mesh.mesh ~nprocs:12 in
  for a = 0 to 11 do
    for b = 0 to 11 do
      for c = 0 to 11 do
        checkb "triangle" true
          (Mesh.distance m a c <= Mesh.distance m a b + Mesh.distance m b c)
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let layout_nest () =
  let open Loopir.Dsl in
  let i = var 0 and j = var 1 in
  nest ~name:"layout"
    [ doall "i" 1 8; doall "j" 1 8 ]
    [ write "A" [ i; j ]; read "B" [ i + j; i - j ] ]

let test_layout_addresses () =
  let l = Layout.of_nest (layout_nest ()) in
  (* Distinct elements -> distinct addresses; row-major adjacency. *)
  let a11 = Layout.address l "A" [| 1; 1 |] in
  let a12 = Layout.address l "A" [| 1; 2 |] in
  let a21 = Layout.address l "A" [| 2; 1 |] in
  check "last dim contiguous" (a11 + 1) a12;
  check "row stride 8" (a11 + 8) a21;
  checkb "arrays disjoint" true
    (Layout.address l "B" [| 2; 0 |] <> a11);
  Alcotest.(check (pair string (list int)))
    "reverse" ("A", [ 1; 2 ])
    (Layout.element_of l a12);
  checkb "outside box rejected" true
    (try
       ignore (Layout.address l "A" [| 0; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_layout_alignment () =
  let l = Layout.of_nest ~line_align:8 (layout_nest ()) in
  (* The lo corner of each array's bounding box is its base address:
     A spans [1,8]x[1,8], B spans [2,16]x[-7,7]. *)
  check "A base aligned" 0 (Layout.address l "A" [| 1; 1 |] mod 8);
  check "B base aligned" 0 (Layout.address l "B" [| 2; -7 |] mod 8)

let test_layout_lines () =
  let l = Layout.of_nest ~line_align:4 (layout_nest ()) in
  let line p = Layout.line l ~line_size:4 "A" p in
  check "neighbours share a line" (line [| 1; 1 |]) (line [| 1; 2 |]);
  checkb "distant elements differ" true (line [| 1; 1 |] <> line [| 5; 5 |])

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let test_timing_monotone () =
  let mk misses hops =
    let st = Stats.create ~nprocs:4 in
    st.Stats.hits <- 1000;
    st.Stats.remote_fills <- misses;
    st.Stats.network_hops <- hops;
    st
  in
  let p = Timing.alewife_like in
  let cheap = Timing.cycles (mk 10 20) ~nprocs:4 p in
  let costly = Timing.cycles (mk 100 200) ~nprocs:4 p in
  checkb "more misses cost more" true (costly > cheap);
  Alcotest.(check (float 1e-9))
    "speedup ratio"
    (costly /. cheap)
    (Timing.speedup ~baseline:(mk 100 200) ~improved:(mk 10 20) ~nprocs:4 p)

(* ------------------------------------------------------------------ *)
(* Placement map                                                       *)
(* ------------------------------------------------------------------ *)

let is_permutation perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      v >= 0 && v < n
      &&
      if seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    perm

let test_placement_permutations () =
  let grid = [| 4; 4 |] in
  let mesh = Mesh.mesh ~nprocs:16 in
  List.iter
    (fun s ->
      checkb
        (Format.asprintf "%a is a permutation" Placement_map.pp_strategy s)
        true
        (is_permutation (Placement_map.permutation s ~grid ~mesh)))
    Placement_map.[ Linear; Snake; Folded; Serpentine; Shuffled 7 ];
  let grid3 = [| 2; 3; 4 |] in
  let mesh3 = Mesh.mesh ~nprocs:24 in
  List.iter
    (fun s ->
      checkb "3d permutation" true
        (is_permutation (Placement_map.permutation s ~grid:grid3 ~mesh:mesh3)))
    Placement_map.[ Linear; Snake; Folded; Serpentine; Shuffled 7 ]

let test_placement_costs () =
  let mesh = Mesh.mesh ~nprocs:16 in
  let grid = [| 4; 4 |] in
  let cost s =
    Placement_map.neighbor_hop_cost ~grid ~mesh
      (Placement_map.permutation s ~grid ~mesh)
  in
  (* The 4x4 grid maps onto the 4x4 mesh perfectly: linear is optimal
     (every grid neighbour is a mesh neighbour). *)
  check "linear on matching mesh" 24 (cost Placement_map.Linear);
  checkb "random is worse" true (cost (Placement_map.Shuffled 42) > 24);
  let _, _, best_cost = Placement_map.best ~grid ~mesh in
  check "best finds the optimum" 24 best_cost

let test_placement_grid_mesh_mismatch () =
  (* A 16x1 virtual chain on a 4x4 mesh: the snake keeps chain
     neighbours at mesh distance 1; the linear map pays the row wrap. *)
  let mesh = Mesh.mesh ~nprocs:16 in
  let grid = [| 16; 1 |] in
  let cost s =
    Placement_map.neighbor_hop_cost ~grid ~mesh
      (Placement_map.permutation s ~grid ~mesh)
  in
  (* Every consecutive pair of a serpentine walk is a mesh neighbour:
     the 15 chain links cost exactly 15 hops, beating row-major's wraps. *)
  check "serpentine is optimal for a chain" 15 (cost Placement_map.Serpentine);
  checkb "serpentine < linear" true
    (cost Placement_map.Serpentine < cost Placement_map.Linear)

(* ------------------------------------------------------------------ *)
(* Simulator invariants                                                *)
(* ------------------------------------------------------------------ *)

let analyze_ex2 () =
  let nest = Loopart.Programs.example2 () in
  let cost = Cost.of_nest nest in
  let sched tile = Codegen.make nest tile ~nprocs:100 in
  (nest, cost, sched)

let test_sim_footprints_match_theory () =
  (* The per-processor unique-address counts must equal the analytic
     cumulative footprint: 204 for column tiles, 240 for 10x10. *)
  let _, _, sched = analyze_ex2 () in
  let r = Sim.run (sched (Tile.rect [| 100; 1 |])) Sim.default in
  Array.iter (fun f -> check "column footprint 204" 204 f) (Sim.footprints r);
  let r2 = Sim.run (sched (Tile.rect [| 10; 10 |])) Sim.default in
  Array.iter (fun f -> check "square footprint 240" 240 f) (Sim.footprints r2)

let test_sim_infinite_cache_miss_identity () =
  (* With infinite caches and a single pass, misses per processor equal
     its footprint (every element misses exactly once, reads never lose
     lines). *)
  let _, _, sched = analyze_ex2 () in
  let r = Sim.run (sched (Tile.rect [| 10; 10 |])) Sim.default in
  let st = r.Sim.stats in
  check "misses = sum of footprints"
    (Array.fold_left ( + ) 0 (Sim.footprints r))
    st.Stats.misses;
  check "all cold" st.Stats.misses st.Stats.cold_misses;
  check "no replacements" 0 st.Stats.replacement_misses

let test_sim_comm_free_partition () =
  let _, _, sched = analyze_ex2 () in
  let r = Sim.run (sched (Tile.rect [| 100; 1 |])) Sim.default in
  check "zero coherence" 0 r.Sim.stats.Stats.coherence_misses;
  check "zero invalidations" 0 r.Sim.stats.Stats.invalidations

let test_sim_accesses_accounting () =
  let _, _, sched = analyze_ex2 () in
  let r = Sim.run (sched (Tile.rect [| 10; 10 |])) Sim.default in
  let st = r.Sim.stats in
  (* 10000 iterations x 3 references. *)
  check "accesses" 30000 st.Stats.accesses;
  check "reads" 20000 st.Stats.reads;
  check "writes" 10000 st.Stats.writes;
  check "hits + misses = accesses" st.Stats.accesses
    (st.Stats.hits + st.Stats.misses)

let test_sim_doseq_steady_state () =
  (* Second and later passes over a read-only array are free; an in-place
     update keeps producing coherence traffic. *)
  let ro = Loopart.Programs.stencil5 ~n:16 ~steps:3 () in
  let sched = Codegen.make ro (Tile.rect [| 8; 8 |]) ~nprocs:4 in
  let r = Sim.run sched Sim.default in
  check "read-only: no coherence misses" 0 r.Sim.stats.Stats.coherence_misses;
  let ip = Loopart.Programs.relax_inplace ~n:17 ~steps:3 () in
  let sched2 = Codegen.make ip (Tile.rect [| 8; 8 |]) ~nprocs:4 in
  let r2 = Sim.run sched2 Sim.default in
  checkb "in-place: coherence misses appear" true
    (r2.Sim.stats.Stats.coherence_misses > 0);
  checkb "in-place: invalidations appear" true
    (r2.Sim.stats.Stats.invalidations > 0)

let test_sim_accumulate_counts_sync () =
  let mm = Loopart.Programs.matmul ~n:8 () in
  let sched = Codegen.make mm (Tile.rect [| 4; 4; 4 |]) ~nprocs:8 in
  let r = Sim.run sched Sim.default in
  (* Every iteration performs one accumulate. *)
  check "sync ops" 512 r.Sim.stats.Stats.sync_ops;
  checkb "accumulates cause invalidations" true
    (r.Sim.stats.Stats.invalidations > 0)

let test_sim_finite_cache_replacements () =
  let _, _, sched = analyze_ex2 () in
  let cfg =
    { Sim.default with Sim.geometry = Cache.Finite { sets = 16; ways = 2 } }
  in
  let r = Sim.run (sched (Tile.rect [| 10; 10 |])) cfg in
  checkb "replacement misses appear" true
    (r.Sim.stats.Stats.replacement_misses > 0);
  (* Infinite-cache run dominates the finite one. *)
  let r_inf = Sim.run (sched (Tile.rect [| 10; 10 |])) Sim.default in
  checkb "finite cache misses more" true
    (r.Sim.stats.Stats.misses >= r_inf.Sim.stats.Stats.misses)

let test_sim_aligned_placement_local_fills () =
  (* With mesh topology and aligned placement, writes to the private
     array A fill locally. *)
  let nest = Loopart.Programs.example2 () in
  let cost = Cost.of_nest nest in
  let sched = Codegen.make nest (Tile.rect [| 100; 1 |]) ~nprocs:100 in
  let placement = Data_partition.aligned sched cost in
  let cfg =
    {
      Sim.default with
      Sim.topology = Sim.Mesh2d;
      placement = Some placement;
    }
  in
  let r = Sim.run sched cfg in
  checkb "some local fills" true (r.Sim.stats.Stats.local_fills > 0);
  let rr = Data_partition.round_robin ~nprocs:100 in
  let cfg2 =
    { Sim.default with Sim.topology = Sim.Mesh2d; placement = Some rr }
  in
  let r2 = Sim.run sched cfg2 in
  checkb "aligned beats round robin on local fills" true
    (r.Sim.stats.Stats.local_fills > r2.Sim.stats.Stats.local_fills);
  checkb "aligned has fewer hops" true
    (r.Sim.stats.Stats.network_hops < r2.Sim.stats.Stats.network_hops)

let test_sim_deterministic () =
  let _, _, sched = analyze_ex2 () in
  let r1 = Sim.run (sched (Tile.rect [| 20; 5 |])) Sim.default in
  let r2 = Sim.run (sched (Tile.rect [| 20; 5 |])) Sim.default in
  check "same misses" r1.Sim.stats.Stats.misses r2.Sim.stats.Stats.misses;
  check "same hops" r1.Sim.stats.Stats.network_hops
    r2.Sim.stats.Stats.network_hops

let test_sim_line_size () =
  (* The relaxation walks the contiguous dimension, so wider lines cut
     misses roughly in proportion to the line size. *)
  let nest = Loopart.Programs.relax_inplace ~n:33 ~steps:1 () in
  let sched = Codegen.make nest (Tile.rect [| 8; 8 |]) ~nprocs:16 in
  let run line_size = Sim.run sched { Sim.default with Sim.line_size } in
  let r1 = run 1 and r4 = run 4 in
  checkb "wider lines miss less" true
    (r4.Sim.stats.Stats.misses * 2 < r1.Sim.stats.Stats.misses);
  (* Accesses are unaffected by the coherence granularity. *)
  check "same accesses" r1.Sim.stats.Stats.accesses
    r4.Sim.stats.Stats.accesses;
  (* But a diagonal access pattern gets no line reuse: example 2's
     column tiles stride both array dimensions at once. *)
  let _, _, sched2 = analyze_ex2 () in
  let e1 = Sim.run (sched2 (Tile.rect [| 100; 1 |])) Sim.default in
  let e4 =
    Sim.run (sched2 (Tile.rect [| 100; 1 |]))
      { Sim.default with Sim.line_size = 4 }
  in
  checkb "diagonal walk barely benefits" true
    (e4.Sim.stats.Stats.misses * 2 > e1.Sim.stats.Stats.misses)

let test_sim_false_sharing () =
  (* Two processors writing interleaved elements of one row share every
     line when lines are wide: invalidations appear that unit lines do
     not have. *)
  let nest =
    let open Loopir.Dsl in
    let i = var 0 and j = var 1 in
    nest ~name:"false_share" ~seq:(doseq "t" 1 2)
      [ doall "i" 1 2; doall "j" 1 16 ]
      [ write "A" [ j; i ] ]
    (* note: j is the slow dimension of A, i the contiguous one *)
  in
  let sched = Codegen.make nest (Tile.rect [| 1; 16 |]) ~nprocs:2 in
  let unit = Sim.run sched Sim.default in
  let wide = Sim.run sched { Sim.default with Sim.line_size = 2 } in
  check "no sharing with unit lines" 0 unit.Sim.stats.Stats.invalidations;
  checkb "false sharing with wide lines" true
    (wide.Sim.stats.Stats.invalidations > 0)

let test_sim_interleave_same_footprints () =
  let _, _, sched = analyze_ex2 () in
  let seq = { Sim.default with Sim.interleave = false } in
  let r1 = Sim.run (sched (Tile.rect [| 10; 10 |])) Sim.default in
  let r2 = Sim.run (sched (Tile.rect [| 10; 10 |])) seq in
  Alcotest.(check (array int))
    "footprints independent of issue order" (Sim.footprints r1)
    (Sim.footprints r2)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_layout_injective_roundtrip =
  QCheck2.Test.make ~name:"layout addresses are injective and reversible"
    ~count:200
    QCheck2.Gen.(
      pair (int_range 1 8)
        (list_size (int_range 2 20)
           (pair (int_range 1 8) (int_range 1 8))))
    (fun (align, points) ->
      let l = Layout.of_nest ~line_align:align (layout_nest ()) in
      let addrs =
        List.map (fun (i, j) -> ((i, j), Layout.address l "A" [| i; j |])) points
      in
      List.for_all
        (fun ((p1, a1) : (int * int) * int) ->
          List.for_all
            (fun ((p2, a2) : (int * int) * int) -> p1 = p2 || a1 <> a2)
            addrs
          &&
          let name, coords = Layout.element_of l a1 in
          name = "A" && coords = [ fst p1; snd p1 ])
        addrs)

let prop_mesh_distance_metric =
  QCheck2.Test.make ~name:"mesh distance is a metric" ~count:200
    QCheck2.Gen.(
      pair (int_range 2 30) (triple (int_range 0 29) (int_range 0 29) (int_range 0 29)))
    (fun (n, (a, b, c)) ->
      QCheck2.assume (a < n && b < n && c < n);
      let m = Mesh.mesh ~nprocs:n in
      Mesh.distance m a a = 0
      && Mesh.distance m a b = Mesh.distance m b a
      && Mesh.distance m a c <= Mesh.distance m a b + Mesh.distance m b c)

let prop_placement_bijective =
  QCheck2.Test.make ~name:"placement permutations are bijections" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 3) (int_range 1 4))
        (oneofl
           Placement_map.
             [ Linear; Snake; Folded; Serpentine; Shuffled 3; Shuffled 99 ]))
    (fun (grid_l, strategy) ->
      let grid = Array.of_list grid_l in
      let n = Array.fold_left ( * ) 1 grid in
      let mesh = Mesh.mesh ~nprocs:n in
      is_permutation (Placement_map.permutation strategy ~grid ~mesh))

let machine_props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_layout_injective_roundtrip;
      prop_mesh_distance_metric;
      prop_placement_bijective;
    ]

let () =
  Alcotest.run "machine"
    [
      ( "addr",
        [
          Alcotest.test_case "interning" `Quick test_addr_interning;
          Alcotest.test_case "growth" `Quick test_addr_growth;
        ] );
      ( "cache",
        [
          Alcotest.test_case "infinite" `Quick test_infinite_cache;
          Alcotest.test_case "finite LRU" `Quick test_finite_cache_lru;
          Alcotest.test_case "finite sets" `Quick test_finite_cache_sets;
        ] );
      ("directory", [ Alcotest.test_case "protocol states" `Quick test_directory ]);
      ( "layout",
        [
          Alcotest.test_case "addresses" `Quick test_layout_addresses;
          Alcotest.test_case "alignment" `Quick test_layout_alignment;
          Alcotest.test_case "lines" `Quick test_layout_lines;
        ] );
      ( "timing",
        [ Alcotest.test_case "monotone in events" `Quick test_timing_monotone ] );
      ( "placement map",
        [
          Alcotest.test_case "permutations" `Quick
            test_placement_permutations;
          Alcotest.test_case "matching mesh" `Quick test_placement_costs;
          Alcotest.test_case "chain on mesh" `Quick
            test_placement_grid_mesh_mismatch;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "distances" `Quick test_mesh_distance;
          Alcotest.test_case "triangle inequality" `Quick
            test_mesh_triangle_inequality;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "footprints match theory" `Quick
            test_sim_footprints_match_theory;
          Alcotest.test_case "infinite-cache miss identity" `Quick
            test_sim_infinite_cache_miss_identity;
          Alcotest.test_case "communication-free partition" `Quick
            test_sim_comm_free_partition;
          Alcotest.test_case "access accounting" `Quick
            test_sim_accesses_accounting;
          Alcotest.test_case "doseq steady state" `Quick
            test_sim_doseq_steady_state;
          Alcotest.test_case "accumulate sync" `Quick
            test_sim_accumulate_counts_sync;
          Alcotest.test_case "finite cache replacements" `Quick
            test_sim_finite_cache_replacements;
          Alcotest.test_case "aligned placement" `Quick
            test_sim_aligned_placement_local_fills;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "cache lines" `Quick test_sim_line_size;
          Alcotest.test_case "false sharing" `Quick test_sim_false_sharing;
          Alcotest.test_case "interleave-insensitive footprints" `Quick
            test_sim_interleave_same_footprints;
        ] );
      ("properties", machine_props);
    ]
