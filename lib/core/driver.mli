(** The end-to-end partitioning pipeline: the OCaml analogue of the
    Alewife compiler passes of Figure 10 (analysis on the communication
    graph, loop partitioning, data partitioning/alignment, and - standing
    in for a machine run - simulation). *)

open Loopir
open Partition
open Machine

type analysis = {
  nest : Nest.t;
  nprocs : int;
  cost : Cost.t;  (** classification + symbolic footprints *)
  rect : Rectangular.result;  (** the partition the compiler emits *)
  skewed : Skewed.result option;
      (** parallelepiped alternative, when the engine applies and was
          requested *)
  rs : Baselines.Ramanujam_sadayappan.t;  (** communication-freedom *)
  ah : (Baselines.Abraham_hudak.result, string) result;
}

val analyze : ?try_skewed:bool -> nprocs:int -> Nest.t -> analysis
(** Classify, build the cost model and optimize.  [try_skewed] defaults to
    [false] (rectangular only, like the implemented Alewife subset). *)

val best_tile : analysis -> Tile.t
(** The skewed tile when it strictly improves on the rectangular one,
    else the rectangular tile. *)

val schedule : ?tile:Tile.t -> analysis -> Codegen.schedule

val simulate :
  ?tile:Tile.t -> ?config:Sim.config -> analysis -> Sim.result
(** Run the simulator on the chosen partition (default: rectangular tile,
    default simulator configuration). *)

val simulate_aligned :
  ?tile:Tile.t -> ?geometry:Cache.geometry -> analysis -> Sim.result
(** Distributed-memory run: 2-D mesh with loop-tile-aligned data
    placement (the paper's Section 4 configuration). *)

val report : Format.formatter -> analysis -> unit
(** Human-readable compiler report: classes, polynomials, chosen
    partition, baselines. *)
