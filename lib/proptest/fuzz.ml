type failure = {
  case : Gen.case;
  violation : Oracle.violation;
  shrunk : Gen.case;
  shrunk_violation : Oracle.violation;
  shrink_steps : int;
}

type outcome = {
  seed : int;
  count : int;
  tested : int;
  fault : Oracle.fault;
  failures : failure list;
}

let run ?(fault = Oracle.No_fault) ?(max_failures = 3) ?(shrink_budget = 400)
    ?(progress = fun _ -> ()) ~seed ~count () =
  let pools = Oracle.Pools.create () in
  Fun.protect
    ~finally:(fun () -> Oracle.Pools.shutdown pools)
    (fun () ->
      let fails case = Oracle.check ~fault ~pools case in
      let failures = ref [] in
      let tested = ref 0 in
      (try
         for id = 0 to count - 1 do
           if id mod 50 = 0 then progress id;
           let case = Gen.generate ~seed ~id in
           incr tested;
           match fails case with
           | None -> ()
           | Some violation ->
               let r = Shrink.minimize ~fails ~budget:shrink_budget case violation in
               failures :=
                 {
                   case;
                   violation;
                   shrunk = r.Shrink.shrunk;
                   shrunk_violation = r.Shrink.violation;
                   shrink_steps = r.Shrink.steps;
                 }
                 :: !failures;
               if List.length !failures >= max_failures then raise Exit
         done
       with Exit -> ());
      {
        seed;
        count;
        tested = !tested;
        fault;
        failures = List.rev !failures;
      })

let replay_command o =
  let fault_arg =
    match o.fault with
    | Oracle.No_fault -> ""
    | f -> Printf.sprintf " --inject-fault %s" (Oracle.fault_to_string f)
  in
  Printf.sprintf "loopartc fuzz --seed %d --count %d%s" o.seed o.count fault_arg

let render_failure o f =
  (* Plain strings: Nest.pp emits raw newlines, which would desync any
     enclosing Format box. *)
  String.concat "\n"
    [
      Printf.sprintf "oracle violation in case %d of seed %d:" f.case.Gen.id
        o.seed;
      Format.asprintf "  %a" Oracle.pp_violation f.violation;
      "";
      "replay: " ^ replay_command o;
      "";
      "original case:";
      Gen.to_string f.case;
      "";
      Printf.sprintf "shrunk reproducer (%d shrink steps):" f.shrink_steps;
      Gen.to_string f.shrunk;
      Format.asprintf "  still fails: %a" Oracle.pp_violation
        f.shrunk_violation;
      "";
    ]

let pp_outcome ppf o =
  if o.failures = [] then
    Format.fprintf ppf
      "fuzz: %d/%d cases passed all oracles (seed %d%s)@." o.tested o.count
      o.seed
      (match o.fault with
      | Oracle.No_fault -> ""
      | f -> Printf.sprintf ", injected fault %s" (Oracle.fault_to_string f))
  else begin
    Format.fprintf ppf "fuzz: %d failure(s) in %d cases (seed %d)@."
      (List.length o.failures) o.tested o.seed;
    List.iter (fun f -> Format.pp_print_string ppf (render_failure o f)) o.failures
  end
