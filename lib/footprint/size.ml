open Intmath
open Matrixkit

exception Unsupported of string

let theorem1_applies g = Imat.is_unimodular g

(* ------------------------------------------------------------------ *)
(* Reduction pipeline (Example 1 + Section 3.4.1)                      *)
(* ------------------------------------------------------------------ *)

type reduction = {
  kept_cols : int list;
  kept_rows : int list;
  g_reduced : Imat.t;
  spread_reduced : Ivec.t;
  full_row_rank : bool;
}

let is_zero_matrix g =
  let all = ref true in
  for i = 0 to Imat.rows g - 1 do
    for j = 0 to Imat.cols g - 1 do
      if Imat.get g i j <> 0 then all := false
    done
  done;
  !all

let reduce ~g ~spread =
  if Array.length spread <> Imat.cols g then
    invalid_arg "Size.reduce: spread length must equal columns of G";
  if is_zero_matrix g then
    invalid_arg "Size.reduce: zero G (constant reference) must be \
                 special-cased by the caller";
  let kept_cols = Imat.max_independent_cols g in
  let g1 = Imat.select_cols g kept_cols in
  let spread1 =
    Array.of_list (List.map (fun j -> spread.(j)) kept_cols)
  in
  let kept_rows =
    List.filter
      (fun i -> not (Ivec.is_zero (Imat.row g1 i)))
      (List.init (Imat.rows g1) Fun.id)
  in
  let g_reduced = Imat.select_rows g1 kept_rows in
  let full_row_rank = List.length kept_rows = List.length kept_cols in
  { kept_cols; kept_rows; g_reduced; spread_reduced = spread1; full_row_rank }

(* Translation coordinates: u with u * g_red = spread_red, over Q.  The
   rows of the reduced matrix span the column space, so the system is
   always consistent; when rows are dependent the particular solution with
   zero free variables is used. *)
let translation_coords red =
  let b = Array.map Rat.of_int red.spread_reduced in
  match Qmat.solve_left (Qmat.of_imat red.g_reduced) b with
  | Some u -> u
  | None ->
      (* Cannot happen for a valid reduction; defensive. *)
      raise
        (Unsupported "spread vector outside the row space of the reduced G")

(* ------------------------------------------------------------------ *)
(* Symbolic engines (variables x_k = lambda_k + 1)                     *)
(* ------------------------------------------------------------------ *)

let subsets_of_size k xs =
  let rec go k xs =
    if k = 0 then [ [] ]
    else
      match xs with
      | [] -> []
      | x :: rest ->
          List.map (fun s -> x :: s) (go (k - 1) rest) @ go k rest
  in
  go k xs

(* Zonotope-volume / lattice-index estimate for a projection-like
   reference: the image of the box under G is a zonotope of dimension
   r = rank(G); the number of image lattice points is approximately its
   r-volume divided by the covolume (index) of the image lattice.
   The r-volume of the zonotope spanned by edge vectors lambda_i * g_i is
   sum over r-subsets S of |det G[S]| * prod_{i in S} lambda_i. *)
let zonotope_poly ~rows ~g_reduced =
  let r = Imat.cols g_reduced in
  let index =
    Int_math.prod (Snf.invariant_factors g_reduced)
  in
  let row_positions = List.init (List.length rows) Fun.id in
  let terms =
    List.map
      (fun subset ->
        let d = abs (Imat.det (Imat.select_rows g_reduced subset)) in
        let vars =
          List.map (fun pos -> Mpoly.var (List.nth rows pos)) subset
        in
        Mpoly.scale_int d (Mpoly.product vars))
      (subsets_of_size r row_positions)
  in
  Mpoly.scale (Rat.make 1 index) (Mpoly.sum terms)

let rect_single_poly ~nesting ~g =
  if Imat.rows g <> nesting then
    invalid_arg "Size.rect_single_poly: G rows must equal nesting";
  if is_zero_matrix g then Mpoly.one
  else
    let red = reduce ~g ~spread:(Ivec.zero (Imat.cols g)) in
    if red.full_row_rank then
      Mpoly.product (List.map Mpoly.var red.kept_rows)
    else zonotope_poly ~rows:red.kept_rows ~g_reduced:red.g_reduced

let cumulative_from_single ~single ~rows ~u =
  (* cumulative = single + sum_i |u_i| * d(single)/dx_i; for a square
     nonsingular reduced G this is exactly Theorem 4. *)
  let extra =
    List.mapi
      (fun pos i -> Mpoly.scale (Rat.abs u.(pos)) (Mpoly.partial i single))
      rows
  in
  Mpoly.add single (Mpoly.sum extra)

let rect_cumulative_poly ~nesting ~g ~spread =
  if Imat.rows g <> nesting then
    invalid_arg "Size.rect_cumulative_poly: G rows must equal nesting";
  if is_zero_matrix g then Mpoly.one
  else
    let red = reduce ~g ~spread in
    let single = rect_single_poly ~nesting ~g in
    let u = translation_coords red in
    cumulative_from_single ~single ~rows:red.kept_rows ~u

let rect_traffic_poly ~nesting ~g ~spread =
  Mpoly.sub (rect_cumulative_poly ~nesting ~g ~spread)
    (rect_single_poly ~nesting ~g)

let offsets_spread offsets =
  match offsets with
  | [] -> invalid_arg "Size: empty offset list"
  | first :: rest ->
      let lo = Array.copy first and hi = Array.copy first in
      List.iter
        (Array.iteri (fun k v ->
             if v < lo.(k) then lo.(k) <- v;
             if v > hi.(k) then hi.(k) <- v))
        rest;
      Array.init (Array.length lo) (fun k -> hi.(k) - lo.(k))

let lattice_spread ~g ~offsets =
  if offsets = [] then invalid_arg "Size.lattice_spread: empty offsets";
  if is_zero_matrix g then None
  else
    let red = reduce ~g ~spread:(offsets_spread offsets) in
    if not red.full_row_rank then None
    else
      match Qmat.inv (Qmat.of_imat red.g_reduced) with
      | None -> None
      | Some ginv ->
          let coords =
            List.map
              (fun (o : Ivec.t) ->
                let o_red =
                  Array.of_list
                    (List.map (fun j -> Rat.of_int o.(j)) red.kept_cols)
                in
                Qmat.mul_row o_red ginv)
              offsets
          in
          let n = List.length red.kept_rows in
          let u = Array.make n Rat.zero in
          (match coords with
          | [] -> ()
          | first :: rest ->
              let lo = Array.copy first and hi = Array.copy first in
              List.iter
                (Array.iteri (fun k v ->
                     if Rat.compare v lo.(k) < 0 then lo.(k) <- v;
                     if Rat.compare v hi.(k) > 0 then hi.(k) <- v))
                rest;
              Array.iteri (fun k _ -> u.(k) <- Rat.sub hi.(k) lo.(k)) u);
          Some u

let rect_cumulative_poly_class ~nesting ~g ~offsets =
  if is_zero_matrix g then Mpoly.one
  else
    match lattice_spread ~g ~offsets with
    | Some u ->
        let spread = offsets_spread offsets in
        let red = reduce ~g ~spread in
        let single = rect_single_poly ~nesting ~g in
        cumulative_from_single ~single ~rows:red.kept_rows ~u
    | None ->
        rect_cumulative_poly ~nesting ~g ~spread:(offsets_spread offsets)

(* ------------------------------------------------------------------ *)
(* Numeric rectangular engines                                         *)
(* ------------------------------------------------------------------ *)

let enumeration_budget = 1 lsl 21

let enumerate_distinct ~lambda_red ~g_reduced =
  let n = Array.length lambda_red in
  let seen = Hashtbl.create 1024 in
  let point = Array.make n 0 in
  let rec go i =
    if i = n then begin
      let img = Imat.mul_row point g_reduced in
      Hashtbl.replace seen (Array.to_list img) ()
    end
    else
      for v = 0 to lambda_red.(i) do
        point.(i) <- v;
        go (i + 1)
      done
  in
  go 0;
  Hashtbl.length seen

let lambda_of_rows lambda rows =
  Array.of_list (List.map (fun i -> lambda.(i)) rows)

let eval_poly_at_lambda poly lambda =
  let env = Array.map (fun l -> l + 1) lambda in
  Rat.floor (Mpoly.eval_int poly env)

let rect_single ~lambda ~g =
  if Array.length lambda <> Imat.rows g then
    invalid_arg "Size.rect_single: lambda length must equal rows of G";
  if Array.exists (fun l -> l < 0) lambda then
    invalid_arg "Size.rect_single: negative tile bound";
  if is_zero_matrix g then 1
  else
    let red = reduce ~g ~spread:(Ivec.zero (Imat.cols g)) in
    let lambda_red = lambda_of_rows lambda red.kept_rows in
    if red.full_row_rank then
      Array.fold_left (fun acc l -> Int_math.mul_exact acc (l + 1)) 1 lambda_red
    else
      match General.rect_single ~lambda ~g with
      | Some exact -> exact (* rank-1 projections have a closed form *)
      | None ->
          let points =
            Array.fold_left
              (fun acc l -> Int_math.mul_exact acc (l + 1))
              1 lambda_red
          in
          if points <= enumeration_budget then
            enumerate_distinct ~lambda_red ~g_reduced:red.g_reduced
          else
            eval_poly_at_lambda
              (rect_single_poly ~nesting:(Imat.rows g) ~g)
              lambda

let enumerate_union_distinct ~lambda_red ~g_reduced ~spread_red =
  let n = Array.length lambda_red in
  let seen = Hashtbl.create 1024 in
  let point = Array.make n 0 in
  let rec go i =
    if i = n then begin
      let img = Imat.mul_row point g_reduced in
      Hashtbl.replace seen (Array.to_list img) ();
      Hashtbl.replace seen (Array.to_list (Ivec.add img spread_red)) ()
    end
    else
      for v = 0 to lambda_red.(i) do
        point.(i) <- v;
        go (i + 1)
      done
  in
  go 0;
  Hashtbl.length seen

let rect_cumulative ~exact ~lambda ~g ~spread =
  if Array.length lambda <> Imat.rows g then
    invalid_arg "Size.rect_cumulative: lambda length must equal rows of G";
  if is_zero_matrix g then 1
  else
    let red = reduce ~g ~spread in
    let nesting = Imat.rows g in
    if exact && red.full_row_rank then begin
      let lambda_red = lambda_of_rows lambda red.kept_rows in
      let bounded = Lattice.make red.g_reduced lambda_red in
      Lattice.union_size_translate bounded red.spread_reduced
    end
    else if exact then begin
      (* Rank-deficient reduced G (projections like A[i+j], dependent
         rows): Lemma 3 does not apply, but the union is still countable
         by enumeration for small tiles.  The Theorem 4 linearization is
         badly wrong exactly at degenerate tiles - a trip-count-1 tile
         with two coinciding references must report the single footprint,
         not single + |u| terms. *)
      let lambda_red = lambda_of_rows lambda red.kept_rows in
      let points =
        Array.fold_left (fun acc l -> Int_math.mul_exact acc (l + 1)) 1
          lambda_red
      in
      if points <= enumeration_budget then
        enumerate_union_distinct ~lambda_red ~g_reduced:red.g_reduced
          ~spread_red:red.spread_reduced
      else eval_poly_at_lambda (rect_cumulative_poly ~nesting ~g ~spread) lambda
    end
    else
      eval_poly_at_lambda (rect_cumulative_poly ~nesting ~g ~spread) lambda

(* ------------------------------------------------------------------ *)
(* Hyperparallelepiped engines                                         *)
(* ------------------------------------------------------------------ *)

let reduced_for_pped ~g ~spread =
  let red = reduce ~g ~spread in
  let l = Imat.rows g in
  if List.length red.kept_cols <> l then
    raise
      (Unsupported
         (Printf.sprintf
            "parallelepiped engine needs rank(G) = nesting; got rank %d, \
             nesting %d (use the rectangular engine)"
            (List.length red.kept_cols) l));
  (* Full row rank and kept_cols of size l: the column-selected G1 is
     l x l nonsingular and no row is zero. *)
  Imat.select_cols g red.kept_cols, red.spread_reduced

let pped_single ~l ~g =
  let g1, _ = reduced_for_pped ~g ~spread:(Ivec.zero (Imat.cols g)) in
  let lg = Qmat.mul l (Qmat.of_imat g1) in
  Rat.abs (Qmat.det lg)

let qmat_replace_row m i (v : Rat.t array) =
  Qmat.make (Qmat.rows m) (Qmat.cols m) (fun i' j ->
      if i' = i then v.(j) else Qmat.get m i' j)

let pped_cumulative ~l ~g ~spread =
  let g1, spread_red = reduced_for_pped ~g ~spread in
  let lg = Qmat.mul l (Qmat.of_imat g1) in
  let a_row = Array.map Rat.of_int spread_red in
  let n = Qmat.rows lg in
  let acc = ref (Rat.abs (Qmat.det lg)) in
  for i = 0 to n - 1 do
    acc := Rat.add !acc (Rat.abs (Qmat.det (qmat_replace_row lg i a_row)))
  done;
  !acc

let pped_terms_symbolic ~nesting ~g ~spread =
  let g1, spread_red = reduced_for_pped ~g ~spread in
  let l_sym = Pmat.generic nesting in
  let lg = Pmat.mul l_sym (Pmat.of_imat g1) in
  let a_row = Array.map Mpoly.const_int spread_red in
  Pmat.det lg
  :: List.init nesting (fun i -> Pmat.det (Pmat.replace_row lg i a_row))

let float_det a0 =
  let n = Array.length a0 in
  let a = Array.map Array.copy a0 in
  let det = ref 1.0 in
  (try
     for c = 0 to n - 1 do
       (* partial pivoting *)
       let piv = ref c in
       for i = c + 1 to n - 1 do
         if abs_float a.(i).(c) > abs_float a.(!piv).(c) then piv := i
       done;
       if abs_float a.(!piv).(c) < 1e-12 then begin
         det := 0.0;
         raise Exit
       end;
       if !piv <> c then begin
         let t = a.(!piv) in
         a.(!piv) <- a.(c);
         a.(c) <- t;
         det := -. !det
       end;
       det := !det *. a.(c).(c);
       for i = c + 1 to n - 1 do
         let f = a.(i).(c) /. a.(c).(c) in
         for j = c to n - 1 do
           a.(i).(j) <- a.(i).(j) -. (f *. a.(c).(j))
         done
       done
     done
   with Exit -> ());
  !det

let pped_cumulative_float ~l ~g ~spread =
  let red = reduce ~g ~spread in
  let nl = Array.length l in
  if List.length red.kept_cols <> nl then
    raise
      (Unsupported "parallelepiped float engine needs rank(G) = nesting");
  let g1 = Imat.select_cols g red.kept_cols in
  let lg =
    Array.init nl (fun i ->
        Array.init nl (fun j ->
            let acc = ref 0.0 in
            for k = 0 to nl - 1 do
              acc := !acc +. (l.(i).(k) *. float_of_int (Imat.get g1 k j))
            done;
            !acc))
  in
  let a_row = Array.map float_of_int red.spread_reduced in
  let replace i =
    Array.init nl (fun i' -> if i' = i then a_row else lg.(i'))
  in
  let acc = ref (abs_float (float_det lg)) in
  for i = 0 to nl - 1 do
    acc := !acc +. abs_float (float_det (replace i))
  done;
  !acc
