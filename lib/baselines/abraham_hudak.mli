(** The Abraham & Hudak rectangular partitioner (reference [6] of the
    paper), implemented independently of the footprint framework so the
    two can be compared.

    Their domain: loops whose body references a single shared array with
    subscripts of the form [A(i1+a1, ..., id+ad)] - i.e. [G] is the
    identity - and rectangular partitions only.  Their result: tile side
    lengths proportional to the per-dimension offset spreads.  Example 8
    of the paper shows the footprint framework reproducing this ratio
    (2:3:4). *)

open Loopir

type result = {
  target_array : string;  (** the array whose traffic drives the choice *)
  spreads : int array;  (** per-dimension max-min offset spread *)
  ratio : float array;  (** optimal tile-side proportions *)
  grid : int array;  (** chosen processor grid *)
  sizes : int array;  (** chosen tile sizes *)
}

val applies : Nest.t -> (string, string) Stdlib.result
(** [Ok array] when the nest is in the AH domain (the array with more than
    one reference has identity [G]); [Error reason] otherwise. *)

val partition : Nest.t -> nprocs:int -> (result, string) Stdlib.result

val pp_result : Format.formatter -> result -> unit
