(** Execution-time estimation.

    Section 4 of the paper notes that the authors "were unable to isolate
    the effect of cache miss reduction" on overall performance in time
    for the paper.  This module closes that gap for the simulated
    machine: it folds the event counts of a run into an estimated cycle
    count per processor using a latency parameter set patterned after
    Alewife-class machines (cached hit ~ 1 cycle, local memory ~ 10s of
    cycles, remote access growing with hop distance, fine-grain
    synchronization slightly more expensive than an ordinary write -
    Appendix A's model). *)

type params = {
  hit : float;  (** cycles per cache hit *)
  local_fill : float;  (** miss served by the local memory module *)
  remote_fill_base : float;  (** remote miss, before hop costs *)
  per_hop : float;  (** cycles per network hop of any message *)
  upgrade : float;  (** write upgrade (ownership acquisition) *)
  sync_extra : float;  (** extra cycles per l$ accumulate (Appendix A) *)
}

val alewife_like : params

val cycles : Stats.t -> nprocs:int -> params -> float
(** Estimated cycles per processor (events divided evenly across
    processors; the doall model has no serial section). *)

val speedup : baseline:Stats.t -> improved:Stats.t -> nprocs:int -> params -> float
(** [cycles baseline / cycles improved]. *)

val pp_params : Format.formatter -> params -> unit
