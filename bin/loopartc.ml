(* loopartc - the command-line front end of the partitioner: the
   OCaml analogue of the Alewife compiler pipeline of Figure 10.

   Subcommands:
     list               enumerate the built-in program gallery
     show NAME          print a program in Doall pseudo-code
     analyze NAME|FILE  classify references, print footprint polynomials
                        and the chosen partition
     simulate NAME|FILE run the chosen partition on the simulated machine
     codegen NAME|FILE  print the generated SPMD loop structure *)

open Cmdliner

let load source =
  match Loopart.Programs.find source with
  | Some nest -> nest
  | None ->
      if Sys.file_exists source then
        let ic = open_in source in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            Loopir.Parse.nest_of_string ~name:(Filename.basename source) s)
      else
        raise
          (Loopir.Parse.Parse_error
             (Printf.sprintf
                "%S is neither a gallery program nor a readable file (try \
                 'loopartc list')"
                source))

let source_arg =
  let doc =
    "Program to process: a gallery name (see $(b,list)) or a path to a file \
     in the Doall surface syntax."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let nprocs_arg =
  let doc = "Number of processors to partition for." in
  Arg.(value & opt int 16 & info [ "p"; "processors" ] ~docv:"P" ~doc)

let skewed_arg =
  let doc = "Also try general parallelepiped (skewed) tiles." in
  Arg.(value & flag & info [ "skewed" ] ~doc)

(* Every expected failure - unparsable or truncated nest files, bad
   sites in a fault plan, impossible configurations - becomes a one-line
   diagnostic and exit code 2 (see the eval wrapper at the bottom),
   never a backtrace. *)
let wrap f = try Ok (f ()) with
  | Loopir.Parse.Parse_error msg -> Error (`Msg msg)
  | Invalid_argument msg | Failure msg | Sys_error msg -> Error (`Msg msg)
  | End_of_file -> Error (`Msg "unexpected end of file (truncated input?)")

let list_cmd =
  let array_summary nest =
    (* e.g. "A 1w, B 2r": per array, how many writes/accumulates/reads
       the body makes - enough to pick a workload without show-ing it. *)
    String.concat ", "
      (List.map
         (fun a ->
           let refs = Loopir.Nest.references_to nest a in
           let count k =
             List.length
               (List.filter
                  (fun (r : Loopir.Reference.t) -> r.Loopir.Reference.kind = k)
                  refs)
           in
           let part n suffix =
             if n = 0 then "" else string_of_int n ^ suffix
           in
           Printf.sprintf "%s %s" a
             (String.concat ""
                [
                  part (count Loopir.Reference.Write) "w";
                  part (count Loopir.Reference.Accumulate) "a";
                  part (count Loopir.Reference.Read) "r";
                ]))
         (Loopir.Nest.arrays nest))
  in
  let run () =
    List.iter
      (fun (name, nest) ->
        Format.printf "%-18s %d-deep doall over %s iterations%s; %s@." name
          (Loopir.Nest.nesting nest)
          (String.concat "x"
             (List.map string_of_int
                (Array.to_list (Loopir.Nest.extents nest))))
          (match nest.Loopir.Nest.seq with
          | Some s ->
              Printf.sprintf " (doseq %s: %d steps)" s.Loopir.Nest.var
                (s.Loopir.Nest.upper - s.Loopir.Nest.lower + 1)
          | None -> "")
          (array_summary nest))
      Loopart.Programs.all;
    Ok ()
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List the built-in program gallery with each program's loop depth \
          and per-array read/write summary")
    Term.(term_result (const run $ const ()))

let show_cmd =
  let run source =
    wrap (fun () -> Format.printf "%a@." Loopir.Nest.pp (load source))
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a program in Doall pseudo-code")
    Term.(term_result (const run $ source_arg))

let analyze_cmd =
  let run source nprocs skewed =
    wrap (fun () ->
        let nest = load source in
        let a = Loopart.Driver.analyze ~try_skewed:skewed ~nprocs nest in
        Format.printf "%a@." Loopart.Driver.report a)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Classify references, print footprint polynomials, partition, and \
          compare against the baselines")
    Term.(term_result (const run $ source_arg $ nprocs_arg $ skewed_arg))

let simulate_cmd =
  let aligned_arg =
    let doc =
      "Distributed-memory run: 2-D mesh with loop-tile-aligned placement."
    in
    Arg.(value & flag & info [ "aligned" ] ~doc)
  in
  let run source nprocs skewed aligned =
    wrap (fun () ->
        let nest = load source in
        let a = Loopart.Driver.analyze ~try_skewed:skewed ~nprocs nest in
        let tile = Loopart.Driver.best_tile a in
        Format.printf "partition: %a@." Partition.Tile.pp tile;
        let r =
          if aligned then Loopart.Driver.simulate_aligned ~tile a
          else Loopart.Driver.simulate ~tile a
        in
        Format.printf "%a@." Machine.Sim.pp_result r)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute the chosen partition on the simulated multiprocessor")
    Term.(
      term_result
        (const run $ source_arg $ nprocs_arg $ skewed_arg $ aligned_arg))

let codegen_cmd =
  let run source nprocs =
    wrap (fun () ->
        let nest = load source in
        let a = Loopart.Driver.analyze ~nprocs nest in
        let sched = Loopart.Driver.schedule a in
        print_string (Partition.Codegen.emit_pseudocode sched);
        let mn, mx, imb = Partition.Codegen.load_balance sched in
        Format.printf "load: min %d, max %d iterations/proc (imbalance %.3f)@."
          mn mx imb)
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Print the generated SPMD loop structure")
    Term.(term_result (const run $ source_arg $ nprocs_arg))

let run_cmd =
  let policy_arg =
    let parse s =
      match String.split_on_char ':' s with
      | [ "tiled" ] -> Ok Loopart.Driver.Tiled
      | [ "cyclic" ] -> Ok Loopart.Driver.Cyclic
      | [ "gss" ] | [ "guided" ] -> Ok Loopart.Driver.Guided
      | [ "block"; c ] -> (
          match int_of_string_opt c with
          | Some c when c >= 1 -> Ok (Loopart.Driver.Block_cyclic c)
          | Some _ | None -> Error (`Msg "block:N needs N >= 1"))
      | [ "steal" ] -> Ok (Loopart.Driver.Work_steal 4)
      | [ "steal"; c ] -> (
          match int_of_string_opt c with
          | Some c when c >= 1 -> Ok (Loopart.Driver.Work_steal c)
          | Some _ | None -> Error (`Msg "steal:N needs N >= 1"))
      | _ ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown policy %S (tiled | cyclic | block:N | gss | \
                  steal[:N])"
                 s))
    in
    let print ppf p =
      Format.pp_print_string ppf
        (match p with
        | Loopart.Driver.Tiled -> "tiled"
        | Loopart.Driver.Cyclic -> "cyclic"
        | Loopart.Driver.Block_cyclic c -> Printf.sprintf "block:%d" c
        | Loopart.Driver.Guided -> "gss"
        | Loopart.Driver.Work_steal c -> Printf.sprintf "steal:%d" c)
    in
    let doc =
      "Execution policy: $(b,tiled) (the compile-time partition), \
       $(b,cyclic), $(b,block:N), $(b,gss) (run-time self-scheduling over a \
       shared counter), or $(b,steal[:N]) (tiled queues with work \
       stealing)."
    in
    Arg.(
      value
      & opt (conv (parse, print)) Loopart.Driver.Tiled
      & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let repeats_arg =
    let doc = "Timed repetitions; the minimum wall-clock is reported." in
    Arg.(value & opt int 3 & info [ "repeats" ] ~docv:"N" ~doc)
  in
  let steps_arg =
    let doc = "Override the outer sequential (doseq) trip count." in
    Arg.(value & opt (some int) None & info [ "steps" ] ~docv:"N" ~doc)
  in
  let bigarray_arg =
    let doc = "Keep operands in a Bigarray instead of a float array." in
    Arg.(value & flag & info [ "bigarray" ] ~doc)
  in
  let kernels_arg =
    let doc =
      "Lower tiles to specialized strided kernels (incremental address \
       bumps, unit-stride-innermost traversal, shape fast paths) instead \
       of interpreting point by point.  Effective for $(b,tiled) runs over \
       rectangular tiles and for resilient box tiles."
    in
    Arg.(value & flag & info [ "kernels" ] ~doc)
  in
  let validate_arg =
    let doc =
      "Also validate: write-race freedom, runtime-vs-simulator footprint \
       agreement, and value determinism."
    in
    Arg.(value & flag & info [ "validate" ] ~doc)
  in
  let fault_plan_arg =
    let parse s =
      match Runtime.Fault.of_string s with
      | Ok p -> Ok p
      | Error e -> Error (`Msg e)
    in
    let doc =
      "Inject faults at chosen sites and run under the fault-tolerant \
       runtime.  $(docv) is a $(b,;)-separated list of \
       ACTION[@[dD][sS][cC]] where ACTION is $(b,crash), $(b,stall:MS) or \
       $(b,corrupt); an omitted dD fires on any domain, step defaults to \
       1, claim to 0 (e.g. $(b,crash;stall:250@s2))."
    in
    Arg.(
      value
      & opt (some (conv (parse, Runtime.Fault.pp))) None
      & info [ "fault-plan" ] ~docv:"PLAN" ~doc)
  in
  let fault_policy_arg =
    let parse s =
      match Runtime.Resilient.policy_of_string s with
      | Ok p -> Ok p
      | Error e -> Error (`Msg e)
    in
    let print ppf p =
      Format.pp_print_string ppf (Runtime.Resilient.policy_to_string p)
    in
    let doc =
      "Recovery policy for the fault-tolerant runtime: $(b,fail-fast), \
       $(b,retry[:ATTEMPTS[:BACKOFF_MS]]) or $(b,degrade).  Implies a \
       resilient run even without $(b,--fault-plan)."
    in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "fault-policy" ] ~docv:"POLICY" ~doc)
  in
  let deadline_arg =
    let doc =
      "Watchdog deadline: a domain whose heartbeat is silent this long is \
       declared timed out (resilient runs only)."
    in
    Arg.(value & opt int 1000 & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let report_json_arg =
    let doc =
      "Write the structured resilience report as JSON to $(docv).  Implies \
       a resilient run."
    in
    Arg.(
      value & opt (some string) None & info [ "report-json" ] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc =
      "Record per-domain execution spans (tiles, barrier waits, steals, \
       watchdog probes) and write them as Chrome trace_event JSON to \
       $(docv) (load in chrome://tracing or ui.perfetto.dev)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Print the compact trace metrics summary (tiles run, steals, backoff \
       yields, fault counters, per-span-kind busy time)."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let run source nprocs skewed policy repeats steps bigarray kernels validate
      fault_plan fault_policy deadline_ms report_json trace_file metrics =
    wrap (fun () ->
        let nest = load source in
        let a = Loopart.Driver.analyze ~try_skewed:skewed ~nprocs nest in
        let tile = Loopart.Driver.best_tile a in
        Format.printf "partition: %a on %d domains@." Partition.Tile.pp tile
          nprocs;
        let trace =
          if trace_file <> None || metrics then
            Some (Runtime.Trace.create ~domains:nprocs ())
          else None
        in
        let config =
          {
            Loopart.Driver.default_exec_config with
            Loopart.Driver.policy;
            repeats;
            steps;
            bigarray;
            kernels;
            trace;
          }
        in
        let resilient =
          fault_plan <> None || fault_policy <> None || report_json <> None
        in
        let failure = ref None in
        if resilient then begin
          let resilience =
            {
              Runtime.Resilient.default_config with
              Runtime.Resilient.deadline_ms;
              policy =
                Option.value
                  ~default:
                    Runtime.Resilient.default_config.Runtime.Resilient.policy
                  fault_policy;
            }
          in
          let report, _buffer =
            Loopart.Driver.execute_resilient ~config ~resilience
              ?plan:fault_plan ~tile a
          in
          Format.printf "%a@." Runtime.Report.pp report;
          (match report_json with
          | Some file ->
              let oc = open_out file in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc (Runtime.Report.to_json report));
              Format.printf "report written to %s@." file
          | None -> ());
          if not report.Runtime.Report.completed then
            failure := Some "resilient run did not complete (see report above)"
        end
        else begin
          let report = Loopart.Driver.execute ~config ~tile a in
          Format.printf "%a@." Runtime.Measure.pp_report report;
          (* The resilient report embeds its own metrics summary; plain
             runs print it here on request. *)
          match trace with
          | Some tr when metrics ->
              Format.printf "%a@." Runtime.Trace.pp_summary
                (Runtime.Trace.summary tr)
          | Some _ | None -> ()
        end;
        (* Dump the trace even when the run failed: a trace of the
           failing run is exactly what one wants to look at. *)
        (match (trace, trace_file) with
        | Some tr, Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc (Runtime.Trace.to_chrome_json tr));
            Format.printf "trace written to %s@." file
        | _ -> ());
        (match !failure with Some msg -> failwith msg | None -> ());
        if validate then
          Format.printf "%a@." Runtime.Validate.pp
            (Loopart.Driver.validate ~tile a))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute the partitioned nest for real on OCaml domains and report \
          per-domain time, iterations and measured footprints against the \
          model's prediction; with $(b,--fault-plan)/$(b,--fault-policy), \
          run under the fault-tolerant runtime instead")
    Term.(
      term_result
        (const run $ source_arg $ nprocs_arg $ skewed_arg $ policy_arg
       $ repeats_arg $ steps_arg $ bigarray_arg $ kernels_arg $ validate_arg
       $ fault_plan_arg $ fault_policy_arg $ deadline_arg $ report_json_arg
       $ trace_arg $ metrics_arg))

let evaluate_cmd =
  let run source nprocs =
    wrap (fun () ->
        let nest = load source in
        let a = Loopart.Driver.analyze ~nprocs nest in
        let cost = a.Loopart.Driver.cost in
        let params = Machine.Timing.alewife_like in
        Format.printf "latency model: %a@.@." Machine.Timing.pp_params params;
        Format.printf "%-28s %14s %14s %14s@." "partition" "misses"
          "net hops" "est. cycles";
        let extents = Loopir.Nest.extents nest in
        let l = Array.length extents in
        let slab k =
          Array.mapi
            (fun k' x -> if k' = k then max 1 (x / max 1 nprocs) else x)
            extents
        in
        let chosen = a.Loopart.Driver.rect.Partition.Rectangular.tile in
        let candidates =
          (Printf.sprintf "optimized %s" (Partition.Tile.to_string chosen),
           chosen)
          :: List.map
               (fun k -> (Printf.sprintf "slab along dim %d" k,
                          Partition.Tile.rect (slab k)))
               (List.init l Fun.id)
        in
        List.iter
          (fun (name, tile) ->
            let sched = Partition.Codegen.make nest tile ~nprocs in
            let placement = Partition.Data_partition.aligned sched cost in
            let r =
              Machine.Sim.run sched
                {
                  Machine.Sim.default with
                  Machine.Sim.topology = Machine.Sim.Mesh2d;
                  placement = Some placement;
                }
            in
            Format.printf "%-28s %14d %14d %14.0f@." name
              r.Machine.Sim.stats.Machine.Stats.misses
              r.Machine.Sim.stats.Machine.Stats.network_hops
              (Machine.Timing.cycles r.Machine.Sim.stats ~nprocs params))
          candidates)
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:
         "Estimate end-to-end execution time of the chosen partition \
          against naive slab partitions (simulated mesh + latency model)")
    Term.(term_result (const run $ source_arg $ nprocs_arg))

let sweep_cmd =
  let simulate_arg =
    let doc = "Also simulate each candidate (slower)." in
    Arg.(value & flag & info [ "simulate" ] ~doc)
  in
  let run source nprocs do_sim =
    wrap (fun () ->
        let nest = load source in
        let cost = Partition.Cost.of_nest nest in
        let extents = Loopir.Nest.extents nest in
        let l = Array.length extents in
        let grids =
          List.filter
            (fun fs ->
              List.for_all2 (fun p n -> p <= n) fs (Array.to_list extents))
            (Intmath.Int_math.factorizations l nprocs)
        in
        Format.printf "%-16s %-16s %12s %12s%s@." "grid" "tile" "pred miss"
          "objective"
          (if do_sim then "      sim miss" else "");
        List.iter
          (fun grid ->
            let sizes =
              Array.of_list
                (List.mapi
                   (fun k p -> Intmath.Int_math.ceil_div extents.(k) p)
                   grid)
            in
            let tile = Partition.Tile.rect sizes in
            let pred = Partition.Cost.misses_per_tile cost tile in
            let obj =
              Partition.Cost.eval_objective cost
                (Array.map float_of_int sizes)
            in
            let sim_txt =
              if do_sim then
                let sched = Partition.Codegen.make nest tile ~nprocs in
                let r = Machine.Sim.run sched Machine.Sim.default in
                Printf.sprintf " %13d" r.Machine.Sim.stats.Machine.Stats.misses
              else ""
            in
            Format.printf "%-16s %-16s %12d %12.0f%s@."
              (String.concat "x" (List.map string_of_int grid))
              (String.concat "x"
                 (List.map string_of_int (Array.to_list sizes)))
              pred obj sim_txt)
          grids)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Enumerate every feasible processor grid and print the predicted \
          cost of each tile shape (optionally simulating them)")
    Term.(term_result (const run $ source_arg $ nprocs_arg $ simulate_arg))

let fuzz_cmd =
  let seed_arg =
    let doc = "PRNG seed; a failure report names the seed that replays it." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc)
  in
  let count_arg =
    let doc = "Number of random cases to generate and check." in
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc)
  in
  let fault_arg =
    let parse s =
      match Proptest.Oracle.fault_of_string s with
      | Some f -> Ok f
      | None ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown fault %S (none | spread-off-by-one | drop-iteration)"
                 s))
    in
    let print ppf f =
      Format.pp_print_string ppf (Proptest.Oracle.fault_to_string f)
    in
    let doc =
      "Inject a known bug to prove the oracles catch it: \
       $(b,spread-off-by-one) perturbs the class spread vector, \
       $(b,drop-iteration) deletes one scheduled iteration."
    in
    Arg.(
      value
      & opt (conv (parse, print)) Proptest.Oracle.No_fault
      & info [ "inject-fault" ] ~docv:"FAULT" ~doc)
  in
  let out_arg =
    let doc = "Write the shrunk counterexample report to $(docv) on failure." in
    Arg.(
      value
      & opt string "fuzz-counterexample.txt"
      & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let max_failures_arg =
    let doc = "Stop after this many failures have been collected and shrunk." in
    Arg.(value & opt int 3 & info [ "max-failures" ] ~docv:"K" ~doc)
  in
  let run seed count fault out max_failures =
    wrap (fun () ->
        let progress id =
          if id > 0 then Format.eprintf "fuzz: %d/%d cases...@." id count
        in
        let o =
          Proptest.Fuzz.run ~fault ~max_failures ~progress ~seed ~count ()
        in
        Format.printf "%a" Proptest.Fuzz.pp_outcome o;
        if o.Proptest.Fuzz.failures <> [] then begin
          let oc = open_out out in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              List.iter
                (fun f ->
                  output_string oc (Proptest.Fuzz.render_failure o f))
                o.Proptest.Fuzz.failures);
          Format.printf "counterexample report written to %s@." out;
          raise
            (Invalid_argument
               (Printf.sprintf "fuzz: %d oracle violation(s)"
                  (List.length o.Proptest.Fuzz.failures)))
        end)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random affine nests cross-checked against \
          brute-force enumeration, the cache simulator, real-domain \
          execution, and exhaustive partition search; failures are shrunk \
          to a minimal replayable nest")
    Term.(
      term_result
        (const run $ seed_arg $ count_arg $ fault_arg $ out_arg
       $ max_failures_arg))

let main =
  let doc =
    "automatic partitioning of parallel loops for cache-coherent \
     multiprocessors (Agarwal, Kranz & Natarajan, ICPP 1993)"
  in
  Cmd.group (Cmd.info "loopartc" ~version:"1.0.0" ~doc)
    [ list_cmd; show_cmd; analyze_cmd; simulate_cmd; run_cmd; codegen_cmd; evaluate_cmd; sweep_cmd; fuzz_cmd ]

let () =
  (* One-line diagnostics (term_result errors) and command-line misuse
     both exit 2, so scripts and CI can distinguish "the input or flags
     were bad" from a crash. *)
  let code = Cmd.eval main in
  exit (match code with 123 | 124 -> 2 | c -> c)
