(** Bounded lattices (Definition 9) and the union-of-translates counting
    results (Theorem 3, Lemma 3) that drive the rectangular-tile cumulative
    footprint formula (Theorem 4).

    A bounded lattice [L(a_1..a_n, l_1..l_n)] is the set of points
    [sum u_i * a_i] with integer [0 <= u_i <= l_i], where the [a_i] are
    linearly independent rows of [basis]. *)

type bounded = { basis : Imat.t; bounds : int array }
(** [basis] is [n x d] with independent rows; [bounds.(i)] is the
    (inclusive) coefficient bound [lambda_i >= 0]. *)

val make : Imat.t -> int array -> bounded
(** Validates independence of the basis rows and non-negative bounds. *)

val count : bounded -> int
(** Number of lattice points: [prod (lambda_i + 1)] (the basis rows are
    independent, so representations are unique). *)

val points : bounded -> Ivec.t list
(** Enumerate all points.  Exponential in dimension; test-sized inputs
    only. *)

val coords_of_translation : bounded -> Ivec.t -> Ivec.t option
(** [coords_of_translation l t] writes [t] as an integer combination
    [sum u_i a_i] of the basis rows, if possible (bounds are ignored). *)

val intersects_translate : bounded -> Ivec.t -> bool
(** Theorem 3: the lattice and its translate by [t] intersect iff
    [t = sum u_i a_i] with integer [|u_i| <= lambda_i]. *)

val union_size_translate : bounded -> Ivec.t -> int
(** Exact size of [L union (L + t)]: [2*prod(l_i+1) - prod(l_i+1-|u_i|)]
    when the translate coordinates [u] exist and are within bounds
    (Lemma 3), [2*prod(l_i+1)] otherwise (disjoint). *)

val union_size_approx : bounded -> Ivec.t -> int
(** Lemma 3's linearized approximation
    [prod(l_j+1) + sum_i |u_i| * prod_{j<>i}(l_j+1)] (the cross terms and
    the final [prod u_i] are dropped); falls back to [2*prod(l_i+1)] when
    the lattices do not intersect. *)
