(* Tests for the fault-tolerant runtime: fault-plan parsing, watchdog
   timeouts, tile-level crash recovery, retry/degradation policies, and
   the invariant that a recovered run is bit-identical to a fault-free
   one. *)

open Loopart

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Fault = Runtime.Fault
module Report = Runtime.Report
module Resilient = Runtime.Resilient

let stencil () = Programs.stencil5 ~n:17 ~steps:2 ()

let ground_truth nest =
  let compiled = Runtime.Exec.compile nest in
  Runtime.Exec.sequential compiled ~steps:(Runtime.Exec.steps_of_nest nest)

let buffers_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.equal x y) a b

let run ?policy ?(deadline_ms = 1000) ?plan nest ~nprocs =
  let plan =
    match plan with
    | None -> Fault.none
    | Some s -> (
        match Fault.of_string s with
        | Ok p -> p
        | Error e -> Alcotest.failf "bad test plan %S: %s" s e)
  in
  let resilience =
    {
      Resilient.default_config with
      deadline_ms;
      policy =
        Option.value ~default:Resilient.default_config.Resilient.policy policy;
    }
  in
  let a = Driver.analyze ~nprocs nest in
  Driver.execute_resilient ~resilience ~plan a

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let test_plan_roundtrip () =
  match Fault.of_string "crash@d1s2;stall:250;corrupt@d2c1" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
      Alcotest.(check string)
        "normalized round trip" "crash@d1s2c0;stall:250@s1c0;corrupt@d2s1c1"
        (Fault.to_string p);
      checki "three injections" 3 (List.length (Fault.injections p))

let test_plan_rejects_garbage () =
  let bad s =
    match Fault.of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "unknown action" true (bad "explode");
  checkb "bad stall" true (bad "stall:soon");
  checkb "bad site key" true (bad "crash@x3");
  checkb "step 0" true (bad "crash@d0s0")

let test_plan_fires_once () =
  match Fault.of_string "crash@d1s1c0" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
      checkb "miss on wrong site" true
        (Fault.fire p ~domain:0 ~step:1 ~claim:0 = None);
      checkb "hit" true
        (Fault.fire p ~domain:1 ~step:1 ~claim:0 = Some (0, Fault.Crash));
      checkb "consumed" true (Fault.fire p ~domain:1 ~step:1 ~claim:0 = None);
      Fault.reset p;
      checkb "re-armed" true
        (Fault.fire p ~domain:1 ~step:1 ~claim:0 = Some (0, Fault.Crash))

(* ------------------------------------------------------------------ *)
(* Fault-free execution                                                *)
(* ------------------------------------------------------------------ *)

let test_fault_free_matches_sequential () =
  let nest = stencil () in
  let report, buffer = run nest ~nprocs:4 in
  checkb "completed" true report.Report.completed;
  checki "on the full pool" 4 report.Report.final_nprocs;
  checki "single attempt" 1 (List.length report.Report.attempts);
  checkb "no events" true (Report.events report = []);
  checkb "covered exactly once" true report.Report.covered_exactly_once;
  checkb "bit-identical to sequential" true
    (buffers_equal buffer (ground_truth nest))

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

let test_crash_recovered_by_survivors () =
  let nest = stencil () in
  let report, buffer = run nest ~nprocs:4 ~plan:"crash" in
  checkb "completed" true report.Report.completed;
  checkb "tiles are idempotent" true report.Report.tile_retry;
  (* Tile-level recovery: the crash is absorbed inside the attempt, no
     retry needed. *)
  checki "single attempt" 1 (List.length report.Report.attempts);
  checki "one crash" 1 (Report.crashed_count report);
  checkb "orphaned tile re-executed" true (Report.reexecuted_tiles report >= 1);
  checkb "covered exactly once" true report.Report.covered_exactly_once;
  (match report.Report.attempts with
  | [ a ] ->
      checki "one domain retired" 1 (List.length a.Report.retired_domains)
  | _ -> Alcotest.fail "expected one attempt");
  checkb "bit-identical to sequential" true
    (buffers_equal buffer (ground_truth nest))

let test_corruption_overwritten_by_reexecution () =
  let nest = stencil () in
  let report, buffer = run nest ~nprocs:4 ~plan:"corrupt" in
  checkb "completed" true report.Report.completed;
  checkb "no NaN survived" true
    (Array.for_all (fun x -> not (Float.is_nan x)) buffer);
  checkb "bit-identical to sequential" true
    (buffers_equal buffer (ground_truth nest))

let test_crash_under_degrade () =
  let nest = stencil () in
  let report, buffer =
    run nest ~nprocs:4 ~policy:Resilient.Degrade ~plan:"crash@s2"
  in
  checkb "completed" true report.Report.completed;
  checkb "bit-identical to sequential" true
    (buffers_equal buffer (ground_truth nest))

let test_fail_fast_fails_cleanly () =
  let nest = stencil () in
  let report, _ =
    run nest ~nprocs:4 ~policy:Resilient.Fail_fast ~plan:"crash"
  in
  checkb "not completed" false report.Report.completed;
  checki "exactly one attempt" 1 (List.length report.Report.attempts);
  checki "crash recorded" 1 (Report.crashed_count report);
  match report.Report.attempts with
  | [ { Report.outcome = Report.Failed _; _ } ] -> ()
  | _ -> Alcotest.fail "expected a single failed attempt"

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)
(* ------------------------------------------------------------------ *)

let test_stall_timed_out_then_retried () =
  let nest = stencil () in
  let t0 = Runtime.Mclock.now () in
  let report, buffer =
    run nest ~nprocs:4 ~deadline_ms:100
      ~policy:(Resilient.Retry { attempts = 2; backoff_ms = 5 })
      ~plan:"stall:10000"
  in
  let wall = Runtime.Mclock.now () -. t0 in
  checkb "completed on retry" true report.Report.completed;
  checki "two attempts" 2 (List.length report.Report.attempts);
  checki "watchdog fired once" 1 (Report.timed_out_count report);
  (match report.Report.attempts with
  | first :: _ -> (
      match first.Report.outcome with
      | Report.Failed _ -> ()
      | Report.Completed -> Alcotest.fail "stalled attempt must fail")
  | [] -> Alcotest.fail "no attempts");
  (* The injected stall is 10 s; the watchdog plus the abort-polling
     sleeper must cut that short by an order of magnitude. *)
  checkb "watchdog cut the stall short" true (wall < 5.0);
  checkb "bit-identical to sequential" true
    (buffers_equal buffer (ground_truth nest))

(* ------------------------------------------------------------------ *)
(* Non-idempotent nests: attempt-level retry only                      *)
(* ------------------------------------------------------------------ *)

let test_accumulate_retries_whole_attempt () =
  let nest = Programs.diag_accumulate ~n:16 () in
  let report, buffer = run nest ~nprocs:4 ~plan:"crash" in
  checkb "accumulating tiles are not idempotent" false report.Report.tile_retry;
  checkb "completed" true report.Report.completed;
  (* No tile-level recovery: the crash failed the first attempt and the
     retry ran on fresh operands with the injection already consumed. *)
  checki "two attempts" 2 (List.length report.Report.attempts);
  checki "no tile re-executions" 0 (Report.reexecuted_tiles report);
  checkb "bit-identical to sequential" true
    (buffers_equal buffer (ground_truth nest))

let test_degrade_to_sequential () =
  let nest = Programs.diag_accumulate ~n:16 () in
  let plan = String.concat ";" (List.init 6 (fun _ -> "crash")) in
  let report, buffer = run nest ~nprocs:4 ~policy:Resilient.Degrade ~plan in
  checkb "completed" true report.Report.completed;
  checki "fell back to sequential" 0 report.Report.final_nprocs;
  checkb "fallback event recorded" true
    (List.exists
       (function Report.Sequential_fallback -> true | _ -> false)
       (Report.events report));
  checkb "degradation steps recorded" true
    (List.exists
       (function Report.Degraded _ -> true | _ -> false)
       (Report.events report));
  checki "4,4,2,2,1,1,seq" 7 (List.length report.Report.attempts);
  checkb "bit-identical to sequential" true
    (buffers_equal buffer (ground_truth nest))

(* Regression: a wildcard site's claim ordinal is re-dealt every
   attempt, and degrade re-partitions re-reach it with a smaller pool -
   the armed-flag CAS must still make each plan entry fire at most once
   across the whole job, and each Injected event must name a distinct
   plan entry. *)
let test_wildcard_sites_fire_once_across_degrades () =
  let nest = Programs.diag_accumulate ~n:16 () in
  let plan = String.concat ";" (List.init 4 (fun _ -> "crash")) in
  let report, _ = run nest ~nprocs:4 ~policy:Resilient.Degrade ~plan in
  checkb "completed" true report.Report.completed;
  let sites =
    List.filter_map
      (function Report.Injected { site; _ } -> Some site | _ -> None)
      (Report.events report)
  in
  checki "every entry fired (enough attempts to consume the plan)" 4
    (List.length sites);
  checki "no entry fired twice" 4
    (List.length (List.sort_uniq compare sites));
  List.iter
    (fun s -> checkb "site indexes the plan" true (s >= 0 && s < 4))
    sites

(* ------------------------------------------------------------------ *)
(* Report serialization                                                *)
(* ------------------------------------------------------------------ *)

let test_report_json () =
  let nest = stencil () in
  let report, _ = run nest ~nprocs:4 ~plan:"crash" in
  let json = Report.to_json report in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  checkb "has completed" true (contains "\"completed\": true");
  checkb "has crash event" true (contains "\"event\": \"crashed\"");
  checkb "has cover bit" true (contains "\"covered_exactly_once\": true");
  checkb "has plan" true (contains "crash@s1c0")

let test_policy_strings () =
  let roundtrip s =
    match Resilient.policy_of_string s with
    | Error e -> Alcotest.failf "policy %S rejected: %s" s e
    | Ok p -> Resilient.policy_to_string p
  in
  Alcotest.(check string) "fail-fast" "fail-fast" (roundtrip "fail-fast");
  Alcotest.(check string) "degrade" "degrade" (roundtrip "degrade");
  Alcotest.(check string) "retry default" "retry:3:25" (roundtrip "retry");
  Alcotest.(check string) "retry full" "retry:5:10" (roundtrip "retry:5:10");
  checkb "garbage rejected" true
    (match Resilient.policy_of_string "panic" with
    | Error _ -> true
    | Ok _ -> false)

let () =
  Alcotest.run "resilient"
    [
      ( "fault plans",
        [
          Alcotest.test_case "round trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_plan_rejects_garbage;
          Alcotest.test_case "fires once" `Quick test_plan_fires_once;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "fault-free matches sequential" `Quick
            test_fault_free_matches_sequential;
          Alcotest.test_case "crash recovered by survivors" `Quick
            test_crash_recovered_by_survivors;
          Alcotest.test_case "corruption overwritten" `Quick
            test_corruption_overwritten_by_reexecution;
          Alcotest.test_case "crash under degrade" `Quick
            test_crash_under_degrade;
          Alcotest.test_case "fail-fast fails cleanly" `Quick
            test_fail_fast_fails_cleanly;
          Alcotest.test_case "stall timed out then retried" `Quick
            test_stall_timed_out_then_retried;
          Alcotest.test_case "accumulate retries whole attempt" `Quick
            test_accumulate_retries_whole_attempt;
          Alcotest.test_case "degrade to sequential" `Quick
            test_degrade_to_sequential;
          Alcotest.test_case "wildcard sites fire once across degrades" `Quick
            test_wildcard_sites_fire_once_across_degrades;
        ] );
      ( "report",
        [
          Alcotest.test_case "json" `Quick test_report_json;
          Alcotest.test_case "policy strings" `Quick test_policy_strings;
        ] );
    ]
