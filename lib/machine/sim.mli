(** The cache-coherent multiprocessor simulator (the Alewife stand-in of
    Figure 2 / Section 4).

    Executes a partitioned loop nest on [P] simulated processors with
    private MSI caches kept coherent by a full-map directory, counting the
    events the paper's analysis predicts: distinct elements cached per
    processor (cumulative footprints), cold and coherence misses,
    invalidations, and network traffic.  An optional outer sequential loop
    (Figure 9) re-executes the parallel body to expose steady-state
    coherence traffic.

    The simulator is deterministic: iterations are issued round-robin
    across processors (or processor-by-processor with
    [interleave = false]); ties never depend on hashing order. *)

open Partition

type topology = Uniform_memory | Mesh2d

type config = {
  geometry : Cache.geometry;
  topology : topology;
  placement : Data_partition.placement option;
      (** home memory module per element; [None] models the monolithic
          uniform-access memory of Figure 2 *)
  seq_steps : int option;
      (** override the number of outer sequential iterations; default: the
          nest's Doseq trip count, or 1 *)
  interleave : bool;  (** round-robin iterations across processors *)
  line_size : int;
      (** cache-line length in elements.  1 (the paper's Section 2.2
          assumption) keys coherence on elements; larger values use the
          row-major {!Layout} so that the last array dimension is
          contiguous and false sharing becomes observable *)
}

val default : config
(** Infinite caches, uniform memory, no placement, one pass,
    interleaved, unit cache lines. *)

type result = {
  stats : Stats.t;
  addrs : Addr.t;
  nprocs : int;
  steps : int;
}

val run : Codegen.schedule -> config -> result

val run_assignment :
  Loopir.Nest.t ->
  per_proc:Matrixkit.Ivec.t list array ->
  config ->
  result
(** Run an arbitrary per-processor iteration assignment (e.g. the
    run-time scheduling baselines of {!Partition.Scheduling}); [run] is
    this applied to a compile-time tiled schedule. *)

val footprints : result -> int array
(** Measured per-processor cumulative footprints (distinct addresses
    touched), the quantity Theorems 2/4 predict. *)

val pp_result : Format.formatter -> result -> unit
