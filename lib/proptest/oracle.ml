open Matrixkit
open Loopir
open Footprint
open Partition
open Machine
open Runtime

type fault = No_fault | Spread_off_by_one | Drop_iteration

let fault_to_string = function
  | No_fault -> "none"
  | Spread_off_by_one -> "spread-off-by-one"
  | Drop_iteration -> "drop-iteration"

let fault_of_string = function
  | "none" -> Some No_fault
  | "spread-off-by-one" -> Some Spread_off_by_one
  | "drop-iteration" -> Some Drop_iteration
  | _ -> None

let all_faults = [ No_fault; Spread_off_by_one; Drop_iteration ]

type violation = { oracle : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.oracle v.detail
let fail oracle fmt = Format.kasprintf (fun detail -> Some { oracle; detail }) fmt

module Pools = struct
  type t = (int, Pool.t) Hashtbl.t

  let create () = Hashtbl.create 4

  let get t n =
    match Hashtbl.find_opt t n with
    | Some p -> p
    | None ->
        let p = Pool.create n in
        Hashtbl.add t n p;
        p

  let shutdown t =
    Hashtbl.iter (fun _ p -> Pool.shutdown p) t;
    Hashtbl.reset t
end

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let ivec_str v = Ivec.to_string v

let space_points nest =
  (* All iteration-space points, lexicographic. *)
  let bounds = Nest.bounds nest in
  let l = Array.length bounds in
  let rec go k =
    if k = l then [ [] ]
    else
      let lo, hi = bounds.(k) in
      let rest = go (k + 1) in
      List.concat_map
        (fun v -> List.map (fun tl -> v :: tl) rest)
        (List.init (hi - lo + 1) (fun i -> lo + i))
  in
  List.map Array.of_list (go 0)

let select_components v idx = Array.of_list (List.map (fun k -> v.(k)) idx)

let first_some checks =
  List.fold_left
    (fun acc check -> match acc with Some _ -> acc | None -> check ())
    None checks

(* ------------------------------------------------------------------ *)
(* Oracle 1a: closed-form single-reference footprint vs enumeration    *)
(* ------------------------------------------------------------------ *)

let check_single (c : Gen.case) =
  let lambda = Array.map (fun t -> t - 1) c.tile in
  let iterations = Exact.rect_tile_iterations ~lambda in
  first_some
    (List.map
       (fun (r : Reference.t) () ->
         let g = Affine.g r.index in
         let closed = Size.rect_single ~lambda ~g in
         let brute = Exact.footprint_size ~iterations r.index in
         if closed <> brute then
           fail "footprint-single"
             "ref %s[G=%s]: Size.rect_single=%d but enumeration=%d for tile %s"
             r.array_name (Imat.to_string g) closed brute
             (ivec_str c.tile)
         else None)
       c.nest.Nest.body)

(* ------------------------------------------------------------------ *)
(* Oracle 1b: cumulative class footprint (Lemma 3 + Theorem 4 engines) *)
(* ------------------------------------------------------------------ *)

let check_cumulative ~fault (c : Gen.case) =
  let lambda = Array.map (fun t -> t - 1) c.tile in
  let iterations = Exact.rect_tile_iterations ~lambda in
  let perturb_first v =
    match fault with
    | Spread_off_by_one when Array.length v > 0 ->
        let v' = Array.copy v in
        v'.(0) <- v'.(0) + 1;
        v'
    | _ -> v
  in
  let check_class (cls : Uniform.cls) () =
    match (cls.refs, cls.offsets) with
    | r1 :: r2 :: _, o1 :: o2 :: _ when Imat.rank cls.g > 0 ->
        let spread = Uniform.spread cls in
        let red = Size.reduce ~g:cls.g ~spread in
        let brute =
          Exact.cumulative_footprint_size ~iterations
            [ r1.Reference.index; r2.Reference.index ]
        in
        let lemma3_check () =
          if not red.Size.full_row_rank then None
          else begin
            let diff = perturb_first (Ivec.sub o2 o1) in
            let diff_red = select_components diff red.Size.kept_cols in
            let lambda_red = select_components lambda red.Size.kept_rows in
            let lat = Lattice.make red.Size.g_reduced lambda_red in
            let lemma3 = Lattice.union_size_translate lat diff_red in
            if lemma3 <> brute then
              fail "footprint-cumulative"
                "class %s[G=%s] offsets %s,%s: Lemma 3 union=%d but \
                 enumeration=%d for tile %s"
                cls.array_name (Imat.to_string cls.g) (ivec_str o1)
                (ivec_str o2) lemma3 brute (ivec_str c.tile)
            else None
          end
        in
        let engine_check () =
          (* The public engine takes the Definition 8 spread, which only
             equals the true translation when the offset difference does
             not mix signs (see Size.lattice_spread).  Only two-member
             classes have spread = |diff|.  Checked for rank-deficient
             reduced G as well: exact:true must enumerate there. *)
          if
            List.length cls.refs = 2
            && (Array.for_all (fun d -> d >= 0) (Ivec.sub o2 o1)
               || Array.for_all (fun d -> d <= 0) (Ivec.sub o2 o1))
          then begin
            let api =
              Size.rect_cumulative ~exact:true ~lambda ~g:cls.g
                ~spread:(perturb_first spread)
            in
            if api <> brute then
              fail "footprint-cumulative"
                "class %s[G=%s] spread %s: Size.rect_cumulative=%d but \
                 enumeration=%d for tile %s"
                cls.array_name (Imat.to_string cls.g) (ivec_str spread) api
                brute (ivec_str c.tile)
            else None
          end
          else None
        in
        first_some [ lemma3_check; engine_check ]
    | _ -> None
  in
  first_some (List.map check_class (Uniform.classify_nest c.nest))

(* ------------------------------------------------------------------ *)
(* Oracle 2: owner schedules cover the space exactly once              *)
(* ------------------------------------------------------------------ *)

let check_coverage (c : Gen.case) sched per_proc =
  let total = Array.fold_left (fun a l -> a + List.length l) 0 per_proc in
  if total <> Nest.iterations c.nest then
    fail "owner-cover" "schedules hold %d iterations, space has %d" total
      (Nest.iterations c.nest)
  else begin
    let seen = Hashtbl.create (max 16 total) in
    let dup = ref None in
    let misowned = ref None in
    Array.iteri
      (fun p pts ->
        List.iter
          (fun pt ->
            let key = Array.to_list pt in
            if Hashtbl.mem seen key && !dup = None then dup := Some pt;
            Hashtbl.replace seen key ();
            let o = Codegen.owner sched pt in
            if o <> p && !misowned = None then misowned := Some (pt, p, o))
          pts)
      per_proc;
    match (!dup, !misowned) with
    | Some pt, _ ->
        fail "owner-cover" "iteration %s scheduled twice" (ivec_str pt)
    | _, Some (pt, p, o) ->
        fail "owner-cover" "iteration %s in proc %d's schedule but owner=%d"
          (ivec_str pt) p o
    | None, None ->
        (* total and uniqueness imply full cover; still check owner range
           over the whole space. *)
        first_some
          (List.map
             (fun pt () ->
               let o = Codegen.owner sched pt in
               if o < 0 || o >= c.nprocs then
                 fail "owner-cover" "owner %s = %d outside 0..%d" (ivec_str pt)
                   o (c.nprocs - 1)
               else None)
             (space_points c.nest))
  end

(* ------------------------------------------------------------------ *)
(* Oracle 3: runtime domains, simulator and brute force agree          *)
(* ------------------------------------------------------------------ *)

let brute_footprints (c : Gen.case) per_proc =
  let per =
    Array.map
      (fun pts ->
        let h = Hashtbl.create 64 in
        List.iter
          (fun pt ->
            List.iter
              (fun (r : Reference.t) ->
                Hashtbl.replace h
                  (r.array_name, Array.to_list (Affine.apply r.index pt))
                  ())
              c.nest.Nest.body)
          pts;
        h)
      per_proc
  in
  let union = Hashtbl.create 256 in
  Array.iter (fun h -> Hashtbl.iter (fun k () -> Hashtbl.replace union k ()) h) per;
  (Array.map Hashtbl.length per, Hashtbl.length union)

let check_runtime ~pools (c : Gen.case) sim per_proc =
  let compiled = Exec.compile c.nest in
  let steps = Exec.steps_of_nest c.nest in
  let pool = Pools.get pools c.nprocs in
  let work = Exec.static_of_assignment per_proc in
  let inst = Exec.measure pool compiled work ~steps ~mode:Measure.Exact in
  let brute_per, brute_union = brute_footprints c per_proc in
  let sim_per = Sim.footprints sim in
  let mismatch = ref None in
  Array.iteri
    (fun p bf ->
      if !mismatch = None
         && (inst.Exec.footprints.(p) <> bf || sim_per.(p) <> bf)
      then mismatch := Some (p, bf, inst.Exec.footprints.(p), sim_per.(p)))
    brute_per;
  match !mismatch with
  | Some (p, bf, rt, sm) ->
      fail "runtime-sim-agree"
        "proc %d footprint: brute=%d runtime-bitset=%d sim=%d" p bf rt sm
  | None ->
      let iter_bad = ref None in
      Array.iteri
        (fun p pts ->
          let want = steps * List.length pts in
          if !iter_bad = None && inst.Exec.iterations.(p) <> want then
            iter_bad := Some (p, want, inst.Exec.iterations.(p)))
        per_proc;
      (match !iter_bad with
      | Some (p, want, got) ->
          fail "runtime-sim-agree" "proc %d executed %d iterations, want %d" p
            got want
      | None ->
          if not inst.Exec.exact then
            fail "runtime-sim-agree" "bitset fell back to estimation"
          else if inst.Exec.distinct_total <> brute_union then
            fail "runtime-sim-agree" "union footprint: runtime=%d brute=%d"
              inst.Exec.distinct_total brute_union
          else if Addr.size sim.Sim.addrs <> brute_union then
            fail "runtime-sim-agree" "union footprint: sim=%d brute=%d"
              (Addr.size sim.Sim.addrs) brute_union
          else None)

(* ------------------------------------------------------------------ *)
(* Oracle 4: simulator traffic invariant under processor relabeling    *)
(* ------------------------------------------------------------------ *)

let check_relabel (c : Gen.case) sim per_proc =
  if c.nprocs < 2 then None
  else begin
    let n = Array.length per_proc in
    let relabeled = Array.init n (fun p -> per_proc.(n - 1 - p)) in
    let sim' = Sim.run_assignment c.nest ~per_proc:relabeled Sim.default in
    let sorted r =
      let a = Array.copy (Stats.touched r.Sim.stats) in
      Array.sort compare a;
      a
    in
    let s1 = sim.Sim.stats and s2 = sim'.Sim.stats in
    if sorted sim <> sorted sim' then
      fail "sim-relabel-invariant" "footprint multiset changed: %s vs %s"
        (ivec_str (sorted sim)) (ivec_str (sorted sim'))
    else if Addr.size sim.Sim.addrs <> Addr.size sim'.Sim.addrs then
      fail "sim-relabel-invariant" "distinct addresses changed: %d vs %d"
        (Addr.size sim.Sim.addrs) (Addr.size sim'.Sim.addrs)
    else if
      (s1.Stats.accesses, s1.Stats.reads, s1.Stats.writes, s1.Stats.sync_ops)
      <> (s2.Stats.accesses, s2.Stats.reads, s2.Stats.writes, s2.Stats.sync_ops)
    then
      fail "sim-relabel-invariant"
        "access counts changed: (%d,%d,%d,%d) vs (%d,%d,%d,%d)"
        s1.Stats.accesses s1.Stats.reads s1.Stats.writes s1.Stats.sync_ops
        s2.Stats.accesses s2.Stats.reads s2.Stats.writes s2.Stats.sync_ops
    else if
      (* With no writes there is no coherence traffic: under the default
         infinite cache every miss is a per-processor first touch, so the
         miss count is the sum of the footprints however processors are
         named. *)
      (not (List.exists Reference.is_write_like c.nest.Nest.body))
      && (s1.Stats.misses <> s2.Stats.misses
         || s1.Stats.misses
            <> Array.fold_left ( + ) 0 (Stats.touched sim.Sim.stats))
    then
      fail "sim-relabel-invariant"
        "read-only misses: %d vs %d (sum of footprints %d)" s1.Stats.misses
        s2.Stats.misses
        (Array.fold_left ( + ) 0 (Stats.touched sim.Sim.stats))
    else None
  end

(* ------------------------------------------------------------------ *)
(* Oracle 5: the optimizer never loses to exhaustive grid search       *)
(* ------------------------------------------------------------------ *)

(* Independent re-enumeration of processor grids (do not reuse
   Int_math.factorizations: a bug there would hide from a circular
   oracle). *)
let rec grids_of l n =
  if l = 1 then [ [ n ] ]
  else
    List.concat_map
      (fun d ->
        if n mod d = 0 then List.map (fun rest -> d :: rest) (grids_of (l - 1) (n / d))
        else [])
      (List.init n (fun i -> i + 1))

let check_optimizer (c : Gen.case) =
  let cost = Cost.of_nest c.nest in
  match Rectangular.optimize cost ~nprocs:c.nprocs with
  | exception Invalid_argument msg
    when (* too many processors for the space: documented precondition *)
         String.length msg >= 16
         && String.sub msg 0 11 = "Rectangular" ->
      None
  | r ->
      let extents = Nest.extents c.nest in
      let l = Array.length extents in
      let feasible =
        List.filter
          (fun grid -> List.for_all2 (fun p n -> p <= n) grid (Array.to_list extents))
          (grids_of l c.nprocs)
      in
      let objective_of grid =
        let sizes =
          Array.of_list
            (List.mapi (fun k p -> (extents.(k) + p - 1) / p) grid)
        in
        Cost.eval_objective cost (Array.map float_of_int sizes)
      in
      let best =
        List.fold_left (fun acc g -> Float.min acc (objective_of g)) infinity
          feasible
      in
      let chosen =
        Cost.eval_objective cost (Array.map float_of_int r.Rectangular.sizes)
      in
      let prod = Array.fold_left ( * ) 1 r.Rectangular.grid in
      if prod <> c.nprocs then
        fail "optimizer-dominates" "grid %s does not multiply to %d procs"
          (ivec_str r.Rectangular.grid) c.nprocs
      else if feasible = [] then
        fail "optimizer-dominates"
          "optimize returned a tile but independent search found no feasible \
           grid"
      else if chosen > best +. (1e-6 *. (1.0 +. Float.abs best)) then
        fail "optimizer-dominates"
          "chosen sizes %s cost %.6f but exhaustive grid search reaches %.6f"
          (ivec_str r.Rectangular.sizes) chosen best
      else None

(* ------------------------------------------------------------------ *)
(* Oracle 6: the resilient runtime recovers from injected faults       *)
(* ------------------------------------------------------------------ *)

(* Value comparison against the sequential reference is only meaningful
   when the nest is order-insensitive: idempotent tiles (no read of a
   written address, no accumulates) and no two iterations writing the
   same element.  Work stealing and orphan re-execution reorder tiles,
   so a conflicting pair would differ from lexicographic order even
   without faults. *)
let writes_conflict_free (c : Gen.case) =
  let seen = Hashtbl.create 256 in
  let ok = ref true in
  List.iter
    (fun pt ->
      List.iter
        (fun (r : Reference.t) ->
          if Reference.is_write_like r then begin
            let key =
              (r.Reference.array_name,
               Array.to_list (Affine.apply r.Reference.index pt))
            in
            if Hashtbl.mem seen key then ok := false
            else Hashtbl.add seen key ()
          end)
        c.nest.Nest.body)
    (space_points c.nest);
  !ok

let check_resilient (c : Gen.case) =
  (* Each scenario spawns pools of its own (one per attempt), so only a
     2% sample of cases pays for it. *)
  let scenario =
    if c.id mod 50 = 0 then Some `Crash
    else if c.id mod 50 = 25 && c.nprocs >= 2 then Some `Stall
    else None
  in
  match scenario with
  | None -> None
  | Some kind ->
      let compiled = Exec.compile c.nest in
      let steps = Exec.steps_of_nest c.nest in
      let partition ~nprocs =
        Resilient.tiles_of_schedule
          (Codegen.make c.nest (Tile.rect c.tile) ~nprocs)
      in
      let plan_str, deadline_ms =
        (* The stall far exceeds the deadline: completion proves the
           watchdog (not patience) resolved it. *)
        match kind with `Crash -> ("crash", 10_000) | `Stall -> ("stall:2000", 100)
      in
      let plan =
        match Fault.of_string plan_str with
        | Ok p -> p
        | Error e -> invalid_arg e
      in
      let config =
        {
          Resilient.policy = Resilient.Retry { attempts = 3; backoff_ms = 1 };
          deadline_ms;
          stall_poll_ms = 2;
        }
      in
      let report, buffer =
        Resilient.execute ~config ~plan ~compiled ~steps ~partition
          ~nprocs:c.nprocs ()
      in
      if not report.Report.completed then
        fail "resilient-recovery" "%s under retry did not complete: %s"
          plan_str
          (match List.rev report.Report.attempts with
          | { Report.outcome = Report.Failed r; _ } :: _ -> r
          | _ -> "no failure reason")
      else if kind = `Stall && Report.timed_out_count report = 0 then
        fail "resilient-recovery"
          "2000 ms stall under a 100 ms deadline completed without a \
           Timed_out event"
      else if
        (* One-shot injection: every plan entry fires at most once
           across the whole job - concurrent claimers, retried attempts
           and degrade re-partitions included.  A wildcard site re-dealt
           to the smaller pool after degrading is the regression this
           guards against. *)
        (let hits = Hashtbl.create 4 in
         List.iter
           (function
             | Report.Injected { site; _ } ->
                 Hashtbl.replace hits site
                   (1 + Option.value ~default:0 (Hashtbl.find_opt hits site))
             | _ -> ())
           (Report.events report);
         Hashtbl.fold (fun _ n acc -> acc || n > 1) hits false)
      then
        fail "resilient-recovery"
          "a plan entry fired more than once (one-shot injection violated; \
           %d injections recorded for plan %s)"
          (Report.injected_count report)
          plan_str
      else if
        Exec.reexecution_safe compiled && writes_conflict_free c
        && buffer <> Exec.sequential compiled ~steps
      then
        fail "resilient-recovery"
          "recovered buffer differs from the sequential reference (%s, %d \
           procs, tile %s)"
          plan_str c.nprocs (ivec_str c.tile)
      else None

(* ------------------------------------------------------------------ *)
(* Oracle 8: kernel lowering agrees with the interpreter bit for bit   *)
(* ------------------------------------------------------------------ *)

(* Run the schedule's tile boxes through {!Kernel.run_box} (both the
   shape-specialized plan and the generic fallback) and through the
   point interpreter iterating the same boxes lexicographically, and
   demand byte-identical final buffers.  Comparing over the same boxes
   in the same order isolates what the kernel owns - incremental
   addressing, traversal reordering, shape specialization - from tile
   scheduling order, which other oracles cover.  Alternates storage
   representations across cases. *)
let check_kernel (c : Gen.case) =
  let bigarray = c.id land 1 = 1 in
  let compiled = Exec.compile ~bigarray c.nest in
  let steps = Exec.steps_of_nest c.nest in
  let sched = Codegen.make c.nest (Tile.rect c.tile) ~nprocs:c.nprocs in
  let boxes = Codegen.rect_tile_ranges sched in
  let reference =
    let storage = Exec.alloc compiled in
    let body = Exec.exec_point compiled storage in
    let run_box (b : (int * int) array) =
      let d = Array.length b in
      let point = Array.map fst b in
      let rec go k =
        if k = d then body point
        else
          let lo, hi = b.(k) in
          for v = lo to hi do
            point.(k) <- v;
            go (k + 1)
          done
      in
      go 0
    in
    for _ = 1 to steps do
      List.iter run_box boxes
    done;
    storage
  in
  let ref_buf = Exec.to_float_array reference in
  let engine ~force_generic =
    let plan = Kernel.plan ~force_generic compiled in
    let storage = Exec.alloc compiled in
    for _ = 1 to steps do
      List.iter (Kernel.run_box plan storage) boxes
    done;
    (plan, storage)
  in
  let compare_one ~force_generic () =
    let plan, storage = engine ~force_generic in
    let buf = Exec.to_float_array storage in
    let mismatch = ref (-1) in
    (if Array.length buf = Array.length ref_buf then begin
       let i = ref 0 in
       while !mismatch < 0 && !i < Array.length buf do
         if buf.(!i) <> ref_buf.(!i) then mismatch := !i;
         incr i
       done
     end
     else mismatch := Array.length ref_buf);
    if !mismatch >= 0 then
      let i = !mismatch in
      fail "kernel-interp-agree"
        "%s kernel (shape %s, order %s, %s) diverges from the interpreter \
         at element %d: %h vs %h (tile %s, %d procs)"
        (if force_generic then "generic" else "specialized")
        (Kernel.shape plan)
        (ivec_str (Kernel.order plan))
        (if bigarray then "bigarray" else "flat")
        i
        (if i < Array.length buf then buf.(i) else Float.nan)
        (if i < Array.length ref_buf then ref_buf.(i) else Float.nan)
        (ivec_str c.tile) c.nprocs
    else if Exec.checksum storage <> Exec.checksum reference then
      fail "kernel-interp-agree"
        "buffers match but checksums differ (%h vs %h)"
        (Exec.checksum storage) (Exec.checksum reference)
    else None
  in
  first_some
    [
      compare_one ~force_generic:false;
      compare_one ~force_generic:true;
    ]

(* ------------------------------------------------------------------ *)
(* Putting it together                                                 *)
(* ------------------------------------------------------------------ *)

let apply_drop_fault fault per_proc =
  match fault with
  | Drop_iteration ->
      let out = Array.copy per_proc in
      let dropped = ref false in
      for p = Array.length out - 1 downto 0 do
        if (not !dropped) && out.(p) <> [] then begin
          out.(p) <- List.filteri (fun i _ -> i < List.length out.(p) - 1) out.(p);
          dropped := true
        end
      done;
      out
  | _ -> per_proc

let check ~fault ~pools (c : Gen.case) =
  try
    let sched = Codegen.make c.nest (Tile.rect c.tile) ~nprocs:c.nprocs in
    let per_proc = apply_drop_fault fault (Codegen.iterations_by_proc sched) in
    let sim = lazy (Sim.run_assignment c.nest ~per_proc Sim.default) in
    first_some
      [
        (fun () -> check_single c);
        (fun () -> check_cumulative ~fault c);
        (fun () -> check_coverage c sched per_proc);
        (fun () -> check_runtime ~pools c (Lazy.force sim) per_proc);
        (fun () -> check_relabel c (Lazy.force sim) per_proc);
        (fun () -> check_optimizer c);
        (fun () -> check_resilient c);
        (fun () -> check_kernel c);
      ]
  with e ->
    Some
      {
        oracle = "exception";
        detail = Printexc.to_string e;
      }
