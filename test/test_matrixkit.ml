(* Unit and property tests for the exact linear-algebra substrate:
   matrices, Hermite/Smith normal forms, and the bounded-lattice results
   (Definition 9 / Theorem 3 / Lemma 3) that power Theorem 4. *)

open Intmath
open Matrixkit

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let imat = Alcotest.testable Imat.pp Imat.equal
let rat = Alcotest.testable Rat.pp Rat.equal

(* ------------------------------------------------------------------ *)
(* Imat basics                                                         *)
(* ------------------------------------------------------------------ *)

let m_2x2 = Imat.of_rows [ [ 1; 2 ]; [ 3; 4 ] ]
let m_ex2 = Imat.of_rows [ [ 1; 1 ]; [ 1; -1 ] ] (* Example 2's B matrix *)

let test_construction () =
  check "rows" 2 (Imat.rows m_2x2);
  check "cols" 2 (Imat.cols m_2x2);
  check "get" 3 (Imat.get m_2x2 1 0);
  Alcotest.check imat "of_array round trip"
    m_2x2
    (Imat.of_array [| [| 1; 2 |]; [| 3; 4 |] |]);
  checkb "ragged rejected" true
    (try
       ignore (Imat.of_rows [ [ 1 ]; [ 1; 2 ] ]);
       false
     with Invalid_argument _ -> true)

let test_arith () =
  Alcotest.check imat "add" (Imat.of_rows [ [ 2; 4 ]; [ 6; 8 ] ])
    (Imat.add m_2x2 m_2x2);
  Alcotest.check imat "transpose" (Imat.of_rows [ [ 1; 3 ]; [ 2; 4 ] ])
    (Imat.transpose m_2x2);
  Alcotest.check imat "identity mul" m_2x2 (Imat.mul (Imat.identity 2) m_2x2);
  Alcotest.(check (array int))
    "row-vector mul" [| 7; 10 |]
    (Imat.mul_row [| 1; 2 |] m_2x2)

let test_det () =
  check "det 2x2" (-2) (Imat.det m_2x2);
  check "det example2 G" (-2) (Imat.det m_ex2);
  check "det identity" 1 (Imat.det (Imat.identity 4));
  check "det singular" 0 (Imat.det (Imat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
  (* A 3x3 with known determinant. *)
  check "det 3x3" (-306)
    (Imat.det (Imat.of_rows [ [ 6; 1; 1 ]; [ 4; -2; 5 ]; [ 2; 8; 7 ] ]))

let test_rank () =
  check "full" 2 (Imat.rank m_2x2);
  check "deficient" 1 (Imat.rank (Imat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
  check "wide" 2 (Imat.rank (Imat.of_rows [ [ 1; 2; 1 ]; [ 0; 0; 1 ] ]));
  check "zero" 0 (Imat.rank (Imat.zero 3 3))

let test_unimodular () =
  checkb "identity" true (Imat.is_unimodular (Imat.identity 3));
  checkb "shear" true (Imat.is_unimodular (Imat.of_rows [ [ 1; 0 ]; [ 5; 1 ] ]));
  checkb "det -2" false (Imat.is_unimodular m_ex2)

let test_replace_row () =
  Alcotest.check imat "replace"
    (Imat.of_rows [ [ 9; 9 ]; [ 3; 4 ] ])
    (Imat.replace_row m_2x2 0 [| 9; 9 |])

let test_independent_cols () =
  (* Example 7's matrix: columns 0 and 2 are a maximal independent set. *)
  let g = Imat.of_rows [ [ 1; 2; 1 ]; [ 0; 0; 1 ] ] in
  Alcotest.(check (list int)) "example 7" [ 0; 2 ] (Imat.max_independent_cols g);
  Alcotest.(check (list int))
    "identity keeps all" [ 0; 1 ]
    (Imat.max_independent_cols (Imat.identity 2))

let test_gcd_minors () =
  check "identity" 1 (Imat.gcd_maximal_minors (Imat.identity 3));
  check "2x scaled identity" 4
    (Imat.gcd_maximal_minors (Imat.of_rows [ [ 2; 0 ]; [ 0; 2 ] ]));
  check "wide matrix" 1
    (Imat.gcd_maximal_minors (Imat.of_rows [ [ 1; 0; 3 ]; [ 0; 1; 4 ] ]))

let test_zero_cols () =
  (* Example 1's matrix has zero columns 1 and 3. *)
  let g =
    Imat.of_rows [ [ 0; 0; 0; 0 ]; [ 0; 0; 1; 0 ]; [ 1; 0; 0; 0 ] ]
  in
  checkb "has zero col" true (Imat.has_zero_col g);
  let reduced, kept = Imat.drop_zero_cols g in
  Alcotest.(check (list int)) "kept" [ 0; 2 ] kept;
  check "reduced cols" 2 (Imat.cols reduced)

(* ------------------------------------------------------------------ *)
(* Qmat                                                                *)
(* ------------------------------------------------------------------ *)

let test_qmat_inv () =
  let q = Qmat.of_imat m_2x2 in
  match Qmat.inv q with
  | None -> Alcotest.fail "2x2 should invert"
  | Some inv ->
      checkb "A * A^-1 = I" true (Qmat.equal (Qmat.mul q inv) (Qmat.identity 2));
      checkb "singular returns None" true
        (Qmat.inv (Qmat.of_imat (Imat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ])) = None)

let test_qmat_det () =
  Alcotest.check rat "det" (Rat.of_int (-2)) (Qmat.det (Qmat.of_imat m_2x2));
  Alcotest.check rat "det agrees with Imat" (Rat.of_int (-306))
    (Qmat.det
       (Qmat.of_imat (Imat.of_rows [ [ 6; 1; 1 ]; [ 4; -2; 5 ]; [ 2; 8; 7 ] ])))

let test_solve_left () =
  (* x * G = b with G = [[1,1],[1,-1]], b = (4,2): x = (3,1). *)
  let g = Qmat.of_imat m_ex2 in
  (match Qmat.solve_left g (Array.map Rat.of_int [| 4; 2 |]) with
  | None -> Alcotest.fail "solvable system"
  | Some x ->
      Alcotest.check rat "x0" (Rat.of_int 3) x.(0);
      Alcotest.check rat "x1" (Rat.of_int 1) x.(1));
  (* Inconsistent system: rows dependent, rhs off the row space. *)
  let sing = Qmat.of_imat (Imat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]) in
  checkb "inconsistent -> None" true
    (Qmat.solve_left sing (Array.map Rat.of_int [| 1; 0 |]) = None);
  (* Underdetermined but consistent: wide row space. *)
  let wide = Qmat.of_imat (Imat.of_rows [ [ 1; 0 ]; [ 0; 1 ]; [ 1; 1 ] ]) in
  (match Qmat.solve_left wide (Array.map Rat.of_int [| 2; 3 |]) with
  | None -> Alcotest.fail "consistent underdetermined"
  | Some x ->
      let b = Qmat.mul_row x wide in
      Alcotest.check rat "b0" (Rat.of_int 2) b.(0);
      Alcotest.check rat "b1" (Rat.of_int 3) b.(1))

(* ------------------------------------------------------------------ *)
(* Hermite normal form                                                 *)
(* ------------------------------------------------------------------ *)

let test_hnf_shape () =
  let g = Imat.of_rows [ [ 4; 6 ]; [ 2; 5 ] ] in
  let h, u = Hnf.row_hnf g in
  checkb "u unimodular" true (Imat.is_unimodular u);
  Alcotest.check imat "h = u*g" h (Imat.mul u g);
  (* Echelon with positive pivots. *)
  checkb "pivot positive" true (Imat.get h 0 0 > 0)

let test_solve_left_int () =
  (* Example 10's intersection tests: G = [[1,2,1],[0,0,2]].
     (0,0,2) is in the row lattice; (1,2,2) is not. *)
  let g = Imat.of_rows [ [ 1; 2; 1 ]; [ 0; 0; 2 ] ] in
  checkb "in lattice" true (Hnf.mem_row_lattice g [| 0; 0; 2 |]);
  checkb "not in lattice" false (Hnf.mem_row_lattice g [| 1; 2; 2 |]);
  (match Hnf.solve_left_int g [| 1; 2; 3 |] with
  | Some x ->
      Alcotest.(check (array int))
        "solution check" [| 1; 2; 3 |]
        (Imat.mul_row x g)
  | None -> Alcotest.fail "(1,2,3) = row1 + row2 is solvable");
  (* A[2i] vs A[2i+1]: delta 1 is not a multiple of 2. *)
  let g2 = Imat.of_rows [ [ 2 ] ] in
  checkb "A[2i] vs A[2i+1]" false (Hnf.mem_row_lattice g2 [| 1 |])

let test_onto_one_to_one () =
  (* Lemma 1 / Lemma 2 examples. *)
  checkb "identity onto" true (Hnf.is_onto (Imat.identity 2));
  checkb "2I not onto" false
    (Hnf.is_onto (Imat.of_rows [ [ 2; 0 ]; [ 0; 2 ] ]));
  checkb "[[1],[1]] (A[i+j]) onto Z" true
    (Hnf.is_onto (Imat.of_rows [ [ 1 ]; [ 1 ] ]));
  checkb "[[1],[1]] not 1-1" false
    (Hnf.is_one_to_one (Imat.of_rows [ [ 1 ]; [ 1 ] ]));
  checkb "example2 G 1-1" true (Hnf.is_one_to_one m_ex2)

let test_left_nullspace () =
  (* A[i,k] in a 3-nest: row j is zero -> nullspace contains e_j. *)
  let g = Imat.of_rows [ [ 1; 0 ]; [ 0; 0 ]; [ 0; 1 ] ] in
  (match Hnf.left_nullspace g with
  | None -> Alcotest.fail "has nullspace"
  | Some b ->
      check "one basis vector" 1 (Imat.rows b);
      Alcotest.(check (array int))
        "kills G" [| 0; 0 |]
        (Imat.mul_row (Imat.row b 0) g));
  checkb "full-rank rows -> None" true (Hnf.left_nullspace m_ex2 = None)

(* ------------------------------------------------------------------ *)
(* Smith normal form                                                   *)
(* ------------------------------------------------------------------ *)

let test_snf () =
  let g = Imat.of_rows [ [ 2; 4; 4 ]; [ -6; 6; 12 ]; [ 10; 4; 16 ] ] in
  let s, u, v = Snf.smith g in
  checkb "u unimodular" true (Imat.is_unimodular u);
  checkb "v unimodular" true (Imat.is_unimodular v);
  Alcotest.check imat "s = u*g*v" s (Imat.mul (Imat.mul u g) v);
  (* |det| = 624 = 2*2*156 with the divisibility chain 2 | 2 | 156. *)
  Alcotest.(check (list int)) "factors" [ 2; 2; 156 ] (Snf.invariant_factors g);
  check "product = |det|" 624
    (List.fold_left ( * ) 1 (Snf.invariant_factors g));
  (* Rank-deficient classic: [[1..3],[4..6],[7..9]] has factors 1, 3. *)
  Alcotest.(check (list int)) "singular matrix factors" [ 1; 3 ]
    (Snf.invariant_factors
       (Imat.of_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ] ]))

let test_snf_divisibility () =
  let g = Imat.of_rows [ [ 1; 1 ]; [ 1; -1 ] ] in
  (* det -2: factors 1, 2. *)
  Alcotest.(check (list int)) "factors of example2 G" [ 1; 2 ]
    (Snf.invariant_factors g);
  check "index" 2 (Snf.lattice_index g)

(* ------------------------------------------------------------------ *)
(* Polynomial matrices                                                 *)
(* ------------------------------------------------------------------ *)

let test_pmat_generic_det () =
  (* det of the generic 2x2: L11*L22 - L12*L21. *)
  let l = Pmat.generic 2 in
  let names = Pmat.entry_names 2 in
  Alcotest.(check string)
    "generic determinant" "-L12*L21 + L11*L22"
    (Mpoly.to_string ~names (Pmat.det l))

let test_pmat_eval_matches_qmat () =
  let l = Pmat.generic 2 in
  let env = Array.map Rat.of_int [| 3; 1; 4; 5 |] in
  let q = Pmat.eval l env in
  Alcotest.check rat "det agrees" (Qmat.det q) (Mpoly.eval (Pmat.det l) env)

let test_pmat_mul_replace () =
  let g = Imat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  let lg = Pmat.mul (Pmat.generic 2) (Pmat.of_imat g) in
  let names = Pmat.entry_names 2 in
  (* First row of LG: (L11 + L12, L12). *)
  Alcotest.(check string)
    "LG entry" "L12 + L11"
    (Mpoly.to_string ~names (Pmat.get lg 0 0));
  let replaced =
    Pmat.replace_row lg 0 [| Mpoly.const_int 1; Mpoly.const_int 3 |]
  in
  Alcotest.(check string)
    "replaced det" "-2*L22 - 3*L21"
    (Mpoly.to_string ~names (Pmat.det replaced))

let prop_pmat_det_matches_numeric =
  QCheck2.Test.make ~name:"Pmat.det = Qmat.det after eval" ~count:200
    QCheck2.Gen.(
      array_size (return 9) (int_range (-4) 4))
    (fun entries ->
      let l = Pmat.generic 3 in
      let env = Array.map Rat.of_int entries in
      Rat.equal
        (Mpoly.eval (Pmat.det l) env)
        (Qmat.det (Pmat.eval l env)))

(* ------------------------------------------------------------------ *)
(* Bounded lattices (Theorem 3 / Lemma 3)                              *)
(* ------------------------------------------------------------------ *)

let test_lattice_count_points () =
  let l = Lattice.make (Imat.identity 2) [| 2; 3 |] in
  check "count" 12 (Lattice.count l);
  check "points" 12 (List.length (Lattice.points l))

let test_theorem3 () =
  (* Lattice over Example 2's G with bounds (3, 2). *)
  let l = Lattice.make m_ex2 [| 3; 2 |] in
  (* t = 2*g1 + 1*g2 = (3,1): intersects. *)
  checkb "inside" true (Lattice.intersects_translate l [| 3; 1 |]);
  (* t = 4*g1 = (4,4): u1=4 > bound 3: disjoint. *)
  checkb "out of bounds" false (Lattice.intersects_translate l [| 4; 4 |]);
  (* t not in the lattice at all. *)
  checkb "off lattice" false (Lattice.intersects_translate l [| 1; 0 |])

let test_lemma3_exact_vs_brute () =
  let l = Lattice.make m_ex2 [| 3; 2 |] in
  let t = [| 3; 1 |] in
  let pts = Lattice.points l in
  let union_brute =
    let tbl = Hashtbl.create 64 in
    List.iter (fun p -> Hashtbl.replace tbl (Array.to_list p) ()) pts;
    List.iter
      (fun p -> Hashtbl.replace tbl (Array.to_list (Ivec.add p t)) ())
      pts;
    Hashtbl.length tbl
  in
  check "exact union matches brute force" union_brute
    (Lattice.union_size_translate l t)

let test_lemma3_disjoint () =
  let l = Lattice.make (Imat.identity 2) [| 2; 2 |] in
  check "disjoint doubles" 18 (Lattice.union_size_translate l [| 5; 0 |])

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_mat n =
  QCheck2.Gen.(
    map
      (fun entries -> Imat.make n n (fun i j -> List.nth entries ((i * n) + j)))
      (list_size (return (n * n)) (int_range (-4) 4)))

let prop_det_transpose =
  QCheck2.Test.make ~name:"det(A) = det(A^t)" ~count:300 (gen_mat 3) (fun m ->
      Imat.det m = Imat.det (Imat.transpose m))

let prop_det_multiplicative =
  QCheck2.Test.make ~name:"det(AB) = det(A)det(B)" ~count:300
    QCheck2.Gen.(pair (gen_mat 3) (gen_mat 3))
    (fun (a, b) -> Imat.det (Imat.mul a b) = Imat.det a * Imat.det b)

let prop_det_qmat_agrees =
  QCheck2.Test.make ~name:"Bareiss det = rational det" ~count:300 (gen_mat 3)
    (fun m -> Rat.equal (Rat.of_int (Imat.det m)) (Qmat.det (Qmat.of_imat m)))

let prop_hnf_invariants =
  QCheck2.Test.make ~name:"HNF: h = u g, u unimodular" ~count:300 (gen_mat 3)
    (fun g ->
      let h, u = Hnf.row_hnf g in
      Imat.is_unimodular u && Imat.equal h (Imat.mul u g))

let prop_hnf_rank_preserved =
  QCheck2.Test.make ~name:"HNF preserves rank" ~count:300 (gen_mat 3) (fun g ->
      let h, _ = Hnf.row_hnf g in
      Imat.rank h = Imat.rank g)

let prop_solve_left_int_sound =
  QCheck2.Test.make ~name:"solve_left_int returns a real solution" ~count:300
    QCheck2.Gen.(pair (gen_mat 2) (pair (int_range (-6) 6) (int_range (-6) 6)))
    (fun (g, (x0, x1)) ->
      (* Build a solvable rhs, then check the solver's answer. *)
      let b = Imat.mul_row [| x0; x1 |] g in
      match Hnf.solve_left_int g b with
      | None -> false
      | Some x -> Ivec.equal (Imat.mul_row x g) b)

let prop_hnf_preserves_lattice =
  QCheck2.Test.make ~name:"HNF preserves the row lattice" ~count:300
    (gen_mat 3) (fun g ->
      let h, _ = Hnf.row_hnf g in
      (* Mutual containment: every row of H lies in the lattice spanned
         by the rows of G, and vice versa - the two lattices coincide. *)
      let rows_in a b =
        let ok = ref true in
        for i = 0 to Imat.rows a - 1 do
          if not (Hnf.mem_row_lattice b (Imat.row a i)) then ok := false
        done;
        !ok
      in
      rows_in h g && rows_in g h)

let prop_hnf_preserves_det =
  QCheck2.Test.make ~name:"HNF preserves |det|" ~count:300 (gen_mat 3)
    (fun g ->
      let h, _ = Hnf.row_hnf g in
      abs (Imat.det h) = abs (Imat.det g))

let prop_snf_preserves_det =
  QCheck2.Test.make ~name:"SNF invariant factors multiply to |det|" ~count:200
    (gen_mat 3) (fun a ->
      let factors = Snf.invariant_factors a in
      if Imat.rank a < 3 then
        (* Rank-deficient: det is 0 and the factor list is short. *)
        Imat.det a = 0 && List.length factors = Imat.rank a
      else List.fold_left ( * ) 1 factors = abs (Imat.det a))

let prop_snf_preserves_lattice =
  QCheck2.Test.make ~name:"SNF row ops preserve the row lattice" ~count:200
    (gen_mat 3) (fun a ->
      (* S = U A V with U, V unimodular: U A spans the same row lattice
         as A (left-multiplication by a unimodular matrix is a change of
         basis for the rows). *)
      let _, u, _ = Snf.smith a in
      let ua = Imat.mul u a in
      let rows_in x y =
        let ok = ref true in
        for i = 0 to Imat.rows x - 1 do
          if not (Hnf.mem_row_lattice y (Imat.row x i)) then ok := false
        done;
        !ok
      in
      rows_in ua a && rows_in a ua)

let prop_snf_invariants =
  QCheck2.Test.make ~name:"SNF: s = u a v, diagonal, divisibility" ~count:200
    (gen_mat 3) (fun a ->
      let s, u, v = Snf.smith a in
      Imat.is_unimodular u && Imat.is_unimodular v
      && Imat.equal s (Imat.mul (Imat.mul u a) v)
      &&
      let n = 3 in
      let diag_ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && Imat.get s i j <> 0 then diag_ok := false
        done
      done;
      let chain_ok = ref true in
      for i = 0 to n - 2 do
        let x = Imat.get s i i and y = Imat.get s (i + 1) (i + 1) in
        if x < 0 || y < 0 then chain_ok := false;
        if x <> 0 && y mod x <> 0 then chain_ok := false;
        if x = 0 && y <> 0 then chain_ok := false
      done;
      !diag_ok && !chain_ok)

let gen_nonsing_2 =
  QCheck2.Gen.(
    map
      (fun (a, b, c, d) ->
        let m = Imat.of_rows [ [ a; b ]; [ c; d ] ] in
        if Imat.det m = 0 then Imat.of_rows [ [ a + 1; b ]; [ c; d + 1 ] ]
        else m)
      (quad (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3)
         (int_range (-3) 3)))

let gen_nonsing_2 =
  QCheck2.Gen.(
    gen_nonsing_2 >>= fun m ->
    if Imat.det m = 0 then return (Imat.identity 2) else return m)

let prop_lemma3_union =
  QCheck2.Test.make ~name:"Lemma 3 exact union = brute force" ~count:200
    QCheck2.Gen.(
      triple gen_nonsing_2
        (pair (int_range 0 4) (int_range 0 4))
        (pair (int_range (-5) 5) (int_range (-5) 5)))
    (fun (g, (l0, l1), (t0, t1)) ->
      let l = Lattice.make g [| l0; l1 |] in
      let t = [| t0; t1 |] in
      let pts = Lattice.points l in
      let tbl = Hashtbl.create 64 in
      List.iter (fun p -> Hashtbl.replace tbl (Array.to_list p) ()) pts;
      List.iter
        (fun p -> Hashtbl.replace tbl (Array.to_list (Ivec.add p t)) ())
        pts;
      Hashtbl.length tbl = Lattice.union_size_translate l t)

let prop_theorem3_brute =
  QCheck2.Test.make ~name:"Theorem 3 intersection = brute force" ~count:200
    QCheck2.Gen.(
      triple gen_nonsing_2
        (pair (int_range 0 4) (int_range 0 4))
        (pair (int_range (-5) 5) (int_range (-5) 5)))
    (fun (g, (l0, l1), (t0, t1)) ->
      let l = Lattice.make g [| l0; l1 |] in
      let t = [| t0; t1 |] in
      let pts = Lattice.points l in
      let tbl = Hashtbl.create 64 in
      List.iter (fun p -> Hashtbl.replace tbl (Array.to_list p) ()) pts;
      let brute =
        List.exists
          (fun p -> Hashtbl.mem tbl (Array.to_list (Ivec.add p t)))
          pts
      in
      brute = Lattice.intersects_translate l t)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_det_transpose;
      prop_det_multiplicative;
      prop_det_qmat_agrees;
      prop_hnf_invariants;
      prop_hnf_rank_preserved;
      prop_hnf_preserves_lattice;
      prop_hnf_preserves_det;
      prop_solve_left_int_sound;
      prop_snf_invariants;
      prop_snf_preserves_det;
      prop_snf_preserves_lattice;
      prop_lemma3_union;
      prop_theorem3_brute;
      prop_pmat_det_matches_numeric;
    ]

let () =
  Alcotest.run "matrixkit"
    [
      ( "imat",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "determinant" `Quick test_det;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "unimodularity" `Quick test_unimodular;
          Alcotest.test_case "replace_row" `Quick test_replace_row;
          Alcotest.test_case "independent cols" `Quick test_independent_cols;
          Alcotest.test_case "gcd of minors" `Quick test_gcd_minors;
          Alcotest.test_case "zero columns" `Quick test_zero_cols;
        ] );
      ( "qmat",
        [
          Alcotest.test_case "inverse" `Quick test_qmat_inv;
          Alcotest.test_case "determinant" `Quick test_qmat_det;
          Alcotest.test_case "solve_left" `Quick test_solve_left;
        ] );
      ( "hnf",
        [
          Alcotest.test_case "shape" `Quick test_hnf_shape;
          Alcotest.test_case "integer solve" `Quick test_solve_left_int;
          Alcotest.test_case "onto / one-to-one" `Quick test_onto_one_to_one;
          Alcotest.test_case "left nullspace" `Quick test_left_nullspace;
        ] );
      ( "snf",
        [
          Alcotest.test_case "classic example" `Quick test_snf;
          Alcotest.test_case "divisibility" `Quick test_snf_divisibility;
        ] );
      ( "pmat",
        [
          Alcotest.test_case "generic determinant" `Quick
            test_pmat_generic_det;
          Alcotest.test_case "eval agrees with Qmat" `Quick
            test_pmat_eval_matches_qmat;
          Alcotest.test_case "mul and replace_row" `Quick
            test_pmat_mul_replace;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "count/points" `Quick test_lattice_count_points;
          Alcotest.test_case "theorem 3" `Quick test_theorem3;
          Alcotest.test_case "lemma 3 vs brute" `Quick test_lemma3_exact_vs_brute;
          Alcotest.test_case "lemma 3 disjoint" `Quick test_lemma3_disjoint;
        ] );
      ("properties", props);
    ]
