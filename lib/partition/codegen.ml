open Intmath
open Matrixkit
open Loopir

type schedule = {
  nest : Nest.t;
  tile : Tile.t;
  nprocs : int;
  origin : Ivec.t;
}

let make nest tile ~nprocs =
  if nprocs < 1 then invalid_arg "Codegen.make: nprocs < 1";
  if Tile.nesting tile <> Nest.nesting nest then
    invalid_arg "Codegen.make: tile/nest dimension mismatch";
  let origin = Array.map fst (Nest.bounds nest) in
  { nest; tile; nprocs; origin }

let tile_id s (i : Ivec.t) = Tile.tile_coords s.tile (Ivec.sub i s.origin)

(* Bounding box of tile coordinates, derived from the iteration-space
   corners: tile coordinates are the floor of a linear map, so corner
   coordinates bound all others. *)
let coord_box s =
  let bounds = Nest.bounds s.nest in
  let n = Array.length bounds in
  let rec corners k acc =
    if k = n then [ Array.of_list (List.rev acc) ]
    else
      let lo, hi = bounds.(k) in
      corners (k + 1) (lo :: acc) @ corners (k + 1) (hi :: acc)
  in
  let lo = Array.make n max_int and hi = Array.make n min_int in
  List.iter
    (fun c ->
      let t = tile_id s c in
      Array.iteri
        (fun k v ->
          if v < lo.(k) then lo.(k) <- v;
          if v > hi.(k) then hi.(k) <- v)
        t)
    (corners 0 []);
  (lo, hi)

let linearize s =
  let lo, hi = coord_box s in
  let radix = Array.mapi (fun k h -> h - lo.(k) + 1) hi in
  fun coords ->
    let acc = ref 0 in
    Array.iteri
      (fun k c -> acc := (!acc * radix.(k)) + (c - lo.(k)))
      coords;
    !acc

(* Partial application [owner s] precomputes the coordinate box; reuse the
   closure when classifying many iterations. *)
let owner s =
  let lin = linearize s in
  fun i ->
    let t = lin (tile_id s i) mod s.nprocs in
    if t < 0 then t + s.nprocs else t

let num_tiles s =
  match s.tile with
  | Tile.Rect sizes ->
      let extents = Nest.extents s.nest in
      Array.to_list extents
      |> List.mapi (fun k n -> Int_math.ceil_div n sizes.(k))
      |> Int_math.prod
  | Tile.Pped _ ->
      let seen = Hashtbl.create 97 in
      let bounds = Nest.bounds s.nest in
      let n = Array.length bounds in
      let point = Array.make n 0 in
      let rec scan k =
        if k = n then
          Hashtbl.replace seen (Array.to_list (tile_id s point)) ()
        else
          let lo, hi = bounds.(k) in
          for v = lo to hi do
            point.(k) <- v;
            scan (k + 1)
          done
      in
      scan 0;
      Hashtbl.length seen

let iterations_by_proc s =
  let out = Array.make s.nprocs [] in
  let own = owner s in
  let bounds = Nest.bounds s.nest in
  let n = Array.length bounds in
  let point = Array.make n 0 in
  let rec scan k =
    if k = n then begin
      let p = own point in
      out.(p) <- Array.copy point :: out.(p)
    end
    else
      let lo, hi = bounds.(k) in
      for v = lo to hi do
        point.(k) <- v;
        scan (k + 1)
      done
  in
  scan 0;
  Array.map List.rev out

let rect_tile_ranges s =
  match s.tile with
  | Tile.Pped _ -> invalid_arg "Codegen.rect_tile_ranges: not rectangular"
  | Tile.Rect sizes ->
      let bounds = Nest.bounds s.nest in
      let n = Array.length bounds in
      let counts =
        Array.mapi
          (fun k (lo, hi) -> Int_math.ceil_div (hi - lo + 1) sizes.(k))
          bounds
      in
      let rec go k acc =
        if k = n then [ Array.of_list (List.rev acc) ]
        else
          List.concat_map
            (fun t ->
              let lo, hi = bounds.(k) in
              let tlo = lo + (t * sizes.(k)) in
              let thi = min hi (tlo + sizes.(k) - 1) in
              go (k + 1) ((tlo, thi) :: acc))
            (List.init counts.(k) Fun.id)
      in
      go 0 []

let emit_pseudocode s =
  let buf = Buffer.create 256 in
  let vars = Nest.vars s.nest in
  (match s.tile with
  | Tile.Rect sizes ->
      Buffer.add_string buf
        (Printf.sprintf "// SPMD code for %d processors, tile %s\n" s.nprocs
           (Tile.to_string s.tile));
      Buffer.add_string buf "my_tiles = tiles t with linear(t) mod P == me\n";
      Buffer.add_string buf "for t in my_tiles:\n";
      Array.iteri
        (fun k v ->
          Buffer.add_string buf
            (Printf.sprintf "%sfor %s = t%d*%d + %d to min(t%d*%d + %d, %d):\n"
               (String.make (2 * (k + 1)) ' ')
               v k sizes.(k) s.origin.(k) k sizes.(k)
               (s.origin.(k) + sizes.(k) - 1)
               (snd (Nest.bounds s.nest).(k))))
        vars;
      Buffer.add_string buf
        (String.make (2 * (Array.length vars + 1)) ' ' ^ "body\n")
  | Tile.Pped l ->
      Buffer.add_string buf
        (Printf.sprintf
           "// SPMD code for %d processors, parallelepiped tile\n" s.nprocs);
      Buffer.add_string buf (Imat.to_string l);
      Buffer.add_string buf
        "\nfor i in space: if owner(i) == me: body  // via floor(i L^-1)\n");
  Buffer.contents buf

let load_balance s =
  let per = Array.map List.length (iterations_by_proc s) in
  let mn = Array.fold_left min max_int per in
  let mx = Array.fold_left max 0 per in
  let total = Array.fold_left ( + ) 0 per in
  (* More processors than iterations leaves some with nothing; the ratio
     max/average is still well-defined (average > 0 whenever any
     iteration exists), but guard the degenerate empty case so callers
     never see NaN. *)
  let imbalance =
    if total = 0 then 1.0
    else float_of_int mx /. (float_of_int total /. float_of_int s.nprocs)
  in
  (mn, mx, imbalance)
