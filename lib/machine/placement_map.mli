(** The Placement phase (Section 4): mapping virtual processors (tiles of
    the processor grid) onto the physical mesh so that communicating
    neighbours land close together.

    Loop partitioning and data alignment assign work and data to
    {e virtual} processors arranged in the tile grid; this module chooses
    the virtual-to-physical permutation.  Communication in a partitioned
    doall flows between grid neighbours (the footprint strips), so the
    quality metric is the total mesh hop distance between grid-adjacent
    virtual processors.  As the paper notes this is a second-order
    effect; the experiments quantify exactly how second-order. *)

type strategy =
  | Linear  (** row-major linearization of the grid (the naive default) *)
  | Snake  (** boustrophedon order over the grid: reverses odd rows to
               keep neighbours adjacent across row boundaries *)
  | Folded
      (** snake applied to the two leading grid dimensions, matching a
          2-D mesh's geometry *)
  | Serpentine
      (** virtual index order laid along a boustrophedon walk of the
          physical mesh - consecutive virtual processors are always mesh
          neighbours (ideal for chain-shaped grids) *)
  | Shuffled of int  (** deterministic pseudo-random permutation (seed) *)

val permutation : strategy -> grid:int array -> mesh:Mesh.t -> int array
(** [permutation s ~grid ~mesh] maps virtual processor index (row-major
    over the grid) to physical processor index; always a bijection on
    [0 .. prod grid - 1]. *)

val neighbor_hop_cost : grid:int array -> mesh:Mesh.t -> int array -> int
(** Total mesh distance between physical images of grid-adjacent virtual
    processors (each unordered pair counted once). *)

val best : grid:int array -> mesh:Mesh.t -> strategy * int array * int
(** The strategy with the lowest neighbour-hop cost among the built-in
    ones (shuffled uses a fixed seed), with its permutation and cost.
    Linear wins when the grid already matches the mesh; serpentine wins
    for chains; shuffled never wins - which is the point. *)

val pp_strategy : Format.formatter -> strategy -> unit
