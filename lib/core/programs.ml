open Loopir
open Dsl

(* [open Dsl] rebinds (+)/(-)/( * ) to expression builders; use these for
   plain integer bounds. *)
let ( +! ) = Stdlib.( + )
let ( -! ) = Stdlib.( - )

let example2 ?(n = 100) () =
  let i = var 0 and j = var 1 in
  nest ~name:"example2"
    [ doall "i" 101 (100 +! n); doall "j" 1 n ]
    [
      write "A" [ i; j ];
      read "B" [ i + j; i - j - int 1 ];
      read "B" [ i + j + int 4; i - j + int 3 ];
    ]

let example3 ?(n = 100) () =
  let i = var 0 and j = var 1 in
  nest ~name:"example3"
    [ doall "i" 1 n; doall "j" 1 n ]
    [ write "A" [ i; j ]; read "B" [ i; j ]; read "B" [ i + int 1; j + int 3 ] ]

let example6 ?(n = 100) () =
  let i = var 0 and j = var 1 in
  nest ~name:"example6"
    [ doall "i" 0 (n -! 1); doall "j" 0 (n -! 1) ]
    [
      write "A" [ i; j ];
      read "B" [ i + j; j ];
      read "B" [ i + j + int 1; j + int 2 ];
    ]

let example8_body i j k =
  [
    write "A" [ i; j; k ];
    read "B" [ i - int 1; j; k + int 1 ];
    read "B" [ i; j + int 1; k ];
    read "B" [ i + int 1; j - int 2; k - int 3 ];
  ]

let example8 ?(n = 32) () =
  let i = var 0 and j = var 1 and k = var 2 in
  nest ~name:"example8"
    [ doall "i" 1 n; doall "j" 1 n; doall "k" 1 n ]
    (example8_body i j k)

let example8_seq ?(n = 32) ?(steps = 4) () =
  let i = var 0 and j = var 1 and k = var 2 in
  nest ~name:"example8_seq" ~seq:(doseq "t" 1 steps)
    [ doall "i" 1 n; doall "j" 1 n; doall "k" 1 n ]
    (example8_body i j k)

let example9 ?(n = 60) () =
  let i = var 0 and j = var 1 in
  nest ~name:"example9"
    [ doall "i" 1 n; doall "j" 1 n ]
    [
      write "A" [ i; j ];
      read "B" [ i - int 2; j ];
      read "B" [ i; j - int 1 ];
      read "C" [ i + j; j ];
      read "C" [ i + j + int 1; j + int 3 ];
    ]

let example10 ?(n = 60) () =
  let i = var 0 and j = var 1 in
  nest ~name:"example10"
    [ doall "i" 1 n; doall "j" 1 n ]
    [
      write "A" [ i; j ];
      read "B" [ i + j; i - j ];
      read "B" [ i + j + int 4; i - j + int 2 ];
      read "C" [ i; 2 * i; i + (2 * j) - int 1 ];
      read "C" [ i + int 1; (2 * i) + int 2; i + (2 * j) + int 1 ];
      read "C" [ i; 2 * i; i + (2 * j) + int 1 ];
    ]

let matmul ?(n = 24) () =
  let i = var 0 and j = var 1 and k = var 2 in
  nest ~name:"matmul"
    [ doall "i" 1 n; doall "j" 1 n; doall "k" 1 n ]
    [
      accumulate "C" [ i; j ];
      read "A" [ i; k ];
      read "B" [ k; j ];
    ]

let stencil5 ?(n = 64) ?(steps = 4) () =
  let i = var 0 and j = var 1 in
  nest ~name:"stencil5" ~seq:(doseq "t" 1 steps)
    [ doall "i" 1 n; doall "j" 1 n ]
    [
      write "A" [ i; j ];
      read "B" [ i; j ];
      read "B" [ i - int 1; j ];
      read "B" [ i + int 1; j ];
      read "B" [ i; j - int 1 ];
      read "B" [ i; j + int 1 ];
    ]

let stencil27 ?(n = 16) ?(steps = 2) () =
  let i = var 0 and j = var 1 and k = var 2 in
  let reads =
    List.concat_map
      (fun di ->
        List.concat_map
          (fun dj ->
            List.map
              (fun dk -> read "B" [ i + int di; j + int dj; k + int dk ])
              [ -1; 0; 1 ])
          [ -1; 0; 1 ])
      [ -1; 0; 1 ]
  in
  nest ~name:"stencil27" ~seq:(doseq "t" 1 steps)
    [ doall "i" 1 n; doall "j" 1 n; doall "k" 1 n ]
    (write "A" [ i; j; k ] :: reads)

let example8_inplace ?(n = 24) ?(steps = 4) () =
  let i = var 0 and j = var 1 and k = var 2 in
  nest ~name:"example8_inplace" ~seq:(doseq "t" 1 steps)
    [ doall "i" 4 n; doall "j" 4 n; doall "k" 4 n ]
    [
      write "A" [ i; j; k ];
      read "A" [ i - int 1; j; k + int 1 ];
      read "A" [ i; j + int 1; k ];
      read "A" [ i + int 1; j - int 2; k - int 3 ];
    ]

let relax_inplace ?(n = 64) ?(steps = 4) () =
  let i = var 0 and j = var 1 in
  nest ~name:"relax_inplace" ~seq:(doseq "t" 1 steps)
    [ doall "i" 2 n; doall "j" 2 n ]
    [
      write "A" [ i; j ];
      read "A" [ i - int 1; j ];
      read "A" [ i + int 1; j ];
      read "A" [ i; j - int 1 ];
      read "A" [ i; j + int 1 ];
    ]

let conv3x3 ?(n = 62) () =
  let i = var 0 and j = var 1 in
  let reads =
    List.concat_map
      (fun di ->
        List.map (fun dj -> read "B" [ i + int di; j + int dj ]) [ -1; 0; 1 ])
      [ -1; 0; 1 ]
  in
  nest ~name:"conv3x3"
    [ doall "i" 1 n; doall "j" 1 n ]
    (write "A" [ i; j ] :: reads)

let diag_accumulate ?(n = 40) () =
  let i = var 0 and j = var 1 in
  nest ~name:"diag_accumulate"
    [ doall "i" 1 n; doall "j" 1 n ]
    [ accumulate "H" [ i + j ]; read "X" [ i; j ] ]

let transpose_like ?(n = 48) () =
  let i = var 0 and j = var 1 in
  nest ~name:"transpose_like"
    [ doall "i" 1 n; doall "j" 1 n ]
    [ write "A" [ i; j ]; read "B" [ j; i ]; read "B" [ j + int 1; i ] ]

let all =
  [
    ("example2", example2 ());
    ("example3", example3 ());
    ("example6", example6 ());
    ("example8", example8 ());
    ("example8_seq", example8_seq ());
    ("example9", example9 ());
    ("example10", example10 ());
    ("example8_inplace", example8_inplace ());
    ("relax_inplace", relax_inplace ());
    ("matmul", matmul ());
    ("stencil5", stencil5 ());
    ("stencil27", stencil27 ());
    ("conv3x3", conv3x3 ());
    ("diag_accumulate", diag_accumulate ());
    ("transpose_like", transpose_like ());
  ]

let find name = List.assoc_opt name all
