(** Array references appearing in a loop body.

    A reference couples an array name, an access kind and an affine index
    function.  [Accumulate] models the paper's Appendix A "l$" atomic
    accumulates: reads-modify-writes that the coherence protocol treats as
    writes, with a slightly higher communication cost. *)

type kind = Read | Write | Accumulate

type t = { array_name : string; kind : kind; index : Affine.t }

val read : string -> Affine.t -> t
val write : string -> Affine.t -> t
val accumulate : string -> Affine.t -> t

val is_write_like : t -> bool
(** [Write] and [Accumulate] both invalidate cached copies. *)

val kind_to_string : kind -> string
val equal : t -> t -> bool
val pp : vars:string array -> Format.formatter -> t -> unit
