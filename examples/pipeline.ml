(* The full compiler pipeline of Figure 10, end to end, starting from
   surface syntax (standing in for Mul-T / Semi-C):

     source -> parse -> classify (WAIF-CG analysis) -> loop partitioning
            -> data partitioning & alignment -> placement -> codegen
            -> (simulated) machine -> execution-time estimate

   Run:  dune exec examples/pipeline.exe *)

let source =
  "# red-black-free in-place relaxation, strided to touch odd points\n\
   doseq t = 1 to 3\n\
   doall i = 2 to 64\n\
   doall j = 2 to 64\n\
   A[i,j] = A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1]\n"

let nprocs = 16

let () =
  (* Front end. *)
  let nest = Loopir.Parse.nest_of_string ~name:"pipeline" source in
  Format.printf "--- parsed program ---@.%a@." Loopir.Nest.pp nest;

  (* Analysis + loop partitioning. *)
  let a = Loopart.Driver.analyze ~nprocs nest in
  let tile = a.Loopart.Driver.rect.Partition.Rectangular.tile in
  Format.printf "--- loop partitioning ---@.%a@.@."
    Partition.Rectangular.pp_result a.Loopart.Driver.rect;

  (* Data partitioning & alignment (Section 4 middle phase). *)
  let sched = Loopart.Driver.schedule a in
  let placement = Partition.Data_partition.aligned sched a.Loopart.Driver.cost in
  Format.printf "--- data partitioning ---@.%s@."
    placement.Partition.Data_partition.description;
  Format.printf "data ratio (footnote 2, a+): (%s)@.@."
    (String.concat ", "
       (List.map (Printf.sprintf "%.1f")
          (Array.to_list
             (Partition.Data_partition.optimal_data_ratio
                a.Loopart.Driver.cost ~nprocs))));

  (* Placement (Section 4 last phase). *)
  let mesh = Machine.Mesh.mesh ~nprocs in
  let grid = a.Loopart.Driver.rect.Partition.Rectangular.grid in
  let strategy, _, hops = Machine.Placement_map.best ~grid ~mesh in
  Format.printf "--- placement ---@.grid %s on %a: %a mapping, %d \
                 neighbour hops@.@."
    (String.concat "x" (List.map string_of_int (Array.to_list grid)))
    Machine.Mesh.pp mesh Machine.Placement_map.pp_strategy strategy hops;

  (* Code generation. *)
  Format.printf "--- generated SPMD structure ---@.%s@."
    (Partition.Codegen.emit_pseudocode sched);

  (* Machine run + timing. *)
  let r =
    Machine.Sim.run sched
      {
        Machine.Sim.default with
        Machine.Sim.topology = Machine.Sim.Mesh2d;
        placement = Some placement;
      }
  in
  Format.printf "--- simulated machine (%s) ---@.%a@.@."
    (Partition.Tile.to_string tile) Machine.Sim.pp_result r;
  Format.printf "estimated cycles/processor: %.0f@."
    (Machine.Timing.cycles r.Machine.Sim.stats ~nprocs
       Machine.Timing.alewife_like)
