(** Tile-space code generation: turning a chosen tile into the
    per-processor iteration sets the Alewife compiler would emit loops for
    (Section 4, "Loop Partitioning" + code generation).

    A {!schedule} fixes the nest, the tile at the origin and the processor
    count, and provides the owner map from iterations to processors.  Tiles
    are anchored at the iteration-space lower bounds and numbered
    deterministically; tile [t] runs on processor [t mod nprocs] (for
    rectangular tiles with a processor grid this is the usual wrapped
    block distribution). *)

open Matrixkit
open Loopir

type schedule = private {
  nest : Nest.t;
  tile : Tile.t;
  nprocs : int;
  origin : Ivec.t;  (** iteration-space lower bounds *)
}

val make : Nest.t -> Tile.t -> nprocs:int -> schedule

val tile_id : schedule -> Ivec.t -> int array
(** Tile coordinates of an iteration (relative to the origin). *)

val owner : schedule -> Ivec.t -> int
(** Processor that executes the iteration. *)

val num_tiles : schedule -> int
(** Number of distinct tiles covering the iteration space (exact for
    rectangular tiles; computed by scanning otherwise). *)

val iterations_by_proc : schedule -> Ivec.t list array
(** All iterations grouped by executing processor, each list in
    lexicographic order.  Enumerates the full space - intended for the
    simulator and for spaces up to a few million points. *)

val rect_tile_ranges : schedule -> (int * int) array list
(** For rectangular tiles: the inclusive per-dimension bounds of every
    tile, clipped to the iteration space (the loop bounds the code
    generator would emit).  Raises [Invalid_argument] for [Pped]. *)

val emit_pseudocode : schedule -> string
(** A human-readable rendition of the generated SPMD loop nest. *)

val load_balance : schedule -> int * int * float
(** [(min, max, imbalance)] iterations per processor, where imbalance is
    [max /. average].  Never NaN: the degenerate no-iterations case
    reports [1.0], and a processor count above the trip count simply
    yields [min = 0] with the true ratio. *)
