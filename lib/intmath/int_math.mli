(** Exact integer arithmetic helpers used throughout the partitioning
    framework.  All functions operate on OCaml's native 63-bit [int]; the
    multiplication helpers raise {!Overflow} instead of wrapping silently,
    which keeps determinant and footprint computations exact. *)

exception Overflow

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Least common multiple, non-negative.  Raises {!Overflow} if the result
    does not fit in an [int]. *)

val egcd : int -> int -> int * int * int
(** [egcd a b] is [(g, x, y)] with [g = gcd a b] and [a*x + b*y = g]. *)

val gcd_list : int list -> int
(** Gcd of a list, 0 for the empty list. *)

val mul_exact : int -> int -> int
(** Overflow-checked multiplication. *)

val add_exact : int -> int -> int
(** Overflow-checked addition. *)

val ipow : int -> int -> int
(** [ipow b e] is [b]{^ [e]} for [e >= 0], overflow-checked. *)

val floor_div : int -> int -> int
(** Floor division (rounds toward negative infinity); [b <> 0]. *)

val ceil_div : int -> int -> int
(** Ceiling division (rounds toward positive infinity); [b <> 0]. *)

val floor_mod : int -> int -> int
(** [floor_mod a b] is [a - b * floor_div a b]; has the sign of [b]. *)

val isqrt : int -> int
(** Integer square root: greatest [r] with [r*r <= n].  [n >= 0]. *)

val iroot : int -> int -> int
(** [iroot k n] is the greatest [r >= 0] with [r]{^ [k]}[ <= n];
    [k >= 1], [n >= 0]. *)

val divisors : int -> int list
(** Positive divisors of [n > 0], in increasing order. *)

val factorizations : int -> int -> int list list
(** [factorizations k n] lists all ordered [k]-tuples of positive integers
    whose product is [n] ([n > 0], [k >= 1]).  Used to enumerate feasible
    processor grids. *)

val sum : int list -> int
val prod : int list -> int
(** Overflow-checked sum / product of a list (empty list: 0 / 1). *)
