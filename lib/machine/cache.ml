type geometry = Infinite | Finite of { sets : int; ways : int }

type state = Shared | Modified

(* Finite caches keep, per set, an LRU-ordered association list (most
   recent first).  Sets are small (ways <= 16 in practice), so lists are
   fine. *)
type t = {
  geometry : geometry;
  lines : (int, state) Hashtbl.t;  (* used when infinite *)
  sets : (int * state) list array;  (* used when finite *)
}

let create geometry =
  match geometry with
  | Infinite ->
      { geometry; lines = Hashtbl.create 4096; sets = Array.make 1 [] }
  | Finite { sets; ways } ->
      if sets < 1 || ways < 1 then
        invalid_arg "Cache.create: sets and ways must be positive";
      { geometry; lines = Hashtbl.create 1; sets = Array.make sets [] }

let set_index t addr =
  match t.geometry with
  | Infinite -> 0
  | Finite { sets; _ } -> addr mod sets

let lookup t addr =
  match t.geometry with
  | Infinite -> Hashtbl.find_opt t.lines addr
  | Finite _ -> List.assoc_opt addr t.sets.(set_index t addr)

let touch_lru t addr =
  match t.geometry with
  | Infinite -> ()
  | Finite _ ->
      let s = set_index t addr in
      match List.assoc_opt addr t.sets.(s) with
      | None -> ()
      | Some st ->
          t.sets.(s) <-
            (addr, st) :: List.remove_assoc addr t.sets.(s)

let insert t addr state =
  match t.geometry with
  | Infinite ->
      Hashtbl.replace t.lines addr state;
      None
  | Finite { ways; _ } ->
      let s = set_index t addr in
      let without = List.remove_assoc addr t.sets.(s) in
      if List.length without < ways then begin
        t.sets.(s) <- (addr, state) :: without;
        None
      end
      else begin
        (* Evict the least recently used line. *)
        let rec split_last acc = function
          | [] -> assert false
          | [ (a, _) ] -> (List.rev acc, a)
          | x :: rest -> split_last (x :: acc) rest
        in
        let kept, victim = split_last [] without in
        t.sets.(s) <- (addr, state) :: kept;
        Some victim
      end

let set_state t addr state =
  match t.geometry with
  | Infinite ->
      if Hashtbl.mem t.lines addr then Hashtbl.replace t.lines addr state
  | Finite _ ->
      let s = set_index t addr in
      if List.mem_assoc addr t.sets.(s) then
        t.sets.(s) <-
          List.map
            (fun (a, st) -> if a = addr then (a, state) else (a, st))
            t.sets.(s)

let invalidate t addr =
  match t.geometry with
  | Infinite -> Hashtbl.remove t.lines addr
  | Finite _ ->
      let s = set_index t addr in
      t.sets.(s) <- List.remove_assoc addr t.sets.(s)

let resident t addr = Option.is_some (lookup t addr)

let occupancy t =
  match t.geometry with
  | Infinite -> Hashtbl.length t.lines
  | Finite _ -> Array.fold_left (fun acc l -> acc + List.length l) 0 t.sets

(* touch_lru is part of lookup's contract for finite caches: callers that
   count a hit should refresh recency. *)
let lookup t addr =
  let r = lookup t addr in
  if r <> None then touch_lru t addr;
  r
