type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed =
  let t = { state = Int64.of_int seed } in
  (* Burn a couple of outputs so small adjacent seeds decorrelate. *)
  ignore (next t);
  ignore (next t);
  t

let case ~seed ~id =
  let t =
    {
      state =
        Int64.logxor
          (Int64.mul (Int64.of_int (id + 1)) 0x632BE59BD9B4E019L)
          (Int64.of_int seed);
    }
  in
  ignore (next t);
  ignore (next t);
  t

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  Int64.to_int
    (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L
let chance t ~pct = int t 100 < pct
let choose t a = a.(int t (Array.length a))
