(** Dense integer matrices.

    Values are immutable from the outside: every operation returns a fresh
    matrix.  Conventions follow the paper: vectors are rows, a reference
    matrix [G] is [l x d] (loop nesting by array dimension), and tiles act
    on the left ([LG]). *)

type t

val make : int -> int -> (int -> int -> int) -> t
(** [make rows cols f] builds the matrix with entry [f i j]. *)

val of_rows : int list list -> t
(** Build from row lists; all rows must have equal positive length. *)

val of_array : int array array -> t
(** Copies the array. *)

val to_rows : t -> int list list
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> int
val row : t -> int -> Ivec.t
val col : t -> int -> Ivec.t
val row_list : t -> Ivec.t list
val identity : int -> t
val zero : int -> int -> t
val diag : int array -> t
val is_square : t -> bool
val equal : t -> t -> bool
val transpose : t -> t
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : int -> t -> t
val mul_row : Ivec.t -> t -> Ivec.t
(** [mul_row v m] is the row vector [v * m]. *)

val map : (int -> int) -> t -> t

val replace_row : t -> int -> Ivec.t -> t
(** [replace_row m i v] is [m] with row [i] replaced by [v] — the paper's
    [LG_{i->a}] construction in Theorem 2. *)

val select_cols : t -> int list -> t
val select_rows : t -> int list -> t

val det : t -> int
(** Determinant of a square matrix (fraction-free Bareiss; exact). *)

val rank : t -> int
val is_unimodular : t -> bool
(** Square with determinant [+-1]. *)

val max_independent_cols : t -> int list
(** Indices of a maximal set of linearly independent columns, greedily from
    the left (Section 3.4.1 of the paper). *)

val max_independent_rows : t -> int list

val gcd_maximal_minors : t -> int
(** Gcd of all subdeterminants of order [min rows cols]; 0 if the matrix
    has deficient rank.  Lemma 2 tests this against 1. *)

val has_zero_col : t -> bool
val drop_zero_cols : t -> t * int list
(** Remove all-zero columns (Example 1's dimension reduction); returns the
    reduced matrix and the indices of the kept columns. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
