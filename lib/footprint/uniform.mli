(** Classification of array references into uniformly intersecting sets
    (Definitions 4-6 of the paper).

    Two references are {e uniformly generated} when they share the same
    [G] matrix (Definition 5); they are {e intersecting} when some pair of
    iterations touches the same data element (Definition 4); they are
    {e uniformly intersecting} when both hold (Definition 6).  Within a
    uniformly generated set, intersection is an equivalence (membership of
    the offset difference in the row lattice of [G]), so the references of
    a loop body split into disjoint classes whose footprints are mutual
    translates (Proposition 1). *)

open Matrixkit
open Loopir

val intersecting : Affine.t -> Affine.t -> bool
(** Definition 4, for arbitrary pairs: do integer iterations [i1], [i2]
    exist with [g1(i1) = g2(i2)]?  Decided exactly by integer-solving
    [x * [G1; -G2] = a2 - a1]. *)

val uniformly_generated : Affine.t -> Affine.t -> bool
(** Definition 5. *)

val uniformly_intersecting : Affine.t -> Affine.t -> bool
(** Definition 6. *)

type cls = {
  array_name : string;
  g : Imat.t;  (** the common reference matrix *)
  refs : Reference.t list;  (** members, in program order *)
  offsets : Ivec.t list;  (** their offset vectors, same order *)
}
(** A uniformly intersecting class. *)

val spread : cls -> Ivec.t
(** Definition 8: component-wise [max - min] of the member offsets. *)

val cumulative_spread : cls -> Ivec.t
(** Footnote 2's [a+] for data partitioning: component-wise
    [sum_r |a_rk - median_r|]. *)

val has_write : cls -> bool

val classify : Reference.t list -> cls list
(** Split a loop body into uniformly intersecting classes.  References to
    different arrays are never in the same class; references with equal
    [G] but non-intersecting offsets are split (e.g. [A[2i]] vs
    [A[2i+1]]). *)

val classify_nest : Nest.t -> cls list

val pp_cls : vars:string array -> Format.formatter -> cls -> unit
