open Intmath
open Matrixkit
open Loopir
open Footprint

type class_cost = {
  cls : Uniform.cls;
  single : Mpoly.t;
  cumulative : Mpoly.t;
  traffic : Mpoly.t;
  sync_weight : int;
  writes : bool;
  null_dims : int list;
}

type t = {
  nest : Nest.t;
  classes : class_cost list;
  total_cumulative : Mpoly.t;
  total_traffic : Mpoly.t;
  objective : Mpoly.t;
}

let sync_cost_factor = 2

let class_cost ~nesting (cls : Uniform.cls) =
  let g = cls.Uniform.g in
  let single = Size.rect_single_poly ~nesting ~g in
  (* Lattice-coordinate spread: sharper than Definition 8's data-space
     max-min for skewed G with mixed-sign offsets (see Size.lattice_spread). *)
  let cumulative =
    Size.rect_cumulative_poly_class ~nesting ~g ~offsets:cls.Uniform.offsets
  in
  let traffic = Mpoly.sub cumulative single in
  let sync_weight =
    if
      List.exists
        (fun (r : Reference.t) -> r.Reference.kind = Reference.Accumulate)
        cls.Uniform.refs
    then sync_cost_factor
    else 1
  in
  (* Loop dimensions the reference ignores (all-zero rows of G): tiling
     them multiplies the number of tiles touching each element.  For a
     written class (e.g. a reduction like matmul's l$C[i,j] over k) every
     extra writer costs an invalidation + refetch, which the footprint
     alone does not see. *)
  let null_dims =
    List.filter
      (fun k -> Matrixkit.Ivec.is_zero (Matrixkit.Imat.row g k))
      (List.init nesting Fun.id)
  in
  {
    cls;
    single;
    cumulative;
    traffic;
    sync_weight;
    writes = Uniform.has_write cls;
    null_dims;
  }

let of_nest nest =
  let nesting = Nest.nesting nest in
  let classes = List.map (class_cost ~nesting) (Uniform.classify_nest nest) in
  let total_cumulative = Mpoly.sum (List.map (fun c -> c.cumulative) classes) in
  let total_traffic = Mpoly.sum (List.map (fun c -> c.traffic) classes) in
  let objective =
    Mpoly.sum
      (List.map (fun c -> Mpoly.scale_int c.sync_weight c.cumulative) classes)
  in
  { nest; classes; total_cumulative; total_traffic; objective }

let class_misses (c : class_cost) tile =
  let g = c.cls.Uniform.g in
  let spread = Uniform.spread c.cls in
  match tile with
  | Tile.Rect sizes -> Rat.floor (Mpoly.eval_int c.cumulative sizes)
  | Tile.Pped l -> (
      try Rat.floor (Size.pped_cumulative ~l:(Qmat.of_imat l) ~g ~spread)
      with Size.Unsupported _ ->
        (* Fall back to the rectangular estimate on the bounding sizes. *)
        let sizes =
          Array.map (fun r -> max 1 r) (Array.map abs (Imat.row l 0))
        in
        Size.rect_cumulative ~exact:false
          ~lambda:(Array.map (fun s -> s - 1) sizes)
          ~g ~spread)

let misses_per_tile t tile =
  List.fold_left (fun acc c -> acc + class_misses c tile) 0 t.classes

let traffic_per_tile t tile =
  let singles =
    List.fold_left
      (fun acc c ->
        let g = c.cls.Uniform.g in
        acc
        +
        match tile with
        | Tile.Rect _ -> Size.rect_single ~lambda:(Tile.lambda tile) ~g
        | Tile.Pped l -> (
            try Rat.floor (Size.pped_single ~l:(Qmat.of_imat l) ~g)
            with Size.Unsupported _ -> Rat.floor (Tile.volume tile)))
      0 t.classes
  in
  misses_per_tile t tile - singles

(* Number of tiles writing each element of the class: the product of the
   tile counts along the loop dimensions the reference ignores. *)
let writer_multiplier t (c : class_cost) x =
  if not c.writes then 1.0
  else
    let extents = Nest.extents t.nest in
    List.fold_left
      (fun acc k -> acc *. Float.max 1.0 (float_of_int extents.(k) /. x.(k)))
      1.0 c.null_dims

let eval_objective t x =
  List.fold_left
    (fun acc c ->
      acc
      +. float_of_int c.sync_weight
         *. Mpoly.eval_float c.cumulative x
         *. writer_multiplier t c x)
    0.0 t.classes

(* The loop dimension whose index strides the contiguous (last) data
   dimension of the class's array, when one exists: the row of G with a
   non-zero entry in the last column.  Prefer the row with the smallest
   |coefficient| (closest to unit stride). *)
let contiguous_loop_dim (cls : Uniform.cls) =
  let g = cls.Uniform.g in
  let last = Matrixkit.Imat.cols g - 1 in
  let best = ref None in
  for k = 0 to Matrixkit.Imat.rows g - 1 do
    let c = abs (Matrixkit.Imat.get g k last) in
    if c <> 0 then
      match !best with
      | Some (_, bc) when bc <= c -> ()
      | _ -> best := Some (k, c)
  done;
  Option.map fst !best

let line_adjusted_objective t ~line_size =
  if line_size < 1 then invalid_arg "Cost.line_adjusted_objective";
  if line_size = 1 then t.objective
  else
    Mpoly.sum
      (List.map
         (fun c ->
           let poly = Mpoly.scale_int c.sync_weight c.cumulative in
           match contiguous_loop_dim c.cls with
           | None -> poly
           | Some k ->
               (* x_k elements cover ~ x_k/line + 1 lines. *)
               let subst =
                 Mpoly.add
                   (Mpoly.scale (Rat.make 1 line_size) (Mpoly.var k))
                   Mpoly.one
               in
               Mpoly.subst k subst poly)
         t.classes)

let pp ppf t =
  let vars = Nest.vars t.nest in
  let names k = Printf.sprintf "x%s" vars.(k) in
  Format.fprintf ppf "@[<v>cost model for %s:@," t.nest.Nest.name;
  List.iter
    (fun c ->
      Format.fprintf ppf "  %a@,    cumulative: %a@,    traffic:    %a@,"
        (Uniform.pp_cls ~vars) c.cls
        (Mpoly.pp ~names) c.cumulative
        (Mpoly.pp ~names) c.traffic)
    t.classes;
  Format.fprintf ppf "  total cumulative: %a@,  total traffic: %a@]"
    (Mpoly.pp ~names) t.total_cumulative
    (Mpoly.pp ~names) t.total_traffic
