(* Tests for the kernel-lowering layer: stride precomputation against
   Exec.address on the whole gallery, traversal-order safety, shape
   selection, degenerate boxes, and bit-identical agreement with the
   interpreter sequentially and on a domain pool. *)

open Loopir
open Loopart

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let steps_of nest = Runtime.Exec.steps_of_nest nest

(* All permutations of [0 .. n-1]. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let axis_permutations n =
  List.map Array.of_list (permutations (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* Stride precomputation                                               *)
(* ------------------------------------------------------------------ *)

(* The plan's per-axis deltas must equal the address difference of one
   step along that axis, for every reference of every gallery nest -
   checked at the space's lower corner and at an interior point, which
   together pin the affine address map. *)
let test_strides_match_address () =
  List.iter
    (fun (name, nest) ->
      let compiled = Runtime.Exec.compile nest in
      let plan = Runtime.Kernel.plan compiled in
      let bounds = Nest.bounds nest in
      let corner = Array.map fst bounds in
      let mid =
        Array.map (fun (lo, hi) -> lo + ((hi - lo) / 2)) bounds
      in
      List.iter
        (fun ((r : Reference.t), m) ->
          let addr = Runtime.Exec.address compiled r in
          check
            (Printf.sprintf "%s/%s: delta arity" name r.Reference.array_name)
            (Nest.nesting nest) (Array.length m);
          Array.iteri
            (fun k (lo, hi) ->
              if hi > lo then
                List.iter
                  (fun base ->
                    let at = Array.copy base in
                    at.(k) <- lo;
                    let stepped = Array.copy base in
                    stepped.(k) <- lo + 1;
                    check
                      (Printf.sprintf "%s/%s axis %d" name
                         r.Reference.array_name k)
                      m.(k)
                      (addr stepped - addr at))
                  [ corner; mid ])
            bounds)
        (Runtime.Kernel.strides plan))
    Programs.all

(* ------------------------------------------------------------------ *)
(* Traversal order                                                     *)
(* ------------------------------------------------------------------ *)

let buffer_of_plan plan ~steps =
  Runtime.Exec.to_float_array (Runtime.Kernel.sequential plan ~steps)

(* For nests the analysis proves reorderable, every axis permutation
   must reproduce the interpreter's buffer bit for bit - including
   matmul, whose accumulate chains run along the (single) k fiber. *)
let test_permutations_preserve_results () =
  List.iter
    (fun nest ->
      let name = nest.Nest.name in
      let compiled = Runtime.Exec.compile nest in
      let steps = steps_of nest in
      let reference = Runtime.Exec.sequential compiled ~steps in
      checkb
        (Printf.sprintf "%s is reorderable" name)
        true
        (Runtime.Kernel.reorderable (Runtime.Kernel.plan compiled));
      List.iter
        (fun order ->
          let plan = Runtime.Kernel.plan ~order compiled in
          checkb
            (Printf.sprintf "%s under order %s" name
               (String.concat ""
                  (List.map string_of_int (Array.to_list order))))
            true
            (buffer_of_plan plan ~steps = reference))
        (axis_permutations (Nest.nesting nest)))
    [
      Programs.stencil5 ~n:12 ();
      Programs.matmul ~n:8 ();
      Programs.example3 ~n:10 ();
    ]

let test_inplace_not_reorderable () =
  (* In-place relaxation reads the array it writes: reordering would
     change which neighbours are fresh, so the analysis must refuse. *)
  let compiled = Runtime.Exec.compile (Programs.relax_inplace ~n:10 ()) in
  let plan = Runtime.Kernel.plan compiled in
  checkb "relax_inplace not reorderable" false (Runtime.Kernel.reorderable plan);
  checkb "identity order"
    true
    (Runtime.Kernel.order plan = [| 0; 1 |])

let test_matmul_rotates_unit_axis_innermost () =
  let compiled = Runtime.Exec.compile (Programs.matmul ~n:8 ()) in
  let plan = Runtime.Kernel.plan compiled in
  (* C[i,j] and B[k,j] walk unit stride along j, only A[i,k] along k:
     j goes innermost, giving i,k,j. *)
  checkb "order is i,k,j" true (Runtime.Kernel.order plan = [| 0; 2; 1 |])

(* ------------------------------------------------------------------ *)
(* Shape selection                                                     *)
(* ------------------------------------------------------------------ *)

let shape_of ?force_generic nest =
  Runtime.Kernel.shape
    (Runtime.Kernel.plan ?force_generic (Runtime.Exec.compile nest))

(* The gallery has no 1-read body, so build the canonical copy nest. *)
let copy_nest =
  let open Dsl in
  let i = var 0 and j = var 1 in
  nest ~name:"copy2d"
    [ doall "i" 1 8; doall "j" 1 8 ]
    [ write "A" [ i; j ]; read "B" [ j; i ] ]

let test_shapes () =
  checks "stencil5" "stencil5" (shape_of (Programs.stencil5 ~n:8 ()));
  checks "matmul" "accumulate3" (shape_of (Programs.matmul ~n:6 ()));
  checks "copy" "copy" (shape_of copy_nest);
  checks "example9 falls back" "generic" (shape_of (Programs.example9 ~n:8 ()));
  checks "forced generic" "generic"
    (shape_of ~force_generic:true (Programs.stencil5 ~n:8 ()))

(* ------------------------------------------------------------------ *)
(* Degenerate and partial boxes                                        *)
(* ------------------------------------------------------------------ *)

let run_boxes_interp compiled boxes ~steps =
  let storage = Runtime.Exec.alloc compiled in
  let body = Runtime.Exec.exec_point compiled storage in
  let run_box (b : (int * int) array) =
    let d = Array.length b in
    let point = Array.map fst b in
    let rec go k =
      if k = d then body point
      else
        let lo, hi = b.(k) in
        for v = lo to hi do
          point.(k) <- v;
          go (k + 1)
        done
    in
    go 0
  in
  for _ = 1 to steps do
    List.iter run_box boxes
  done;
  Runtime.Exec.to_float_array storage

let test_empty_box_is_noop () =
  let compiled = Runtime.Exec.compile (Programs.stencil5 ~n:8 ()) in
  let plan = Runtime.Kernel.plan compiled in
  let storage = Runtime.Exec.alloc compiled in
  let before = Runtime.Exec.to_float_array storage in
  Runtime.Kernel.run_box plan storage [| (3, 2); (1, 6) |];
  checkb "empty box leaves operands untouched" true
    (Runtime.Exec.to_float_array storage = before);
  check "empty volume" 0 (Runtime.Kernel.box_volume [| (3, 2); (1, 6) |])

let test_degenerate_and_partial_boxes () =
  (* Extent-1 axes, single-point boxes, and a partial cover must all
     agree with the interpreter over the same boxes. *)
  List.iter
    (fun (nest, boxes) ->
      let compiled = Runtime.Exec.compile nest in
      let plan = Runtime.Kernel.plan compiled in
      let storage = Runtime.Exec.alloc compiled in
      List.iter (Runtime.Kernel.run_box plan storage) boxes;
      checkb
        (Printf.sprintf "%s over %d boxes" nest.Nest.name (List.length boxes))
        true
        (Runtime.Exec.to_float_array storage
        = run_boxes_interp compiled boxes ~steps:1))
    [
      (Programs.stencil5 ~n:9 (), [ [| (2, 2); (1, 7) |]; [| (3, 6); (4, 4) |] ]);
      (Programs.stencil5 ~n:9 (), [ [| (5, 5); (5, 5) |] ]);
      (Programs.matmul ~n:6 (), [ [| (0, 5); (2, 2); (0, 5) |] ]);
    ]

(* ------------------------------------------------------------------ *)
(* Storage representations                                             *)
(* ------------------------------------------------------------------ *)

(* Satellite check for the closure-free checksum/to_float_array paths:
   Flat and Bigarray storage must yield identical buffers and checksums
   through both the interpreter and the kernel. *)
let test_flat_and_bigarray_checksums_agree () =
  List.iter
    (fun nest ->
      let steps = steps_of nest in
      let flatc = Runtime.Exec.compile ~bigarray:false nest in
      let bigc = Runtime.Exec.compile ~bigarray:true nest in
      let flat = Runtime.Kernel.sequential (Runtime.Kernel.plan flatc) ~steps in
      let big = Runtime.Kernel.sequential (Runtime.Kernel.plan bigc) ~steps in
      checkb
        (Printf.sprintf "%s: flat = big buffers" nest.Nest.name)
        true
        (Runtime.Exec.to_float_array flat = Runtime.Exec.to_float_array big);
      checkb
        (Printf.sprintf "%s: flat = big checksums" nest.Nest.name)
        true
        (Runtime.Exec.checksum flat = Runtime.Exec.checksum big);
      checkb
        (Printf.sprintf "%s: kernel = interpreter checksum" nest.Nest.name)
        true
        (Runtime.Exec.checksum flat
        = Array.fold_left ( +. ) 0.0 (Runtime.Exec.sequential flatc ~steps)))
    [ Programs.stencil5 ~n:10 (); Programs.matmul ~n:7 () ]

(* ------------------------------------------------------------------ *)
(* Parallel execution                                                  *)
(* ------------------------------------------------------------------ *)

let test_parallel_kernel_matches_sequential () =
  List.iter
    (fun (nest, nprocs) ->
      let a = Driver.analyze ~nprocs nest in
      let sched = Driver.schedule a in
      let compiled = Runtime.Exec.compile nest in
      let plan = Runtime.Kernel.plan compiled in
      let boxes = Runtime.Kernel.boxes_of_schedule sched in
      let steps = steps_of nest in
      let storage = Runtime.Exec.alloc compiled in
      let seconds = Array.make nprocs 0.0 in
      let iterations = Array.make nprocs 0 in
      Runtime.Pool.with_pool nprocs (fun pool ->
          Runtime.Kernel.one_pass pool plan storage ~boxes ~steps ~seconds
            ~iterations);
      check
        (Printf.sprintf "%s: every iteration executed" nest.Nest.name)
        (steps * Array.fold_left ( * ) 1 (Nest.extents nest))
        (Array.fold_left ( + ) 0 iterations);
      checkb
        (Printf.sprintf "%s: parallel kernel = sequential interpreter"
           nest.Nest.name)
        true
        (Runtime.Exec.to_float_array storage
        = Runtime.Exec.sequential compiled ~steps))
    [ (Programs.stencil5 ~n:16 (), 4); (Programs.example3 ~n:12 (), 3) ]

let test_driver_kernels_flag () =
  let nest = Programs.stencil5 ~n:16 () in
  let a = Driver.analyze ~nprocs:4 nest in
  let r =
    Driver.execute
      ~config:
        {
          Driver.default_exec_config with
          Driver.kernels = true;
          repeats = 1;
          steps = Some 1;
        }
      a
  in
  checkb "policy names the kernel" true
    (String.length r.Runtime.Measure.policy > 0
    && String.sub r.Runtime.Measure.policy
         (String.length r.Runtime.Measure.policy - 6)
         6
       = "kernel");
  check "all iterations counted"
    (Array.fold_left ( * ) 1 (Nest.extents nest))
    (Array.fold_left
       (fun acc (d : Runtime.Measure.domain_stat) ->
         acc + d.Runtime.Measure.iterations)
       0 r.Runtime.Measure.per_domain)

let test_resilient_kernels_match () =
  let nest = Programs.stencil5 ~n:16 () in
  let a = Driver.analyze ~nprocs:4 nest in
  let config =
    { Driver.default_exec_config with Driver.kernels = true }
  in
  let report, buffer = Driver.execute_resilient ~config a in
  checkb "resilient kernel run completed" true report.Runtime.Report.completed;
  let compiled = Runtime.Exec.compile nest in
  checkb "resilient kernel buffer = sequential" true
    (buffer = Runtime.Exec.sequential compiled ~steps:(steps_of nest))

let () =
  Alcotest.run "kernel"
    [
      ( "strides",
        [
          Alcotest.test_case "deltas match Exec.address on the gallery" `Quick
            test_strides_match_address;
        ] );
      ( "order",
        [
          Alcotest.test_case "permutations preserve results" `Quick
            test_permutations_preserve_results;
          Alcotest.test_case "in-place nests refuse reordering" `Quick
            test_inplace_not_reorderable;
          Alcotest.test_case "matmul rotates j innermost" `Quick
            test_matmul_rotates_unit_axis_innermost;
        ] );
      ( "shapes",
        [ Alcotest.test_case "shape selection" `Quick test_shapes ] );
      ( "boxes",
        [
          Alcotest.test_case "empty box is a no-op" `Quick test_empty_box_is_noop;
          Alcotest.test_case "degenerate and partial boxes" `Quick
            test_degenerate_and_partial_boxes;
        ] );
      ( "storage",
        [
          Alcotest.test_case "flat and bigarray agree" `Quick
            test_flat_and_bigarray_checksums_agree;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "pool kernel = sequential interpreter" `Quick
            test_parallel_kernel_matches_sequential;
          Alcotest.test_case "Driver ~kernels:true" `Quick
            test_driver_kernels_flag;
          Alcotest.test_case "Resilient ~kernels:true" `Quick
            test_resilient_kernels_match;
        ] );
    ]
