exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Plus
  | Minus
  | Star
  | Comma
  | Lbrack
  | Rbrack
  | Eq
  | Ldollar

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize ~lineno line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '#' then i := n
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit line.[!j] do
        incr j
      done;
      toks := Int (int_of_string (String.sub line !i (!j - !i))) :: !toks;
      i := !j
    end
    else if c = 'l' && !i + 1 < n && line.[!i + 1] = '$' then begin
      toks := Ldollar :: !toks;
      i := !i + 2
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      while !j < n && is_ident_char line.[!j] do
        incr j
      done;
      toks := Ident (String.sub line !i (!j - !i)) :: !toks;
      i := !j
    end
    else begin
      (match c with
      | '+' -> toks := Plus :: !toks
      | '-' -> toks := Minus :: !toks
      | '*' -> toks := Star :: !toks
      | ',' -> toks := Comma :: !toks
      | '[' | '(' -> toks := Lbrack :: !toks
      | ']' | ')' -> toks := Rbrack :: !toks
      | '=' -> toks := Eq :: !toks
      | _ -> fail "line %d: unexpected character %C" lineno c);
      incr i
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Expression parser (over a token list)                               *)
(* ------------------------------------------------------------------ *)

let var_index vars name =
  let rec go i =
    if i >= Array.length vars then fail "unknown loop variable %S" name
    else if vars.(i) = name then i
    else go (i + 1)
  in
  go 0

(* term := ["-"] [int "*"] ident | ["-"] int *)
let rec parse_term ~vars toks =
  match toks with
  | Minus :: rest ->
      let e, rest = parse_term ~vars rest in
      (Dsl.neg e, rest)
  | Int k :: Star :: Ident v :: rest ->
      (Dsl.( * ) k (Dsl.var (var_index vars v)), rest)
  | Int k :: Ident v :: rest ->
      (* allow "2i" as shorthand for 2*i *)
      (Dsl.( * ) k (Dsl.var (var_index vars v)), rest)
  | Int k :: rest -> (Dsl.int k, rest)
  | Ident v :: rest -> (Dsl.var (var_index vars v), rest)
  | _ -> fail "expected a subscript term"

and parse_expr ~vars toks =
  let first, rest = parse_term ~vars toks in
  let rec go acc toks =
    match toks with
    | Plus :: rest ->
        let t, rest = parse_term ~vars rest in
        go (Dsl.( + ) acc t) rest
    | Minus :: rest ->
        let t, rest = parse_term ~vars rest in
        go (Dsl.( - ) acc t) rest
    | _ -> (acc, toks)
  in
  go first rest

let expr_of_string ~vars s =
  match parse_expr ~vars (tokenize ~lineno:0 s) with
  | e, [] -> e
  | _, _ -> fail "trailing tokens in expression %S" s

(* ------------------------------------------------------------------ *)
(* Reference and statement parsing                                     *)
(* ------------------------------------------------------------------ *)

let parse_ref ~vars toks =
  let accum, toks =
    match toks with Ldollar :: rest -> (true, rest) | _ -> (false, toks)
  in
  match toks with
  | Ident name :: Lbrack :: rest ->
      let rec subs acc toks =
        let e, toks = parse_expr ~vars toks in
        match toks with
        | Comma :: rest -> subs (e :: acc) rest
        | Rbrack :: rest -> (List.rev (e :: acc), rest)
        | _ -> fail "expected ',' or ']' in subscripts of %s" name
      in
      let exprs, rest = subs [] rest in
      ((name, accum, exprs), rest)
  | _ -> fail "expected an array reference"

let parse_stmt ~vars toks =
  let (lhs_name, lhs_accum, lhs_subs), toks = parse_ref ~vars toks in
  (match toks with
  | Eq :: _ -> ()
  | _ -> fail "expected '=' after left-hand side");
  let toks = List.tl toks in
  let rec rhs acc toks =
    (* On the right-hand side an l$ reference is just a read; the atomic
       update semantics is carried by the left-hand side. *)
    let (name, _accum, subs), toks = parse_ref ~vars toks in
    let acc = Dsl.read name subs :: acc in
    match toks with
    | Plus :: rest -> rhs acc rest
    | [] -> List.rev acc
    | _ -> fail "expected '+' between right-hand-side references"
  in
  let reads = rhs [] toks in
  let lhs =
    if lhs_accum then Dsl.accumulate lhs_name lhs_subs
    else Dsl.write lhs_name lhs_subs
  in
  (* An accumulate both reads and writes its target; the paper treats it
     as a write for coherence, but the read is part of the body too. *)
  lhs :: reads

(* ------------------------------------------------------------------ *)
(* Nest parsing                                                        *)
(* ------------------------------------------------------------------ *)

let parse_signed ~lineno = function
  | Minus :: Int n :: rest -> (-n, rest)
  | Int n :: rest -> (n, rest)
  | _ -> fail "line %d: expected an integer" lineno

let parse_header ~lineno toks =
  match toks with
  | Ident kw :: Ident v :: Eq :: rest when kw = "doall" || kw = "doseq" -> (
      let lo, rest = parse_signed ~lineno rest in
      match rest with
      | Ident "to" :: rest -> (
          let hi, rest = parse_signed ~lineno rest in
          match rest with
          | [] -> (kw, v, lo, hi, 1)
          | [ Ident "step"; Int s ] when s >= 1 -> (kw, v, lo, hi, s)
          | _ -> fail "line %d: expected end of line or 'step N'" lineno)
      | _ -> fail "line %d: expected 'to'" lineno)
  | _ -> fail "line %d: expected 'doall v = lo to hi [step s]'" lineno

let nest_of_string ?(name = "parsed") src =
  let lines = String.split_on_char '\n' src in
  let tokenized =
    List.mapi (fun idx l -> (idx + 1, tokenize ~lineno:(idx + 1) l)) lines
    |> List.filter (fun (_, toks) -> toks <> [])
  in
  let rec split_headers acc = function
    | (lineno, (Ident kw :: _ as toks)) :: rest
      when kw = "doall" || kw = "doseq" ->
        split_headers (parse_header ~lineno toks :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let headers, stmt_lines = split_headers [] tokenized in
  let seq, doalls =
    match headers with
    | ("doseq", v, lo, hi, s) :: rest -> (Some (Strided.loop ~step:s v lo hi), rest)
    | rest -> (None, rest)
  in
  List.iter
    (fun (kw, _, _, _, _) ->
      if kw = "doseq" then fail "doseq must be the outermost loop")
    doalls;
  if doalls = [] then fail "no doall loops found";
  let loops =
    List.map (fun (_, v, lo, hi, s) -> Strided.loop ~step:s v lo hi) doalls
  in
  let vars = Array.of_list (List.map (fun (_, v, _, _, _) -> v) doalls) in
  match stmt_lines with
  | [ (_, toks) ] ->
      let specs = parse_stmt ~vars toks in
      let body =
        List.map
          (fun (s : Dsl.ref_spec) ->
            Dsl.reference_of_spec ~nesting:(List.length loops) s)
          specs
      in
      let strided = Strided.make ~name ?seq loops body in
      if Strided.is_normalized strided then
        (* Unit strides: keep the user's bounds as written. *)
        Nest.make ~name
          ?seq:
            (Option.map
               (fun (s : Strided.loop) ->
                 Nest.loop s.Strided.var s.Strided.lower s.Strided.upper)
               seq)
          (List.map
             (fun (l : Strided.loop) ->
               Nest.loop l.Strided.var l.Strided.lower l.Strided.upper)
             loops)
          body
      else Strided.normalize strided
  | [] -> fail "no statement line found"
  | (lineno, _) :: _ :: _ -> fail "line %d: expected a single statement" lineno
