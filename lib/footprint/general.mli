(** The general case of [G] (Section 3.8).

    When the (column-reduced) reference matrix has more loop dimensions
    than independent columns, the footprint is the image of a box under a
    projection and [prod (lambda_k + 1)] over-counts.  The paper notes
    closed forms for nesting 1 and 2 and resorts to "table lookup when
    the elements of G are small" for nesting 3 with a one-dimensional
    array.  This module implements:

    - an exact O(|b|) closed-form count for two-variable linear forms
      [{a*x + b*y}] (the l = 2, d = 1 case),
    - an exact recursive residue count for longer forms
      [{sum_k a_k x_k}], memoized (the paper's lookup table), and
    - the glue that upgrades {!Size.rect_single} for rank-1 projections.

    All counts are over the box [0 <= x_k <= lambda_k]. *)

val count_linear_form_2 : a:int -> b:int -> l1:int -> l2:int -> int
(** Exact number of distinct values of [a*x + b*y], [0 <= x <= l1],
    [0 <= y <= l2].  [a] and [b] need not be positive; zero coefficients
    are allowed. *)

val count_linear_form : coeffs:int array -> lambda:int array -> int
(** Exact distinct-value count of [sum_k coeffs_k * x_k] over the box.
    Cost grows with the coefficient magnitudes and nesting, not with the
    box volume; results are memoized in a global table. *)

val memo_stats : unit -> int
(** Number of entries currently cached (exposed for tests). *)

val rect_single : lambda:int array -> g:Matrixkit.Imat.t -> int option
(** Exact footprint size over a rectangular tile when the column-reduced
    [G] has rank 1 (a one-dimensional image): [Some count].  [None] when
    the reference is outside this module's domain (callers fall back to
    {!Size.rect_single}). *)
