open Matrixkit

type key = string * int list

type t = {
  forward : (key, int) Hashtbl.t;
  mutable reverse : key array;
  mutable next : int;
}

let create () =
  { forward = Hashtbl.create 4096; reverse = Array.make 4096 ("", []); next = 0 }

let id t name (point : Ivec.t) =
  let key = (name, Array.to_list point) in
  match Hashtbl.find_opt t.forward key with
  | Some a -> a
  | None ->
      let a = t.next in
      Hashtbl.add t.forward key a;
      if a >= Array.length t.reverse then begin
        let bigger = Array.make (2 * Array.length t.reverse) ("", []) in
        Array.blit t.reverse 0 bigger 0 (Array.length t.reverse);
        t.reverse <- bigger
      end;
      t.reverse.(a) <- key;
      t.next <- a + 1;
      a

let element_of t a =
  if a < 0 || a >= t.next then invalid_arg "Addr.element_of: unknown address";
  t.reverse.(a)

let size t = t.next
