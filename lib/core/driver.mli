(** The end-to-end partitioning pipeline: the OCaml analogue of the
    Alewife compiler passes of Figure 10 (analysis on the communication
    graph, loop partitioning, data partitioning/alignment, and - standing
    in for a machine run - simulation). *)

open Loopir
open Partition
open Machine

type analysis = {
  nest : Nest.t;
  nprocs : int;
  cost : Cost.t;  (** classification + symbolic footprints *)
  rect : Rectangular.result;  (** the partition the compiler emits *)
  skewed : Skewed.result option;
      (** parallelepiped alternative, when the engine applies and was
          requested *)
  rs : Baselines.Ramanujam_sadayappan.t;  (** communication-freedom *)
  ah : (Baselines.Abraham_hudak.result, string) result;
}

val analyze : ?try_skewed:bool -> nprocs:int -> Nest.t -> analysis
(** Classify, build the cost model and optimize.  [try_skewed] defaults to
    [false] (rectangular only, like the implemented Alewife subset). *)

val best_tile : analysis -> Tile.t
(** The skewed tile when it strictly improves on the rectangular one,
    else the rectangular tile. *)

val schedule : ?tile:Tile.t -> analysis -> Codegen.schedule

val simulate :
  ?tile:Tile.t -> ?config:Sim.config -> analysis -> Sim.result
(** Run the simulator on the chosen partition (default: rectangular tile,
    default simulator configuration). *)

val simulate_aligned :
  ?tile:Tile.t -> ?geometry:Cache.geometry -> analysis -> Sim.result
(** Distributed-memory run: 2-D mesh with loop-tile-aligned data
    placement (the paper's Section 4 configuration). *)

(** {2 Real execution on OCaml 5 domains}

    The measurement the paper's Section 4 deferred to the Alewife
    machine: run the partitioned nest for real, on [nprocs] domains over
    shared operands, and measure what the model predicts. *)

type exec_policy =
  | Tiled  (** the compile-time partition of {!schedule} *)
  | Cyclic  (** run-time self-scheduling, chunk 1 *)
  | Block_cyclic of int  (** run-time self-scheduling, fixed chunk *)
  | Guided  (** guided self-scheduling (the paper's reference [1]) *)
  | Work_steal of int
      (** tiled queues drained by their owners with back-stealing *)

type exec_config = {
  policy : exec_policy;
  repeats : int;  (** timed runs; minimum is reported *)
  steps : int option;  (** override the outer [Doseq] trip count *)
  footprint : Runtime.Measure.mode;
  bigarray : bool;  (** operands in a [Bigarray] instead of [float array] *)
  kernels : bool;
      (** lower tiles to {!Runtime.Kernel}'s specialized strided loops
          instead of interpreting point by point; effective for the
          [Tiled] policy over rectangular tiles (other policies and
          parallelepiped tiles keep the interpreter), and for
          {!execute_resilient}'s box tiles *)
  trace : Runtime.Trace.t option;
      (** record per-domain spans and counters into this recorder during
          the timed passes (size it for [analysis.nprocs]); under the
          [Tiled] policy the traced run executes the tile-granular work
          list so every tile gets its own span *)
}

val default_exec_config : exec_config
(** [Tiled], 3 repeats, the nest's own step count, [Auto] footprints,
    [float array] operands, interpreter (no kernels), no trace. *)

val execute :
  ?config:exec_config -> ?tile:Tile.t -> analysis -> Runtime.Measure.report
(** Execute the nest on [analysis.nprocs] domains and measure per-domain
    wall-clock, iterations and distinct-elements footprints, alongside
    the Theorem 2/4 prediction when the policy is [Tiled].  With
    [config.kernels] the timed pass runs the lowered kernels; the
    instrumented footprint pass (identical iteration sets) stays on the
    interpreter. *)

val execute_resilient :
  ?config:exec_config ->
  ?resilience:Runtime.Resilient.config ->
  ?plan:Runtime.Fault.plan ->
  ?tile:Tile.t ->
  analysis ->
  Runtime.Report.t * float array
(** Execute the nest under the fault-tolerant runtime ({!Runtime.Resilient}):
    watchdog timeouts, tile-level crash recovery and policy-driven
    retry/degradation.  [plan] injects faults for testing; when degrading
    shrinks the pool, the partition is re-optimized for the smaller
    processor count.  [config.repeats] and [config.footprint] are
    ignored (a resilient run is a single monitored execution). *)

val validate : ?tile:Tile.t -> analysis -> Runtime.Validate.verdict
(** Run the tiled schedule through both {!Machine.Sim} and the runtime
    and check write-race freedom, footprint agreement and value
    determinism. *)

val report : Format.formatter -> analysis -> unit
(** Human-readable compiler report: classes, polynomials, chosen
    partition, baselines. *)
